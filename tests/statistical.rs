//! Statistical regression harness: measured overflow probabilities vs
//! the paper's closed-form predictions, with binomial confidence bands.
//!
//! Three scenarios anchor the suite — one per analytical regime:
//!
//! * **Prop. 3.3** (impulsive, infinite holding): the memoryless
//!   certainty-equivalent MBAC realizes `p_f ≈ Q(α_q/√2)`, the √2
//!   penalty.
//! * **Eqn (21)** (impulsive, finite holding): the full overflow-vs-time
//!   curve `p_f(t) = Q([(μ/σ)t/T̃_h + α_q]/√(2(1−ρ(t))))`.
//! * **Eqn (38)** (continuous load, filtered estimator): the separated
//!   closed form bounds the realized `p_f` from above, within a
//!   documented conservatism factor.
//!
//! Every assertion is a *theory-derived binomial CI*: with `N` trials at
//! true probability `p`, the measured proportion lies within
//! `±z·√(p(1−p)/N)` of `p` at the CI's confidence level. Each check
//! inflates that half-width by a documented factor covering the model
//! error the paper itself acknowledges (the theory is a Gaussian
//! `n → ∞` limit; at `n = 400` the discreteness and truncation biases
//! are visible). The inflation factors were calibrated against the
//! full-budget runs in `results/` (`prop33.csv`, `finite_holding.csv`,
//! `fig5.csv`) — tightening them below those biases would make the test
//! assert noise, not regressions.
//!
//! The suite also pins the determinism contract of the telemetry layer:
//! the batched and boxed flow engines must produce **identical** merged
//! metric snapshots for the same seed, at any worker count.
//!
//! Heavier, tighter-band variants of each scenario are `#[ignore]`d and
//! run by the nightly CI job (`cargo test --release -- --ignored`).

use mbac::core::admission::CertaintyEquivalent;
use mbac::core::estimators::FilteredEstimator;
use mbac::core::params::{FlowStats, QosTarget};
use mbac::core::theory::continuous::ContinuousModel;
use mbac::core::theory::finite_holding::pf_at_time;
use mbac::num::ci::{wilson_ci, z_critical};
use mbac::num::{inv_q, q};
use mbac::sim::{
    ContinuousConfig, ContinuousLoad, Engine, ImpulsiveConfig, ImpulsiveLoad, MbacController,
    MetricsMode, SessionBuilder,
};
use mbac::traffic::rcbr::{RcbrConfig, RcbrModel};

/// Asserts the measured proportion sits inside the binomial CI implied
/// by the theoretical probability, with the half-width inflated by
/// `inflate` (model-error allowance, documented per call site) plus one
/// trial of resolution.
fn assert_within_theory_ci(name: &str, p_theory: f64, overflows: u64, trials: u64, inflate: f64) {
    assert!(trials > 0);
    let n = trials as f64;
    let measured = overflows as f64 / n;
    let half = inflate * z_critical(0.95) * (p_theory * (1.0 - p_theory) / n).sqrt() + 1.0 / n;
    assert!(
        (measured - p_theory).abs() <= half,
        "{name}: measured p_f = {measured:.5} ({overflows}/{trials}) outside \
         theory-derived CI {p_theory:.5} ± {half:.5}"
    );
}

fn rcbr() -> RcbrModel {
    RcbrModel::new(RcbrConfig::paper_default(1.0))
}

// ---------------------------------------------------------------------
// Scenario 1 — Prop. 3.3: the √2 penalty of certainty equivalence.
// ---------------------------------------------------------------------

fn prop33_check(replications: usize, inflate: f64) {
    let p_q = 0.02;
    let cfg = ImpulsiveConfig {
        capacity: 400.0,
        estimation_flows: 400,
        mean_holding: None,
        observe_times: vec![50.0], // ≫ T_c: the measurement has decorrelated
        replications,
        seed: 0x5CA7E57,
    };
    let ce = CertaintyEquivalent::from_probability(p_q);
    let model = rcbr();
    let rep = SessionBuilder::new()
        .workers(4)
        .run(&ImpulsiveLoad::new(&cfg, &model, &ce))
        .unwrap();
    let predicted = q(inv_q(p_q) / std::f64::consts::SQRT_2);
    let overflows = rep.observations[0].overflows;
    // Sanity first: the penalty itself must be visible — p_f well above
    // the nominal target — before we test its magnitude.
    assert!(
        overflows as f64 / replications as f64 > 1.5 * p_q,
        "√2 penalty invisible: {overflows}/{replications} vs target {p_q}"
    );
    assert_within_theory_ci("prop33", predicted, overflows, replications as u64, inflate);
}

/// Inflation ×4: at `n = 400` the finite-n bias pulls the simulated
/// value ~20–30% below the Gaussian-limit prediction (see
/// `results/prop33.csv`), several binomial half-widths at this budget.
#[test]
fn prop33_sqrt2_penalty_within_binomial_ci() {
    prop33_check(3000, 4.0);
}

/// Nightly variant: 6× the replications, same inflation — the band
/// tightens with √N, so this run would catch a regression half the size.
#[test]
#[ignore = "heavy statistical run for the nightly job"]
fn prop33_sqrt2_penalty_heavy() {
    prop33_check(20_000, 4.0);
}

// ---------------------------------------------------------------------
// Scenario 2 — eqn (21): overflow dynamics with finite holding times.
// ---------------------------------------------------------------------

fn eqn21_check(replications: usize, times: &[f64], inflate: f64) {
    // n = 400, T_c = 1, T_h = 200 ⇒ T̃_h = 10 — the setup of
    // `exp_finite_holding`, where the full-budget run shows theory and
    // simulation agreeing to well under one binomial half-width at this
    // budget (see results/finite_holding.csv).
    let n = 400usize;
    let t_c = 1.0;
    let t_h = 200.0;
    let t_h_tilde = t_h / (n as f64).sqrt();
    let p = 0.01;
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let qos = QosTarget::new(p);
    let rho = |t: f64| (-t / t_c).exp();

    let cfg = ImpulsiveConfig {
        capacity: n as f64,
        estimation_flows: n,
        mean_holding: Some(t_h),
        observe_times: times.to_vec(),
        replications,
        seed: 0xE21CA1,
    };
    let ce = CertaintyEquivalent::new(qos);
    let model = rcbr();
    let rep = SessionBuilder::new()
        .workers(4)
        .run(&ImpulsiveLoad::new(&cfg, &model, &ce))
        .unwrap();
    for (i, &t) in times.iter().enumerate() {
        let pf_th = pf_at_time(t, flow, qos, t_h_tilde, rho);
        assert_within_theory_ci(
            &format!("eqn21 t={t}"),
            pf_th,
            rep.observations[i].overflows,
            replications as u64,
            inflate,
        );
    }
}

/// The observation times bracket the correlation/repair crossover where
/// `p_f(t)` peaks (the quantitative content of the paper's Fig. 2);
/// smaller times have `p_f` below this budget's resolution.
/// Inflation ×2.5 covers the truncated-Gaussian model error visible in
/// the full-budget run.
#[test]
fn eqn21_finite_holding_curve_within_binomial_cis() {
    eqn21_check(6000, &[0.5, 1.0, 2.0, 4.0], 2.5);
}

/// Nightly variant: the whole curve including the deep tails on both
/// sides of the peak, at 40k replications. The t = 8 decay tail needs
/// the wider ×6 allowance: repeated 40k-rep runs on independent seed
/// streams measure p_f(8) ≈ 7e-4 against the eqn (21) prediction of
/// 2.1e-4, a ~3× truncated-Gaussian model error that the tighter band
/// only cleared by seed luck before the per-replication streams moved
/// to the SplitMix64 derivation.
#[test]
#[ignore = "heavy statistical run for the nightly job"]
fn eqn21_finite_holding_curve_heavy() {
    eqn21_check(40_000, &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0], 6.0);
}

// ---------------------------------------------------------------------
// Scenario 3 — eqn (38): continuous load with a filtered estimator.
// ---------------------------------------------------------------------

fn eqn38_check(n: f64, t_h: f64, p_ce: f64, max_samples: u64, seed: u64, conservatism: f64) {
    // Run at the robust design point T_m = T̃_h, where eqn (38) and the
    // eqn (37) integral agree and the paper's window rule operates.
    let t_c = 1.0;
    let t_h_tilde = t_h / n.sqrt();
    let t_m = t_h_tilde;
    let model = rcbr();
    let mut ctl = MbacController::new(
        Box::new(FilteredEstimator::new(t_m)),
        Box::new(CertaintyEquivalent::from_probability(p_ce)),
    );
    let cfg = ContinuousConfig {
        capacity: n,
        mean_holding: t_h,
        tick: 0.25,
        warmup: 10.0 * t_h_tilde,
        sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_m, t_c),
        target: p_ce,
        max_samples,
        seed,
    };
    let rep = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
        .unwrap();

    let pf_38 = ContinuousModel::new(0.3, t_h_tilde, t_c)
        .pf_with_memory_separated(QosTarget::new(p_ce).alpha(), t_m);
    let ci = wilson_ci(rep.pf.overflows, rep.pf.samples, 0.95);
    // Eqn (38) is explicitly conservative (it drops the flow-count
    // discreteness that works in the system's favor — §5.2 discusses
    // the offset; results/fig5.csv shows ~2–6× at the design point).
    // The theory-derived band is therefore one-sided-plus-floor:
    //   (a) the prediction must not be *anti*-conservative — it sits at
    //       or above the lower edge of the measurement's binomial CI;
    //   (b) the conservatism is bounded — the prediction stays within
    //       `conservatism`× the upper edge of that CI.
    assert!(
        pf_38 >= ci.lo,
        "eqn38 anti-conservative: prediction {pf_38:.5} below measured CI \
         [{:.5}, {:.5}] ({}/{} overflows)",
        ci.lo,
        ci.hi,
        rep.pf.overflows,
        rep.pf.samples
    );
    assert!(
        pf_38 <= conservatism * ci.hi,
        "eqn38 conservatism blown: prediction {pf_38:.5} more than \
         {conservatism}× the measured CI hi {:.5} ({}/{} overflows)",
        ci.hi,
        rep.pf.overflows,
        rep.pf.samples
    );
}

/// A small system (`n = 100`, `T̃_h = 10`) with a large target so the
/// overflow event is cheap to resolve; conservatism bound ×8 calibrated
/// against the fig-5 full-budget run.
#[test]
fn eqn38_continuous_design_point_within_conservative_band() {
    eqn38_check(100.0, 100.0, 0.05, 1200, 0x38E9, 8.0);
}

/// Nightly variant: the fig-5 system itself (`n = 1000`, `T̃_h = 31.6`,
/// `p_ce = 1e-3`) at a 3000-sample budget — the committed
/// `results/fig5.csv` design-point row sits at ~4× conservatism.
#[test]
#[ignore = "heavy statistical run for the nightly job"]
fn eqn38_continuous_design_point_heavy() {
    eqn38_check(1000.0, 1000.0, 1e-3, 3000, 0x38EA, 10.0);
}

// ---------------------------------------------------------------------
// Determinism contract of the telemetry layer.
// ---------------------------------------------------------------------

fn continuous_cfg(seed: u64) -> ContinuousConfig {
    ContinuousConfig {
        capacity: 60.0,
        mean_holding: 30.0,
        tick: 0.25,
        warmup: 20.0,
        sample_spacing: 8.0,
        target: 1e-2,
        max_samples: 150,
        seed,
    }
}

fn controller() -> MbacController {
    MbacController::new(
        Box::new(FilteredEstimator::new(5.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    )
}

#[test]
fn engines_produce_identical_merged_metric_snapshots() {
    let model = rcbr();
    let run_on = |engine: Engine| {
        let mut ctl = controller();
        SessionBuilder::new()
            .engine(engine)
            .metrics(MetricsMode::Enabled)
            .run_local_metered(&ContinuousLoad::new(&continuous_cfg(71), &model, &mut ctl))
            .unwrap()
    };
    let (a, snap_a) = run_on(Engine::Batched);
    let (b, snap_b) = run_on(Engine::Boxed);
    assert_eq!(a.pf.value, b.pf.value);
    assert!(!snap_a.is_empty());
    assert_eq!(snap_a, snap_b, "batched vs boxed telemetry diverged");
    // The JSON serialization is part of the contract too.
    assert_eq!(snap_a.to_json(), snap_b.to_json());
    // And the meter state exported under sim.pf.* matches the report.
    let json = snap_a.to_json();
    assert!(json.contains("\"sim.pf.samples\""));
    assert!(json.contains("\"sim.pf.overflows\""));
    assert!(json.contains("\"schema\": \"mbac-metrics/v1\""));
}

#[test]
fn impulsive_merged_snapshot_identical_for_any_worker_count() {
    let cfg = ImpulsiveConfig {
        capacity: 60.0,
        estimation_flows: 60,
        mean_holding: Some(20.0),
        observe_times: vec![1.0, 5.0, 25.0],
        replications: 64,
        seed: 0xBEE,
    };
    let ce = CertaintyEquivalent::from_probability(0.05);
    let model = rcbr();
    let scenario = ImpulsiveLoad::new(&cfg, &model, &ce);
    let run_with = |workers: usize| {
        SessionBuilder::new()
            .workers(workers)
            .metrics(MetricsMode::Enabled)
            .run_metered(&scenario)
            .unwrap()
    };
    let (reference_rep, reference_snap) = run_with(1);
    assert!(!reference_snap.is_empty());
    for workers in [2, 3, 4, 8] {
        let (rep, snap) = run_with(workers);
        assert_eq!(rep.m0.mean(), reference_rep.m0.mean());
        assert_eq!(
            snap, reference_snap,
            "telemetry diverged at {workers} workers"
        );
        assert_eq!(snap.to_json(), reference_snap.to_json());
    }
    // Structural consistency of the merged bundle: one tick per
    // (replication × observation time), departures bounded by
    // admissions.
    let json = reference_snap.to_json();
    let expect_ticks = format!(
        "\"sim.ticks\": {{\"type\": \"counter\", \"count\": {}}}",
        64 * 3
    );
    assert!(json.contains(&expect_ticks), "{json}");
}

#[test]
fn disabled_sink_yields_empty_snapshot_and_same_results() {
    let model = rcbr();
    let run_with = |mode: MetricsMode| {
        let mut ctl = controller();
        SessionBuilder::new()
            .metrics(mode)
            .run_local_metered(&ContinuousLoad::new(&continuous_cfg(97), &model, &mut ctl))
            .unwrap()
    };
    let (a, snap_off) = run_with(MetricsMode::Disabled);
    let (b, snap_on) = run_with(MetricsMode::Enabled);
    assert!(snap_off.is_empty());
    assert!(!snap_on.is_empty());
    // Metering must never perturb the science.
    assert_eq!(a.pf.value, b.pf.value);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.mean_utilization, b.mean_utilization);
}

/// Bench guard for the zero-cost claim: the disabled-sink path must not
/// silently grow instrumentation work. Wall-clock is noisy in CI, so
/// the bound is deliberately loose (the real measurement lives in
/// `mbac-bench`'s `metrics_overhead` group); what this catches is a
/// record site accidentally doing histogram work in disabled mode,
/// which shows up as a ≥2× swing on this workload.
#[test]
#[ignore = "timing-sensitive; nightly job runs it in --release"]
fn bench_guard_disabled_sink_not_slower_than_enabled() {
    let model = rcbr();
    let cfg = ContinuousConfig {
        max_samples: 600,
        ..continuous_cfg(123)
    };
    let time_run = |enabled: bool| {
        let mode = if enabled {
            MetricsMode::Enabled
        } else {
            MetricsMode::Disabled
        };
        let started = std::time::Instant::now();
        for _ in 0..3 {
            let mut ctl = controller();
            SessionBuilder::new()
                .metrics(mode)
                .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
                .unwrap();
        }
        started.elapsed().as_secs_f64()
    };
    time_run(false); // warm caches
    let disabled = time_run(false);
    let enabled = time_run(true);
    assert!(
        disabled <= enabled * 1.5 + 0.05,
        "disabled-sink run ({disabled:.3}s) should not be slower than the \
         instrumented run ({enabled:.3}s): the zero-cost mode has regressed"
    );
}
