//! Integration tests for the extension surfaces: §6 baselines, §7
//! aggregate-only measurement and utility metric, the generalized
//! marginals, and the pluggable AdmissionEngine.

use mbac_core::admission::{CertaintyEquivalent, MeasuredSum};
use mbac_core::estimators::{AggregateOnlyEstimator, FilteredEstimator, PriorSmoothedEstimator};
use mbac_core::params::FlowStats;
use mbac_core::utility::{admissible_flows_utility, UtilityFunction};
use mbac_sim::{
    ContinuousConfig, ContinuousLoad, MbacController, MeasuredSumController, SessionBuilder,
    UtilityMeter,
};
use mbac_traffic::marginal::Marginal;
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{GeneralRcbrModel, RcbrConfig, RcbrModel};

fn cfg(seed: u64) -> ContinuousConfig {
    ContinuousConfig {
        capacity: 100.0,
        mean_holding: 100.0,
        tick: 0.25,
        warmup: 150.0,
        sample_spacing: 20.0,
        target: 1e-2,
        max_samples: 400,
        seed,
    }
}

#[test]
fn measured_sum_engine_runs_and_respects_target_utilization() {
    let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
    let mut ctl = MeasuredSumController::new(MeasuredSum::new(0.85, 10.0, 1.0, 1.0));
    let rep = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg(41), &model, &mut ctl))
        .unwrap();
    // The max-based envelope keeps utilization below (and near) u.
    assert!(
        rep.mean_utilization < 0.92,
        "utilization {} should respect u = 0.85 + noise",
        rep.mean_utilization
    );
    assert!(
        rep.mean_utilization > 0.6,
        "but the link is not idle: {}",
        rep.mean_utilization
    );
    assert!(rep.admitted > 0);
}

#[test]
fn measured_sum_lower_target_is_safer() {
    let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
    let mut aggressive = MeasuredSumController::new(MeasuredSum::new(0.99, 10.0, 1.0, 1.0));
    let mut cautious = MeasuredSumController::new(MeasuredSum::new(0.80, 10.0, 1.0, 1.0));
    let rep_a = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg(43), &model, &mut aggressive))
        .unwrap();
    let rep_c = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg(43), &model, &mut cautious))
        .unwrap();
    assert!(
        rep_c.pf.value <= rep_a.pf.value,
        "cautious u: pf {} vs aggressive {}",
        rep_c.pf.value,
        rep_a.pf.value
    );
}

#[test]
fn prior_smoothing_tames_memoryless_fluctuations() {
    let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
    let truth = FlowStats::from_mean_sd(1.0, 0.3);
    let mut raw = MbacController::new(
        Box::new(mbac_core::estimators::MemorylessEstimator::new()),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    );
    let mut smoothed = MbacController::new(
        Box::new(PriorSmoothedEstimator::new(truth, 300.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    );
    let rep_raw = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg(47), &model, &mut raw))
        .unwrap();
    let rep_smooth = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg(47), &model, &mut smoothed))
        .unwrap();
    assert!(
        rep_smooth.pf.value < rep_raw.pf.value,
        "correct prior should help: {} vs {}",
        rep_smooth.pf.value,
        rep_raw.pf.value
    );
}

#[test]
fn aggregate_only_engine_tracks_per_flow_engine() {
    let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
    let mut per_flow = MbacController::new(
        Box::new(FilteredEstimator::new(10.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    );
    let mut agg_only = MbacController::new(
        Box::new(AggregateOnlyEstimator::new(10.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    );
    let rep_pf = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg(53), &model, &mut per_flow))
        .unwrap();
    let rep_ag = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg(53), &model, &mut agg_only))
        .unwrap();
    // Mean estimation is identical in expectation, so the carried load
    // must be close; §7 only predicts degraded *variance* accuracy.
    assert!(
        (rep_ag.mean_flows - rep_pf.mean_flows).abs() < 0.05 * rep_pf.mean_flows,
        "aggregate {} vs per-flow {} flows",
        rep_ag.mean_flows,
        rep_pf.mean_flows
    );
}

#[test]
fn general_marginals_preserve_the_gaussian_framework() {
    // Same (μ, σ, T_c), three shapes: the continuous-load simulator
    // should produce comparable overflow for all of them (CLT at
    // n = 100 flows).
    let shapes = [
        Marginal::Gaussian { mean: 1.0, sd: 0.3 },
        Marginal::uniform_with_moments(1.0, 0.3),
        Marginal::two_point_with_moments(1.0, 0.3),
    ];
    let mut pfs = Vec::new();
    for (i, &m) in shapes.iter().enumerate() {
        let model = GeneralRcbrModel::new(m, 1.0);
        assert!((model.mean() - 1.0).abs() < 1e-12);
        assert!((model.variance() - 0.09).abs() < 1e-12);
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(5.0)),
            Box::new(CertaintyEquivalent::from_probability(2e-2)),
        );
        let rep = SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg(59 + i as u64), &model, &mut ctl))
            .unwrap();
        pfs.push(rep.pf.value.max(1e-4));
    }
    let (lo, hi) = (
        pfs.iter().cloned().fold(f64::INFINITY, f64::min),
        pfs.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        hi / lo < 30.0,
        "marginal shape should be second-order: pfs {pfs:?}"
    );
}

#[test]
fn utility_sizing_orders_by_adaptivity() {
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let eps = 1e-2;
    let m_hard = admissible_flows_utility(flow, 200.0, eps, UtilityFunction::Hard);
    let m_adaptive = admissible_flows_utility(
        flow,
        200.0,
        eps,
        UtilityFunction::Adaptive { min_share: 0.8 },
    );
    let m_elastic =
        admissible_flows_utility(flow, 200.0, eps, UtilityFunction::Elastic { exponent: 0.5 });
    assert!(
        m_hard < m_adaptive && m_adaptive < m_elastic,
        "ordering: {m_hard} < {m_adaptive} < {m_elastic}"
    );
}

#[test]
fn utility_meter_agrees_with_static_formula() {
    // Gaussian aggregate synthesized directly; meter vs closed
    // integration must agree.
    use mbac_core::utility::expected_utility_loss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let (mean, sd, cap) = (95.0, 5.0, 100.0);
    let u = UtilityFunction::Elastic { exponent: 0.5 };
    let mut meter = UtilityMeter::new(cap, u);
    let mut rng = StdRng::seed_from_u64(61);
    for _ in 0..200_000 {
        meter.record(mbac_num::rng::normal(&mut rng, mean, sd));
    }
    let theory = expected_utility_loss(mean, sd, cap, u);
    assert!(
        (meter.mean_loss() / theory - 1.0).abs() < 0.05,
        "meter {} vs theory {theory}",
        meter.mean_loss()
    );
}
