//! Integration tests of the trace/LRD pipeline: fGn generation →
//! synthetic movie trace → trace-driven simulation → robust control.

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_sim::{ContinuousConfig, ContinuousLoad, MbacController, SessionBuilder};
use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
use mbac_traffic::trace::{Trace, TraceModel};
use mbac_traffic::{hurst_variance_time, SourceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_trace(seed: u64) -> Arc<Trace> {
    let cfg = StarwarsConfig {
        slots: 1 << 13,
        ..StarwarsConfig::default()
    };
    Arc::new(generate_starwars_like(
        &cfg,
        &mut StdRng::seed_from_u64(seed),
    ))
}

#[test]
fn synthetic_trace_certified_lrd_and_plays_back() {
    let trace = small_trace(201);
    // Certified long-range dependent…
    let h = hurst_variance_time(trace.rates());
    assert!(h > 0.62, "Hurst {h} must indicate LRD");
    // …and its playback statistics match the trace statistics.
    let model = TraceModel::new(trace.clone());
    let mut rng = StdRng::seed_from_u64(202);
    let mut src = model.spawn(&mut rng);
    let mut acc = mbac_num::RunningStats::new();
    for _ in 0..20_000 {
        src.advance(1.0, &mut rng);
        acc.push(src.rate());
    }
    // One full cycle plus wrap: time average ≈ trace mean. LRD sample
    // paths converge slowly; generous tolerance.
    assert!(
        (acc.mean() - trace.mean()).abs() < 0.15 * trace.mean(),
        "playback mean {} vs trace mean {}",
        acc.mean(),
        trace.mean()
    );
}

#[test]
fn trace_io_roundtrip_through_disk() {
    let trace = small_trace(203);
    let dir = std::env::temp_dir().join("mbac_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("starwars_like.txt");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        trace.write_to(&mut f).unwrap();
    }
    let back = Trace::read_from(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(*trace, back);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn robust_rule_beats_memoryless_on_lrd_traffic() {
    // Figs 11–12 in miniature: memoryless vs T_m = T̃_h on the same
    // LRD trace, same seed, same budget.
    let trace = small_trace(205);
    let n: f64 = 100.0;
    let t_h = 1000.0;
    let t_h_tilde = t_h / n.sqrt();
    let model = TraceModel::new(trace.clone());
    let run = |t_m: f64| {
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(t_m)),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let cfg = ContinuousConfig {
            capacity: n * trace.mean(),
            mean_holding: t_h,
            tick: 0.5,
            warmup: 5.0 * t_h_tilde.max(t_m),
            sample_spacing: 2.0 * t_h_tilde.max(t_m),
            target: 1e-2,
            max_samples: 400,
            seed: 206,
        };
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
            .unwrap()
    };
    let memoryless = run(0.0);
    let robust = run(t_h_tilde);
    assert!(
        robust.pf.value < memoryless.pf.value,
        "window rule must help on LRD traffic: {} vs {}",
        robust.pf.value,
        memoryless.pf.value
    );
}

#[test]
fn quantization_does_not_change_first_two_moments_much() {
    let base = StarwarsConfig {
        slots: 1 << 13,
        levels: 0,
        ..StarwarsConfig::default()
    };
    let quant = StarwarsConfig {
        slots: 1 << 13,
        levels: 32,
        ..StarwarsConfig::default()
    };
    let a = generate_starwars_like(&base, &mut StdRng::seed_from_u64(207));
    let b = generate_starwars_like(&quant, &mut StdRng::seed_from_u64(207));
    assert!((a.mean() - b.mean()).abs() < 0.02 * a.mean());
    assert!((a.variance() - b.variance()).abs() < 0.1 * a.variance());
}

#[test]
fn different_flows_see_different_phases() {
    let trace = small_trace(209);
    let model = TraceModel::new(trace);
    let mut rng = StdRng::seed_from_u64(210);
    let flows: Vec<_> = (0..8).map(|_| model.spawn(&mut rng)).collect();
    let rates: Vec<f64> = flows.iter().map(|f| f.rate()).collect();
    let distinct = {
        let mut r: Vec<u64> = rates.iter().map(|x| x.to_bits()).collect();
        r.sort_unstable();
        r.dedup();
        r.len()
    };
    assert!(
        distinct >= 4,
        "8 random phases should give ≥ 4 distinct rates"
    );
}
