//! Cross-crate integration tests: theory (mbac-core) vs. simulation
//! (mbac-sim) on traffic from mbac-traffic, end to end.
//!
//! Sized for debug-mode CI: small systems, generous tolerances. The
//! statistically sharp versions of these comparisons live in the
//! `mbac-experiments` binaries.

use mbac_core::admission::{AdmissionPolicy, CertaintyEquivalent, PerfectKnowledge};
use mbac_core::estimators::{Estimate, FilteredEstimator, MemorylessEstimator};
use mbac_core::params::{FlowStats, QosTarget};
use mbac_core::theory::impulsive;
use mbac_sim::{
    ContinuousConfig, ContinuousLoad, ImpulsiveConfig, ImpulsiveLoad, MbacController,
    SessionBuilder,
};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

fn rcbr(t_c: f64) -> RcbrModel {
    RcbrModel::new(RcbrConfig::paper_default(t_c))
}

#[test]
fn prop33_sqrt2_penalty_end_to_end() {
    // The paper's headline: impulsive-load CE-MBAC realizes
    // Q(α_q/√2), not p_q. Direct Monte Carlo with n = 200.
    let p_q = 0.02;
    let ce = CertaintyEquivalent::from_probability(p_q);
    let cfg = ImpulsiveConfig {
        capacity: 200.0,
        estimation_flows: 200,
        mean_holding: None,
        observe_times: vec![30.0],
        replications: 2500,
        seed: 101,
    };
    let rep = SessionBuilder::new()
        .run(&ImpulsiveLoad::new(&cfg, &rcbr(1.0), &ce))
        .unwrap();
    let pf = rep.pf_at(0);
    let predicted = impulsive::pf_certainty_equivalent(p_q);
    assert!(
        (pf - predicted).abs() < 0.025,
        "pf {pf} should be near the √2 prediction {predicted}, not the target {p_q}"
    );
    assert!(pf > 1.5 * p_q, "penalty must be visible");
}

#[test]
fn eqn15_adjustment_restores_target_end_to_end() {
    let p_q = 0.02;
    let adjusted = CertaintyEquivalent::from_probability(impulsive::pce_for_target(p_q));
    let cfg = ImpulsiveConfig {
        capacity: 200.0,
        estimation_flows: 200,
        mean_holding: None,
        observe_times: vec![30.0],
        replications: 2500,
        seed: 103,
    };
    let rep = SessionBuilder::new()
        .run(&ImpulsiveLoad::new(&cfg, &rcbr(1.0), &adjusted))
        .unwrap();
    let pf = rep.pf_at(0);
    assert!(
        (pf - p_q).abs() < 0.012,
        "adjusted target should restore pf ≈ {p_q}, got {pf}"
    );
}

#[test]
fn perfect_knowledge_is_the_gold_standard() {
    let p_q = 0.05;
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let pk = PerfectKnowledge::new(flow, QosTarget::new(p_q));
    let ce = CertaintyEquivalent::from_probability(p_q);
    let cfg = ImpulsiveConfig {
        capacity: 200.0,
        estimation_flows: 200,
        mean_holding: None,
        observe_times: vec![30.0],
        replications: 2000,
        seed: 107,
    };
    let pf_pk = SessionBuilder::new()
        .run(&ImpulsiveLoad::new(&cfg, &rcbr(1.0), &pk))
        .unwrap()
        .pf_at(0);
    let pf_ce = SessionBuilder::new()
        .run(&ImpulsiveLoad::new(&cfg, &rcbr(1.0), &ce))
        .unwrap()
        .pf_at(0);
    assert!(
        (pf_pk - p_q).abs() < 0.02,
        "perfect knowledge holds the target: {pf_pk}"
    );
    assert!(pf_ce > pf_pk, "measurement uncertainty must cost something");
}

#[test]
fn m0_fluctuation_law_prop31() {
    // Prop 3.1: (M₀ − n)/√n → N(−(σ/μ)α_q, (σ/μ)²).
    let n = 400.0;
    let p_q = 1e-2;
    let ce = CertaintyEquivalent::from_probability(p_q);
    let cfg = ImpulsiveConfig {
        capacity: n,
        estimation_flows: 400,
        mean_holding: None,
        observe_times: vec![],
        replications: 3000,
        seed: 109,
    };
    let rep = SessionBuilder::new()
        .run(&ImpulsiveLoad::new(&cfg, &rcbr(1.0), &ce))
        .unwrap();
    let (want_mean, want_sd) =
        impulsive::m0_distribution(n, FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(p_q));
    assert!(
        (rep.m0.mean() - want_mean).abs() < 2.0,
        "M0 mean {} vs predicted {want_mean}",
        rep.m0.mean()
    );
    assert!(
        (rep.m0.std_dev() - want_sd).abs() < 0.8,
        "M0 sd {} vs predicted {want_sd}",
        rep.m0.std_dev()
    );
}

#[test]
fn continuous_load_memory_beats_memoryless() {
    // §4.3 end to end at debug-friendly scale.
    let run = |t_m: f64| {
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(t_m)),
            Box::new(CertaintyEquivalent::from_probability(2e-2)),
        );
        let cfg = ContinuousConfig {
            capacity: 100.0,
            mean_holding: 100.0,
            tick: 0.25,
            warmup: 200.0,
            sample_spacing: 20.0,
            target: 2e-2,
            max_samples: 600,
            seed: 113,
        };
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &rcbr(1.0), &mut ctl))
            .unwrap()
    };
    let memoryless = run(0.0);
    let robust = run(10.0); // T̃_h = 100/√100 = 10
    assert!(
        robust.pf.value < memoryless.pf.value,
        "memory must help: {} vs {}",
        robust.pf.value,
        memoryless.pf.value
    );
    // Both keep the link busy — memory must not destroy utilization.
    assert!(robust.mean_utilization > 0.85);
}

#[test]
fn theory_formula_tracks_simulation_shape() {
    // Fig. 5 in miniature: simulated pf decreases with T_m, and the
    // eqn (37) curve stays on the conservative side at every point.
    let n = 100.0f64;
    let t_h = 100.0;
    let t_c = 1.0;
    let p_ce = 2e-2;
    let theory = mbac_core::theory::continuous::ContinuousModel::new(0.3, t_h / n.sqrt(), t_c);
    let alpha = QosTarget::new(p_ce).alpha();
    let mut last_sim = f64::INFINITY;
    for &t_m in &[0.0, 2.0, 10.0] {
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(t_m)),
            Box::new(CertaintyEquivalent::from_probability(p_ce)),
        );
        let cfg = ContinuousConfig {
            capacity: n,
            mean_holding: t_h,
            tick: 0.25,
            warmup: 150.0,
            sample_spacing: 20.0,
            target: p_ce,
            max_samples: 800,
            seed: 127 + t_m as u64,
        };
        let rep = SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &rcbr(t_c), &mut ctl))
            .unwrap();
        let th = theory.pf_with_memory(alpha, t_m);
        assert!(
            rep.pf.value <= th * 2.0,
            "T_m={t_m}: sim {} should not exceed conservative theory {th} by 2x",
            rep.pf.value
        );
        assert!(
            rep.pf.value <= last_sim * 1.5,
            "T_m={t_m}: pf should broadly decrease with memory"
        );
        last_sim = rep.pf.value.max(1e-6);
    }
}

#[test]
fn admission_policies_agree_on_perfect_estimates() {
    // When the CE controller happens to measure the truth, it admits
    // exactly what the perfect-knowledge controller admits.
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let qos = QosTarget::new(1e-3);
    let pk = PerfectKnowledge::new(flow, qos);
    let ce = CertaintyEquivalent::new(qos);
    let truth = Estimate::from(flow);
    for &c in &[50.0, 100.0, 1000.0] {
        let a = pk.admissible_count(truth, c);
        let b = ce.admissible_count(truth, c);
        assert!((a - b).abs() < 1e-9, "capacity {c}: {a} vs {b}");
    }
}

#[test]
fn memoryless_estimator_equals_filtered_with_zero_memory() {
    use mbac_core::estimators::Estimator;
    let mut a = MemorylessEstimator::new();
    let mut b = FilteredEstimator::new(0.0);
    let snaps: [&[f64]; 3] = [&[1.0, 2.0], &[0.5, 1.5, 2.5], &[3.0, 3.0]];
    for (k, snap) in snaps.iter().enumerate() {
        a.observe(k as f64, snap);
        b.observe(k as f64, snap);
        let ea = a.estimate().unwrap();
        let eb = b.estimate().unwrap();
        assert!((ea.mean - eb.mean).abs() < 1e-12);
        assert!((ea.variance - eb.variance).abs() < 1e-12);
    }
}
