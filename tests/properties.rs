//! Property-based tests (proptest) on cross-crate invariants.

use mbac_core::admission::{gaussian_admissible_count, AdmissionPolicy, CertaintyEquivalent};
use mbac_core::estimators::{Estimate, Estimator, FilteredEstimator};
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::impulsive;
use mbac_num::{inv_q, q};
use proptest::prelude::*;

proptest! {
    /// Q and Q⁻¹ are inverse over many orders of magnitude.
    #[test]
    fn q_inverse_roundtrip(exp in 0.31f64..12.0) {
        let p = 10f64.powf(-exp);
        let x = inv_q(p);
        let back = q(x);
        prop_assert!((back / p - 1.0).abs() < 1e-8, "p={p}, x={x}, back={back}");
    }

    /// The admissible count solves its defining equation for arbitrary
    /// parameters.
    #[test]
    fn admissible_count_solves_equation(
        mean in 0.1f64..10.0,
        cov in 0.01f64..1.0,
        cap_mult in 10.0f64..10000.0,
        exp in 1.0f64..8.0,
    ) {
        let sd = mean * cov;
        let capacity = mean * cap_mult;
        let p = 10f64.powf(-exp);
        let alpha = inv_q(p);
        let m = gaussian_admissible_count(mean, sd, alpha, capacity);
        prop_assert!(m > 0.0);
        let realized = q((capacity - m * mean) / (sd * m.sqrt()));
        prop_assert!((realized / p - 1.0).abs() < 1e-6,
            "m={m}: Q(...)={realized} vs p={p}");
    }

    /// Admission is monotone: more capacity ⇒ more flows; stricter QoS
    /// or burstier traffic ⇒ fewer.
    #[test]
    fn admission_monotonicity(
        mean in 0.1f64..5.0,
        cov in 0.05f64..0.8,
        capacity in 50.0f64..5000.0,
        exp in 1.0f64..6.0,
    ) {
        let sd = mean * cov;
        let alpha = inv_q(10f64.powf(-exp));
        let base = gaussian_admissible_count(mean, sd, alpha, capacity);
        prop_assert!(gaussian_admissible_count(mean, sd, alpha, capacity * 1.1) > base);
        prop_assert!(gaussian_admissible_count(mean, sd * 1.2, alpha, capacity) < base);
        prop_assert!(gaussian_admissible_count(mean, sd, alpha + 0.5, capacity) < base);
        // And never exceeds the fluid limit for α ≥ 0.
        if alpha >= 0.0 {
            prop_assert!(base <= capacity / mean + 1e-9);
        }
    }

    /// Estimators are scale-equivariant: scaling all rates by k scales
    /// the mean by k and the variance by k².
    #[test]
    fn estimator_scale_equivariance(
        k in 0.1f64..10.0,
        rates in proptest::collection::vec(0.0f64..10.0, 2..20),
        t_m in 0.0f64..5.0,
    ) {
        let mut a = FilteredEstimator::new(t_m);
        let mut b = FilteredEstimator::new(t_m);
        let scaled: Vec<f64> = rates.iter().map(|&r| r * k).collect();
        a.observe(0.0, &rates);
        b.observe(0.0, &scaled);
        a.observe(1.0, &rates);
        b.observe(1.0, &scaled);
        let ea = a.estimate().unwrap();
        let eb = b.estimate().unwrap();
        prop_assert!((eb.mean - k * ea.mean).abs() < 1e-9 * (1.0 + eb.mean.abs()));
        prop_assert!((eb.variance - k * k * ea.variance).abs() < 1e-8 * (1.0 + eb.variance.abs()));
    }

    /// The certainty-equivalence penalty is universal: worse than the
    /// target but bounded by Q(α/√2) exactly, for any target.
    #[test]
    fn sqrt2_penalty_ordering(exp in 1.0f64..10.0) {
        let p_q = 10f64.powf(-exp);
        let pf = impulsive::pf_certainty_equivalent(p_q);
        prop_assert!(pf > p_q);
        // And the fix restores the target exactly.
        let p_ce = impulsive::pce_for_target(p_q);
        prop_assert!(p_ce < p_q);
        let restored = impulsive::pf_certainty_equivalent(p_ce);
        prop_assert!((restored / p_q - 1.0).abs() < 1e-6);
    }

    /// The overflow formula (37) is monotone decreasing in the safety
    /// factor everywhere, and monotone decreasing in memory *under
    /// time-scale separation* (γ ≫ 1). Outside that regime more memory
    /// can legitimately hurt: against slowly-moving traffic a long
    /// window produces a stale estimate (the `Q(α√(1+T_c/T_m))`
    /// immediate-mismatch term), while the memoryless estimate is
    /// momentarily exact — the flip side of the paper's masking/repair
    /// dichotomy, and the reason the window rule is `T_m = T̃_h` rather
    /// than "as large as possible".
    #[test]
    fn pf_formula_monotonicity(
        cov in 0.1f64..0.6,
        t_h_tilde in 5.0f64..200.0,
        t_c in 0.05f64..20.0,
        alpha in 1.0f64..5.0,
        t_m in 0.0f64..50.0,
    ) {
        let m = ContinuousModel::new(cov, t_h_tilde, t_c);
        let p0 = m.pf_with_memory(alpha, t_m);
        let p_more_alpha = m.pf_with_memory(alpha + 0.5, t_m);
        prop_assert!(p_more_alpha <= p0 * 1.001, "alpha: {p_more_alpha} vs {p0}");
        prop_assert!((0.0..=1.0).contains(&p0));
        if m.gamma() > 20.0 {
            // 25% slack: once T_m is already large the (tiny) stale-
            // estimate term Q(α√(1+T_c/T_m)) creeps up slightly with
            // extra memory even though the dominant drift term falls.
            let p_more_mem = m.pf_with_memory(alpha, t_m + 10.0);
            prop_assert!(
                p_more_mem <= p0 * 1.25 + 1e-12,
                "separated regime (γ={}): memory must help: {p_more_mem} vs {p0}",
                m.gamma()
            );
        }
    }

    /// The separated closed form (38) agrees with the numeric (37)
    /// whenever time scales actually separate.
    #[test]
    fn closed_form_agrees_under_separation(
        cov in 0.2f64..0.4,
        alpha in 2.0f64..4.0,
        t_m_ratio in 0.0f64..1.0,
    ) {
        // Force γ = cov·T̃_h/T_c ≥ 60.
        let t_c = 0.5;
        let t_h_tilde = 60.0 * t_c / cov;
        let m = ContinuousModel::new(cov, t_h_tilde, t_c);
        let t_m = t_m_ratio * t_h_tilde;
        let numeric = m.pf_with_memory(alpha, t_m);
        let closed = m.pf_with_memory_separated(alpha, t_m);
        prop_assert!((numeric / closed - 1.0).abs() < 0.1,
            "γ={}: numeric {numeric} vs closed {closed}", m.gamma());
    }

    /// Policy trait-object dispatch matches direct calls.
    #[test]
    fn dyn_policy_matches_static(
        mean in 0.5f64..2.0,
        var in 0.01f64..1.0,
        capacity in 50.0f64..500.0,
    ) {
        let est = Estimate::new(mean, var);
        let ce = CertaintyEquivalent::from_probability(1e-3);
        let dynamic: &dyn AdmissionPolicy = &ce;
        prop_assert_eq!(
            ce.admissible_count(est, capacity).to_bits(),
            dynamic.admissible_count(est, capacity).to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulator conservation law across random small configurations:
    /// admitted − departed = in-system, and utilization ∈ (0, ~1].
    #[test]
    fn simulator_conservation(
        seed in 0u64..1000,
        capacity in 20.0f64..60.0,
        holding in 10.0f64..50.0,
    ) {
        use mbac_sim::{ContinuousConfig, ContinuousLoad, MbacController, SessionBuilder};
        use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
        let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(2.0)),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let cfg = ContinuousConfig {
            capacity,
            mean_holding: holding,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 30,
            seed,
        };
        let rep = SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
            .unwrap();
        prop_assert!(rep.admitted >= rep.departed);
        prop_assert!(rep.mean_utilization > 0.0 && rep.mean_utilization < 1.3);
        prop_assert!(rep.pf.samples <= 30);
        prop_assert!((rep.pf.value >= 0.0) && (rep.pf.value <= 1.0));
    }
}
