//! Quickstart: admit flows onto a bufferless link with a robust
//! measurement-based admission controller.
//!
//! Walks the whole public API in one sitting:
//! 1. describe the link and the QoS target;
//! 2. run the §5.3 robust design procedure (memory window + adjusted
//!    certainty-equivalent target);
//! 3. simulate the controller under continuous overload with the
//!    paper's RCBR traffic;
//! 4. compare the realized overflow probability with the target and
//!    with the theory's prediction.
//!
//! Run with: `cargo run --release --example quickstart`

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_core::params::{FlowStats, QosTarget};
use mbac_core::robust::{DesignInputs, RobustDesign};
use mbac_sim::{ContinuousConfig, ContinuousLoad, MbacController, SessionBuilder};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

fn main() {
    // 1. The system: a link that fits n = 400 mean-rate flows, flows
    //    hold for 500 time units on average, and the users were promised
    //    an overflow probability of at most 1e-2.
    let n: f64 = 400.0;
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let qos = QosTarget::new(1e-2);
    let holding_time = 500.0;
    println!(
        "link: capacity {}, flows ~ (mean 1.0, sd 0.3), target p_q = {}",
        n, qos.p
    );

    // 2. Robust design: T_m = T̃_h and an adjusted certainty-equivalent
    //    target, robust over an order-of-magnitude range of unknown
    //    traffic correlation time-scales.
    let design = RobustDesign::design(&DesignInputs {
        n,
        flow,
        holding_time,
        qos,
        t_c_range: (0.25, 4.0),
    });
    println!(
        "robust design: T_m = {:.1} (= T̃_h), adjusted p_ce = {:.2e} (α_ce = {:.2}), \
         predicted p_f = {:.2e}",
        design.t_m, design.p_ce, design.alpha_ce, design.predicted_pf
    );

    // 3. Simulate under continuous overload with RCBR video-like
    //    traffic whose true correlation time-scale the controller was
    //    never told.
    let true_t_c = 1.0;
    let model = RcbrModel::new(RcbrConfig::paper_default(true_t_c));
    let mut controller = MbacController::new(
        Box::new(FilteredEstimator::new(design.t_m)),
        Box::new(CertaintyEquivalent::from_probability(
            design.p_ce.max(1e-300),
        )),
    );
    let cfg = ContinuousConfig {
        capacity: n * flow.mean,
        mean_holding: holding_time,
        tick: 0.25,
        warmup: 10.0 * design.t_h_tilde,
        sample_spacing: ContinuousConfig::paper_spacing(design.t_h_tilde, design.t_m, true_t_c),
        target: qos.p,
        max_samples: 3000,
        seed: 7,
    };
    let report = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg, &model, &mut controller))
        .expect("valid config");

    // 4. The verdict.
    println!(
        "simulated: p_f = {:.2e} ({:?}, {} samples, {} overflows), utilization {:.1}%, \
         mean flows {:.0}",
        report.pf.value,
        report.pf.method,
        report.pf.samples,
        report.pf.overflows,
        100.0 * report.mean_utilization,
        report.mean_flows
    );
    if report.pf.value <= qos.p * 1.2 {
        println!("=> QoS target met (within sampling noise) without any a-priori traffic spec.");
    } else {
        println!("=> QoS target missed — investigate (unexpected for this configuration).");
    }

    // Bonus: what the naive (unadjusted, memoryless) MBAC would have
    // done in the same situation.
    let mut naive = MbacController::new(
        Box::new(FilteredEstimator::new(0.0)),
        Box::new(CertaintyEquivalent::new(qos)),
    );
    let naive_report = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg, &model, &mut naive))
        .expect("valid config");
    println!(
        "for contrast, naive memoryless certainty-equivalence: p_f = {:.2e} \
         ({}x the target)",
        naive_report.pf.value,
        (naive_report.pf.value / qos.p).round()
    );
}
