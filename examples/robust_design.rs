//! Robust design walkthrough: how much memory, how much conservatism?
//!
//! An operator's view of the paper's framework as a *design tool*: given
//! a link and a QoS promise, sweep the two design knobs — estimator
//! memory `T_m` and certainty-equivalent target `p_ce` — through the
//! theory formulas (no simulation) and print the resulting
//! safety/utilization frontier. Then run the §5.3 procedure and show
//! where its choice lands.
//!
//! Run with: `cargo run --release --example robust_design`

use mbac_core::params::{FlowStats, QosTarget};
use mbac_core::robust::{DesignInputs, RobustDesign};
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_core::theory::utilization::mean_utilization;

fn main() {
    // The system on the whiteboard.
    let n: f64 = 2500.0;
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let holding = 5000.0;
    let p_q = 1e-4;
    let qos = QosTarget::new(p_q);
    let t_h_tilde = holding / n.sqrt();
    println!("system: n = {n}, T_h = {holding}, T̃_h = {t_h_tilde}, target p_q = {p_q}\n");

    // Design surface: for each memory window, the p_ce that meets the
    // target (worst-cased over an unknown T_c ∈ [0.1, 10]) and the
    // utilization that p_ce costs (eqn (5)/(40) arithmetic).
    println!(
        "{:>10} {:>14} {:>10} {:>12} {:>14}",
        "T_m", "p_ce(required)", "alpha_ce", "utilization", "worst T_c"
    );
    let t_cs: Vec<f64> = (0..=8).map(|k| 0.1 * 10f64.powf(k as f64 / 4.0)).collect();
    for &ratio in &[0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let t_m = ratio * t_h_tilde;
        // Worst-case inversion over the unknown correlation time-scale.
        let mut alpha_req = qos.alpha();
        let mut worst_tc = t_cs[0];
        for &t_c in &t_cs {
            let model = ContinuousModel::new(flow.cov(), t_h_tilde, t_c);
            if let Ok(adj) = invert_pce(&model, t_m, p_q, InvertMethod::General) {
                if adj.alpha_ce > alpha_req {
                    alpha_req = adj.alpha_ce;
                    worst_tc = t_c;
                }
            }
        }
        let p_ce = mbac_num::q(alpha_req);
        let util = mean_utilization(n, flow, alpha_req);
        println!(
            "{:>10.1} {:>14.3e} {:>10.3} {:>11.2}% {:>14.2}",
            t_m,
            p_ce,
            alpha_req,
            100.0 * util,
            worst_tc
        );
    }

    // The §5.3 procedure's own pick.
    let design = RobustDesign::design(&DesignInputs {
        n,
        flow,
        holding_time: holding,
        qos,
        t_c_range: (0.1, 10.0),
    });
    println!(
        "\nRobustDesign picks: T_m = {:.1} (= T̃_h), p_ce = {:.3e}, predicted p_f = {:.2e}",
        design.t_m, design.p_ce, design.predicted_pf
    );
    println!(
        "utilization at the design point: {:.2}% (vs {:.2}% for a clairvoyant controller at α_q)",
        100.0 * mean_utilization(n, flow, design.alpha_ce),
        100.0 * mean_utilization(n, flow, qos.alpha())
    );
    println!(
        "\nreading the table: short windows force p_ce down by orders of magnitude and\n\
         tax utilization; past T_m ≈ T̃_h the required adjustment — and the tax —\n\
         flattens out. That knee is the paper's design rule."
    );
}
