//! Voice trunk: heterogeneous on–off telephony with realistic (finite)
//! call arrivals.
//!
//! A trunk carries two classes of calls — standard voice (on–off with
//! silence suppression) and high-quality conference audio — arriving as
//! a Poisson process, each class with its own holding time. This
//! exercises:
//!
//! * the Markov-fluid sources (Assumption B.6's model class),
//! * heterogeneous flows (§5.4): the naive variance estimator is biased
//!   conservative, the per-class estimator is not,
//! * the finite-arrival-rate harness (blocking probability as the
//!   second QoS metric alongside overflow).
//!
//! Run with: `cargo run --release --example voice_trunk`

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::heterogeneous::naive_variance_bias;
use mbac_core::estimators::FilteredEstimator;
use mbac_sim::{MbacController, PoissonConfig, PoissonLoad, SessionBuilder};
use mbac_traffic::markov::{MarkovFluidFactory, MarkovFluidModel};
use mbac_traffic::process::SourceModel;

fn main() {
    // Standard voice: 64 kb/s peak, talk-spurts ~0.4 s, silences ~0.6 s.
    let voice = MarkovFluidFactory::new(MarkovFluidModel::on_off(64.0, 0.4, 0.6));
    // Conference audio: 192 kb/s peak, mostly-on (0.8 s / 0.2 s).
    let conf = MarkovFluidFactory::new(MarkovFluidModel::on_off(192.0, 0.8, 0.2));
    println!(
        "voice class: mean {:.1} kb/s, sd {:.1};  conference class: mean {:.1} kb/s, sd {:.1}",
        voice.mean(),
        voice.std_dev(),
        conf.mean(),
        conf.std_dev()
    );

    // §5.4 in numbers: what the unclassified estimator would add on top
    // of the true within-class variance for a 80/20 voice/conference mix.
    let bias = naive_variance_bias(&[voice.mean(), conf.mean()], &[0.8, 0.2]);
    let within = 0.8 * voice.variance() + 0.2 * conf.variance();
    println!(
        "naive variance estimator on the 80/20 mix: within-class {:.0} + bias {:.0} = {:.0} \
         (+{:.0}% conservative)",
        within,
        bias,
        within + bias,
        100.0 * bias / within
    );

    // The trunk: 10 Mb/s, voice-class calls of ~180 s arriving at 2/s
    // (offered load 360 calls ≈ 9.2 Mb/s mean — near capacity).
    let capacity = 10_000.0; // kb/s
    let holding = 180.0;
    let p_q = 1e-2;
    let t_h_tilde = holding / (capacity / voice.mean()).sqrt();
    println!(
        "\ntrunk: {capacity} kb/s, T_h = {holding}s, T̃_h = {t_h_tilde:.1}s, target p_f ≤ {p_q}"
    );

    for (label, arrival_rate) in [("nominal load (λ=1.5/s)", 1.5), ("overload (λ=6/s)", 6.0)] {
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(t_h_tilde)),
            Box::new(CertaintyEquivalent::from_probability(p_q * 0.3)), // mild adjustment
        );
        let cfg = PoissonConfig {
            capacity,
            arrival_rate,
            mean_holding: holding,
            tick: 0.1,
            warmup: 20.0 * t_h_tilde,
            sample_spacing: 2.0 * t_h_tilde.max(1.0),
            target: p_q,
            max_samples: 1500,
            seed: 0xB01CE,
        };
        let rep = SessionBuilder::new()
            .run_local(&PoissonLoad::new(&cfg, &voice, &mut ctl))
            .expect("valid config");
        println!(
            "{label}: admitted {}/{} calls (blocking {:.1}%), utilization {:.0}%, \
             p_f = {:.2e} ({:?})",
            rep.admitted,
            rep.offered,
            100.0 * rep.blocking_probability,
            100.0 * rep.mean_utilization,
            rep.pf.value,
            rep.pf.method
        );
    }

    println!(
        "\ntakeaway: under overload the MBAC converts excess demand into blocking while\n\
         holding the in-call overflow probability at the target — the admission\n\
         decision, not the users' honesty, protects the QoS."
    );
}
