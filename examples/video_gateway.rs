//! Video gateway: admission control for long-range-dependent VBR video
//! over a shared uplink — the workload the paper's introduction
//! motivates (compressed VBR video whose slow time-scale behaviour
//! defeats a-priori traffic descriptors).
//!
//! A gateway multiplexes piecewise-CBR (RCBR-encoded) movie streams
//! onto one link. Each stream plays a long-range-dependent synthetic
//! movie trace (see `mbac_traffic::starwars`). The operator cannot
//! describe this traffic with a leaky bucket, and its correlation
//! structure spans decades of time-scales — exactly where the robust
//! `T_m = T̃_h` window rule earns its keep.
//!
//! The example contrasts three gateway configurations:
//!   A. peak-rate allocation (no multiplexing gain),
//!   B. naive memoryless MBAC at the raw target (unsafe),
//!   C. robust MBAC: `T_m = T̃_h` + adjusted target (safe and efficient).
//!
//! Run with: `cargo run --release --example video_gateway`

use mbac_core::admission::{CertaintyEquivalent, PeakRate};
use mbac_core::estimators::FilteredEstimator;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_sim::{
    ContinuousConfig, ContinuousLoad, ContinuousReport, MbacController, SessionBuilder,
};
use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
use mbac_traffic::trace::TraceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // The movie library: one LRD trace, streamed by every viewer from a
    // random position (independent phases).
    let trace_cfg = StarwarsConfig {
        slots: 1 << 15,
        ..StarwarsConfig::default()
    };
    let trace = Arc::new(generate_starwars_like(
        &trace_cfg,
        &mut StdRng::seed_from_u64(0x51DE0),
    ));
    println!(
        "movie trace: {} slots, mean rate {:.2}, peak {:.2}, cov {:.2}",
        trace.len(),
        trace.mean(),
        trace.peak(),
        trace.variance().sqrt() / trace.mean()
    );

    // Gateway: room for 200 mean-rate streams; viewers watch ~45 min
    // (2700 slots); QoS: renegotiation-failure probability ≤ 1e-2.
    let n: f64 = 200.0;
    let capacity = n * trace.mean();
    let holding = 2700.0;
    let p_q = 1e-2;
    let t_h_tilde = holding / n.sqrt();
    let model = TraceModel::new(trace.clone());

    let sim = |t_m: f64, p_ce: f64, seed: u64| -> ContinuousReport {
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(t_m)),
            Box::new(CertaintyEquivalent::from_probability(p_ce)),
        );
        let cfg = ContinuousConfig {
            capacity,
            mean_holding: holding,
            tick: 0.5,
            warmup: 12.0 * t_h_tilde.max(t_m).max(1.0),
            sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_m, trace.slot()),
            target: p_q,
            max_samples: 2500,
            seed,
        };
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
            .expect("valid config")
    };

    // A. Peak-rate allocation: a static bound, computed analytically.
    let peak_streams = (capacity / trace.peak()).floor();
    println!(
        "\nA. peak-rate gateway: {} streams ({:.0}% utilization), p_f = 0 by construction",
        peak_streams,
        100.0 * peak_streams * trace.mean() / capacity
    );
    let _ = PeakRate::new(trace.peak()); // the policy type exists for simulation use too

    // B. Naive MBAC: memoryless, raw target.
    let naive = sim(0.0, p_q, 11);
    println!(
        "B. naive MBAC (T_m = 0, p_ce = p_q): ~{:.0} streams, {:.0}% utilization, p_f = {:.2e} ({})",
        naive.mean_flows,
        100.0 * naive.mean_utilization,
        naive.pf.value,
        if naive.pf.value > p_q { "MISSES the 1e-2 target" } else { "meets target" }
    );

    // C. Robust MBAC: window rule + inverted target.
    let cov = trace.variance().sqrt() / trace.mean();
    let theory = ContinuousModel::new(cov, t_h_tilde, trace.slot());
    let p_ce = invert_pce(&theory, t_h_tilde, p_q, InvertMethod::Separated)
        .map(|a| a.p_ce)
        .unwrap_or(p_q)
        .max(1e-300);
    let robust = sim(t_h_tilde, p_ce, 12);
    println!(
        "C. robust MBAC (T_m = T̃_h = {:.0}, p_ce = {:.1e}): ~{:.0} streams, {:.0}% utilization, p_f = {:.2e} ({})",
        t_h_tilde,
        p_ce,
        robust.mean_flows,
        100.0 * robust.mean_utilization,
        robust.pf.value,
        if robust.pf.value <= p_q * 1.2 { "meets target" } else { "misses target" }
    );

    println!(
        "\nmultiplexing gain of robust MBAC over peak-rate: {:.1}x more streams at the same QoS class",
        robust.mean_flows / peak_streams
    );
}
