//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! manifest). It implements exactly the surface the workspace uses —
//! [`RngCore`], [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng`], and
//! [`rngs::StdRng`] — with a high-quality deterministic generator:
//! xoshiro256** seeded through SplitMix64, the standard combination
//! recommended by Blackman & Vigna. Streams are *not* bit-compatible
//! with upstream `rand`'s ChaCha-based `StdRng`; every consumer in this
//! workspace only relies on determinism-from-seed and statistical
//! quality, both of which hold.

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let extra = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&extra[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly "at standard" (the analogue of upstream's
/// `Standard` distribution): `rng.gen::<T>()`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, bound)` by rejection (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, width + 1) as i128) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform on `[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// so that nearby seeds yield statistically independent streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman & Vigna).
    /// Deterministic from its seed; passes BigCrush; period 2^256 − 1.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; perturb it the
            // same way upstream xoshiro implementations do.
            if s == [0; 4] {
                let mut st = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_in_unit_interval_with_uniform_mean() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        assert!((acc / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = r.gen_range(0u64..10);
            assert!(k < 10);
            let i = r.gen_range(-3i32..3);
            assert!((-3..3).contains(&i));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut r = StdRng::seed_from_u64(6);
        let dynref: &mut dyn RngCore = &mut r;
        let x: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&x));
        let y = dynref.gen_range(2.0..3.0);
        assert!((2.0..3.0).contains(&y));
    }
}
