//! Offline stand-in for the `criterion` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this crate. It supports the surface the
//! workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input` /
//! `sample_size` / `finish`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a plain
//! wall-clock measurement loop instead of upstream's statistical
//! machinery: warm up briefly, then time batches until a fixed budget
//! elapses and report the per-iteration mean. Honest numbers, no
//! dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement entry point; one per bench binary.
pub struct Criterion {
    /// Target measurement budget per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_scale: 1.0,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let budget = self.measure_for;
        run_one(name, budget, f);
        self
    }
}

/// Identifies a parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_scale: f64,
}

impl BenchmarkGroup<'_> {
    /// Scales the measurement budget (upstream semantics: fewer samples
    /// for expensive benchmarks; here: a smaller time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_scale = (n as f64 / 100.0).clamp(0.05, 1.0);
        self
    }

    fn budget(&self) -> Duration {
        Duration::from_secs_f64(self.criterion.measure_for.as_secs_f64() * self.sample_scale)
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let budget = self.budget();
        run_one(name, budget, f);
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let budget = self.budget();
        run_one(&id.name, budget, |b| f(b, input));
        self
    }

    /// Ends the group (cosmetic; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up: one timing pass, also sizes the batches.
    f(&mut b);
    if b.iters == 0 {
        println!("  {name:<40} (no iterations)");
        return;
    }
    let mut total = b.elapsed;
    let mut iters = b.iters;
    while total < budget {
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let per_iter = total.as_nanos() as f64 / iters as f64;
    println!("  {name:<40} {:>12.1} ns/iter  ({iters} iters)", per_iter);
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `payload`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // Calibrate a batch so each measured run is at least ~1ms.
        let start = Instant::now();
        black_box(payload());
        let once = start.elapsed().max(Duration::from_nanos(10));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(payload());
        }
        self.elapsed += start.elapsed() + once;
        self.iters += batch + 1;
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("test");
        g.sample_size(10);
        let mut count = 0u64;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(count > 0);
    }
}
