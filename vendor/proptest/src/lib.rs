//! Offline stand-in for the `proptest` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this crate. It supports the surface the
//! workspace's property tests use: the [`proptest!`] macro with
//! optional `#![proptest_config(...)]`, `arg in strategy` bindings over
//! numeric ranges and [`collection::vec`], and
//! [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! Semantics: each test body runs for `ProptestConfig::cases` inputs
//! drawn deterministically from a per-test seed (derived from the test
//! name), so failures are reproducible run-to-run. Unlike upstream
//! there is **no shrinking**: a failing case reports the assertion
//! panic for the raw drawn values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default. The workspace's expensive properties set
        // their own (smaller) budget via `with_cases`.
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic source feeding strategies; one per test function.
pub struct TestRunnerRng(StdRng);

impl TestRunnerRng {
    /// Seeds from the test name, so each property has an independent,
    /// stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunnerRng(StdRng::seed_from_u64(h))
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Lengths acceptable to [`vec()`]: an exact size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with the given element strategy and
    /// length specification.
    pub struct VecStrategy<S: Strategy, L: SizeRange> {
        element: S,
        len: L,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; ) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[allow(unused_parens)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunnerRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), runner.rng());)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// The commonly-imported names.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..2.0, k in 1u64..5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&k));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_strategy_sizes(v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn exact_len_vec(v in collection::vec(0.0f64..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn deterministic_per_test_stream() {
        let mut a = super::TestRunnerRng::for_test("t");
        let mut b = super::TestRunnerRng::for_test("t");
        use rand::RngCore;
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }
}
