//! # mbac — facade crate
//!
//! Re-exports the member crates of the workspace under one roof, so the
//! examples and integration tests (and downstream users who want a
//! single dependency) can write `mbac::core::...`, `mbac::sim::...`,
//! etc. See the individual crates for the real documentation:
//!
//! * [`core`] (= `mbac-core`) — estimators, admission criteria, the
//!   Grossglauser–Tse theory, robust design, utility-based QoS;
//! * [`metrics`] (= `mbac-metrics`) — aggregated, mergeable simulation
//!   instruments (counters, gauges, histograms, series);
//! * [`traffic`] (= `mbac-traffic`) — RCBR / Markov / AR(1) /
//!   multi-scale / fGn / trace sources;
//! * [`sim`] (= `mbac-sim`) — the discrete-event simulator and the
//!   three load-model harnesses;
//! * [`num`] (= `mbac-num`) — the numerics substrate.

pub use mbac_core as core;
pub use mbac_metrics as metrics;
pub use mbac_num as num;
pub use mbac_sim as sim;
pub use mbac_traffic as traffic;
