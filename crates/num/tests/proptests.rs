//! Property-based tests for the numerics substrate.

use mbac_num::complex::Complex64;
use mbac_num::fft::{fft, ifft};
use mbac_num::linalg::{solve, Matrix};
use mbac_num::rng::NormalSampler;
use mbac_num::{
    brent, erf, erfc, integrate, parallel_map_with_stats, q, KernelDispatch, RateMoments,
    RunningStats,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// erf is odd and bounded; erf + erfc = 1.
    #[test]
    fn erf_identities(x in -20.0f64..20.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    /// erf is strictly increasing where f64 can resolve it: beyond
    /// |x| ≈ 4.5 the function is within one ulp of ±1 and a small step
    /// produces no representable change, so the strict check is
    /// restricted to |a| ≤ 4 (erf'(4)·1e-6 ≈ 1.3e-13 ≫ ulp(1.0)).
    #[test]
    fn erf_monotone(a in -4.0f64..4.0, delta in 1e-6f64..3.0) {
        prop_assert!(erf(a + delta) > erf(a));
    }

    /// Q is a survival function: decreasing, in [0, 1].
    #[test]
    fn q_is_survival(a in -10.0f64..10.0, delta in 1e-6f64..3.0) {
        let qa = q(a);
        prop_assert!((0.0..=1.0).contains(&qa));
        prop_assert!(q(a + delta) <= qa);
    }

    /// Quadrature is linear: ∫(αf + βg) = α∫f + β∫g (polynomials).
    #[test]
    fn quadrature_linearity(
        alpha in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
    ) {
        let f = |x: f64| c1 * x * x + 1.0;
        let g = |x: f64| c2 * x - 0.5;
        let lhs = integrate(|x| alpha * f(x) + beta * g(x), -1.0, 2.0, 1e-11).value;
        let rhs = alpha * integrate(f, -1.0, 2.0, 1e-11).value
            + beta * integrate(g, -1.0, 2.0, 1e-11).value;
        prop_assert!((lhs - rhs).abs() < 1e-8, "lhs {lhs} rhs {rhs}");
    }

    /// Brent finds the root of any strictly increasing cubic.
    #[test]
    fn brent_roots_increasing_cubics(
        root in -5.0f64..5.0,
        scale in 0.1f64..4.0,
    ) {
        let f = |x: f64| scale * ((x - root) + 0.2 * (x - root).powi(3));
        let r = brent(f, -20.0, 20.0, 1e-12, 200).unwrap();
        prop_assert!((r.x - root).abs() < 1e-8, "found {} want {root}", r.x);
    }

    /// FFT round-trips arbitrary signals.
    #[test]
    fn fft_roundtrip(values in proptest::collection::vec(-100.0f64..100.0, 1..65)) {
        let n = values.len().next_power_of_two();
        let mut x: Vec<Complex64> =
            values.iter().map(|&v| Complex64::new(v, -0.5 * v)).collect();
        x.resize(n, Complex64::ZERO);
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval holds for arbitrary signals.
    #[test]
    fn fft_parseval(values in proptest::collection::vec(-10.0f64..10.0, 2..40)) {
        let n = values.len().next_power_of_two();
        let mut x: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        x.resize(n, Complex64::ZERO);
        let spec = fft(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() < 1e-8 * (1.0 + e_time));
    }

    /// Linear solve leaves a small residual on well-conditioned systems
    /// (diagonally dominant by construction).
    #[test]
    fn solve_residual(entries in proptest::collection::vec(-1.0f64..1.0, 16), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let mut m = Matrix::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                m.set(r, c, entries[r * 4 + c]);
            }
            m.set(r, r, 5.0 + entries[r * 4 + r]); // dominance
        }
        let x = solve(&m, &b).unwrap();
        let ax = m.mul_vec(&x);
        for i in 0..4 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-9);
        }
    }

    /// Welford merging is order-independent (up to fp tolerance).
    #[test]
    fn welford_merge_commutes(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..30),
        ys in proptest::collection::vec(-100.0f64..100.0, 1..30),
    ) {
        let fill = |v: &[f64]| {
            let mut s = RunningStats::new();
            for &x in v {
                s.push(x);
            }
            s
        };
        let mut ab = fill(&xs);
        ab.merge(&fill(&ys));
        let mut ba = fill(&ys);
        ba.merge(&fill(&xs));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7 * (1.0 + ab.variance()));
        prop_assert_eq!(ab.count(), ba.count());
    }

    /// The scalar and wide innovation-fill kernels are bit-exact twins
    /// for arbitrary seeds and lengths (including lengths straddling
    /// the wide kernel's block boundary): identical values AND identical
    /// RNG end state.
    #[test]
    fn fill_dispatch_twins(seed in 0u64..u64::MAX, len in 0usize..520) {
        let sampler = NormalSampler::get();
        let mut wide_rng = StdRng::seed_from_u64(seed);
        let mut scalar_rng = wide_rng.clone();
        let mut wide = vec![0.0f64; len];
        let mut scalar = vec![0.0f64; len];
        sampler.fill_with(KernelDispatch::Wide, &mut wide_rng, &mut wide);
        sampler.fill_with(KernelDispatch::Scalar, &mut scalar_rng, &mut scalar);
        let wb: Vec<u64> = wide.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(wb, sb);
        prop_assert_eq!(wide_rng, scalar_rng);
    }

    /// Lane-tiled moment accumulation is bit-identical to sequential
    /// adds for arbitrary data and pivots, including remainders that
    /// don't fill a whole tile.
    #[test]
    fn moments_lane_twin(
        xs in proptest::collection::vec(-100.0f64..100.0, 0..64),
        pivot in -10.0f64..10.0,
    ) {
        let mut lanes = RateMoments::new(pivot);
        let mut seq = RateMoments::new(pivot);
        let mut chunks = xs.chunks_exact(8);
        for chunk in &mut chunks {
            lanes.add_lanes::<8>(chunk.try_into().unwrap());
        }
        lanes.add_slice(chunks.remainder());
        seq.add_slice(&xs);
        prop_assert_eq!(lanes.count(), seq.count());
        prop_assert_eq!(lanes.sum().to_bits(), seq.sum().to_bits());
        prop_assert_eq!(
            lanes.sum_sq_dev(pivot + 0.25).to_bits(),
            seq.sum_sq_dev(pivot + 0.25).to_bits()
        );
    }

    /// The instrumented pool returns outputs identical to sequential
    /// evaluation for any worker count, and its accounting covers every
    /// item exactly once.
    #[test]
    fn pool_stats_account_for_all_items(n in 0usize..90, workers in 1usize..6) {
        let items: Vec<u64> = (0..n as u64).collect();
        let want: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) ^ 0x5A).collect();
        let (got, stats) =
            parallel_map_with_stats(items, |&x| x.wrapping_mul(2654435761) ^ 0x5A, workers);
        prop_assert_eq!(got, want);
        prop_assert_eq!(stats.total_items(), n as u64);
        if n > 0 {
            prop_assert_eq!(stats.workers.len(), workers.min(n));
        }
    }
}
