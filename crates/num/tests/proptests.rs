//! Property-based tests for the numerics substrate.

use mbac_num::complex::Complex64;
use mbac_num::fft::{fft, ifft};
use mbac_num::linalg::{solve, Matrix};
use mbac_num::{brent, erf, erfc, integrate, q, RunningStats};
use proptest::prelude::*;

proptest! {
    /// erf is odd and bounded; erf + erfc = 1.
    #[test]
    fn erf_identities(x in -20.0f64..20.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    /// erf is strictly increasing where f64 can resolve it: beyond
    /// |x| ≈ 4.5 the function is within one ulp of ±1 and a small step
    /// produces no representable change, so the strict check is
    /// restricted to |a| ≤ 4 (erf'(4)·1e-6 ≈ 1.3e-13 ≫ ulp(1.0)).
    #[test]
    fn erf_monotone(a in -4.0f64..4.0, delta in 1e-6f64..3.0) {
        prop_assert!(erf(a + delta) > erf(a));
    }

    /// Q is a survival function: decreasing, in [0, 1].
    #[test]
    fn q_is_survival(a in -10.0f64..10.0, delta in 1e-6f64..3.0) {
        let qa = q(a);
        prop_assert!((0.0..=1.0).contains(&qa));
        prop_assert!(q(a + delta) <= qa);
    }

    /// Quadrature is linear: ∫(αf + βg) = α∫f + β∫g (polynomials).
    #[test]
    fn quadrature_linearity(
        alpha in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
    ) {
        let f = |x: f64| c1 * x * x + 1.0;
        let g = |x: f64| c2 * x - 0.5;
        let lhs = integrate(|x| alpha * f(x) + beta * g(x), -1.0, 2.0, 1e-11).value;
        let rhs = alpha * integrate(f, -1.0, 2.0, 1e-11).value
            + beta * integrate(g, -1.0, 2.0, 1e-11).value;
        prop_assert!((lhs - rhs).abs() < 1e-8, "lhs {lhs} rhs {rhs}");
    }

    /// Brent finds the root of any strictly increasing cubic.
    #[test]
    fn brent_roots_increasing_cubics(
        root in -5.0f64..5.0,
        scale in 0.1f64..4.0,
    ) {
        let f = |x: f64| scale * ((x - root) + 0.2 * (x - root).powi(3));
        let r = brent(f, -20.0, 20.0, 1e-12, 200).unwrap();
        prop_assert!((r.x - root).abs() < 1e-8, "found {} want {root}", r.x);
    }

    /// FFT round-trips arbitrary signals.
    #[test]
    fn fft_roundtrip(values in proptest::collection::vec(-100.0f64..100.0, 1..65)) {
        let n = values.len().next_power_of_two();
        let mut x: Vec<Complex64> =
            values.iter().map(|&v| Complex64::new(v, -0.5 * v)).collect();
        x.resize(n, Complex64::ZERO);
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval holds for arbitrary signals.
    #[test]
    fn fft_parseval(values in proptest::collection::vec(-10.0f64..10.0, 2..40)) {
        let n = values.len().next_power_of_two();
        let mut x: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        x.resize(n, Complex64::ZERO);
        let spec = fft(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((e_time - e_freq).abs() < 1e-8 * (1.0 + e_time));
    }

    /// Linear solve leaves a small residual on well-conditioned systems
    /// (diagonally dominant by construction).
    #[test]
    fn solve_residual(entries in proptest::collection::vec(-1.0f64..1.0, 16), b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let mut m = Matrix::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                m.set(r, c, entries[r * 4 + c]);
            }
            m.set(r, r, 5.0 + entries[r * 4 + r]); // dominance
        }
        let x = solve(&m, &b).unwrap();
        let ax = m.mul_vec(&x);
        for i in 0..4 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-9);
        }
    }

    /// Welford merging is order-independent (up to fp tolerance).
    #[test]
    fn welford_merge_commutes(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..30),
        ys in proptest::collection::vec(-100.0f64..100.0, 1..30),
    ) {
        let fill = |v: &[f64]| {
            let mut s = RunningStats::new();
            for &x in v {
                s.push(x);
            }
            s
        };
        let mut ab = fill(&xs);
        ab.merge(&fill(&ys));
        let mut ba = fill(&ys);
        ba.merge(&fill(&xs));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7 * (1.0 + ab.variance()));
        prop_assert_eq!(ab.count(), ba.count());
    }
}
