//! Sufficient statistics for one tick's aggregate-rate observation.
//!
//! The fused tick kernels evolve every flow **and** reduce the fresh
//! rates into a [`RateMoments`] in the same pass, so the controller's
//! `observe` becomes O(1) per tick: it consumes `(n, Σx, Σ(x−c),
//! Σ(x−c)²)` instead of rescanning the rate vector.
//!
//! Two numerical commitments make this safe to swap into the reporting
//! path:
//!
//! * `sum` is a **flat left-to-right fold in flow order** — the same
//!   operations in the same order as `snapshot.iter().sum()`, so the
//!   derived mean is bit-identical to the slice-based estimators'.
//! * The second moment is accumulated around a caller-chosen **pivot**
//!   `c` (typically the controller's previous mean estimate), and
//!   `Σ(x−m)²` is reconstructed via the exact algebraic identity
//!   `Σ(x−m)² = Σ(x−c)² − 2(m−c)Σ(x−c) + n(m−c)²`. With a pivot near
//!   the data mean the reconstruction agrees with a centered two-pass
//!   computation to ~1e-15 relative — the equivalence the estimator
//!   property tests pin at 1e-12.

/// One-pass pivoted moment accumulator over a tick's flow rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateMoments {
    n: usize,
    sum: f64,
    /// `Σ (x − c)` around the pivot.
    s1: f64,
    /// `Σ (x − c)²` around the pivot.
    s2: f64,
    pivot: f64,
}

impl RateMoments {
    /// Creates an empty accumulator centered on `pivot` (pass the best
    /// available guess of the mean; any finite value is *correct*, a
    /// close one is *well-conditioned*).
    #[inline]
    pub fn new(pivot: f64) -> Self {
        let pivot = if pivot.is_finite() { pivot } else { 0.0 };
        RateMoments {
            n: 0,
            sum: 0.0,
            s1: 0.0,
            s2: 0.0,
            pivot,
        }
    }

    /// Adds one rate observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.pivot;
        self.s1 += d;
        self.s2 += d * d;
    }

    /// Adds every element of a slice, in order.
    #[inline]
    pub fn add_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Adds a whole lane tile of observations, bit-identical to `LANES`
    /// sequential [`RateMoments::add`] calls in array order.
    ///
    /// The deviations `d = x − c` and squares `d·d` are elementwise and
    /// precomputed in a straight-line loop the autovectorizer packs into
    /// SIMD lanes; the three accumulator folds then run over the tile in
    /// array order. Each accumulator is an independent serial dependency
    /// chain, so interleaving the three chains cannot change any of
    /// their bit patterns — which is what keeps the full-precision
    /// figure goldens valid without re-blessing. A true lane-partial
    /// reduction (per-lane sub-accumulators combined at the end) would
    /// reassociate the FP adds and is deliberately **not** used here;
    /// see DESIGN.md §12.
    #[inline]
    pub fn add_lanes<const LANES: usize>(&mut self, xs: &[f64; LANES]) {
        let c = self.pivot;
        let mut d = [0.0f64; LANES];
        let mut dd = [0.0f64; LANES];
        for j in 0..LANES {
            d[j] = xs[j] - c;
            dd[j] = d[j] * d[j];
        }
        self.n += LANES;
        for &x in xs {
            self.sum += x;
        }
        for &v in &d {
            self.s1 += v;
        }
        for &v in &dd {
            self.s2 += v;
        }
    }

    /// Number of observations folded in.
    #[inline]
    pub fn count(&self) -> usize {
        self.n
    }

    /// The flat flow-order sum (bit-identical to `xs.iter().sum()` over
    /// the same values in the same order).
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The pivot the second moment is centered on.
    #[inline]
    pub fn pivot(&self) -> f64 {
        self.pivot
    }

    /// Sample mean `Σx / n` (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// `Σ (x − m)²` for an arbitrary center `m`, by exact algebra on the
    /// pivoted sums (clamped at 0 against rounding).
    #[inline]
    pub fn sum_sq_dev(&self, m: f64) -> f64 {
        let d = m - self.pivot;
        (self.s2 - 2.0 * d * self.s1 + self.n as f64 * d * d).max(0.0)
    }

    /// Unbiased sample variance around `m` (n−1 denominator; 0 when
    /// n < 2).
    #[inline]
    pub fn variance_around(&self, m: f64) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.sum_sq_dev(m) / (self.n - 1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<f64> {
        (0..257)
            .map(|i| 1.0 + 0.3 * ((i * 37 % 101) as f64 / 50.0 - 1.0))
            .collect()
    }

    #[test]
    fn sum_is_bit_identical_to_flat_fold() {
        let xs = data();
        let mut m = RateMoments::new(0.97);
        m.add_slice(&xs);
        let flat: f64 = xs.iter().sum();
        assert_eq!(m.sum(), flat);
        assert_eq!(m.mean(), flat / xs.len() as f64);
    }

    #[test]
    fn pivoted_variance_matches_two_pass() {
        let xs = data();
        for &pivot in &[0.0, 1.0, 0.97, -3.0] {
            let mut m = RateMoments::new(pivot);
            m.add_slice(&xs);
            let mean = m.mean();
            let two_pass: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
            let rel = (m.sum_sq_dev(mean) / two_pass - 1.0).abs();
            assert!(rel < 1e-12, "pivot {pivot}: rel err {rel}");
        }
    }

    #[test]
    fn arbitrary_center_identity() {
        let xs = data();
        let mut m = RateMoments::new(1.0);
        m.add_slice(&xs);
        let c = 1.234;
        let direct: f64 = xs.iter().map(|x| (x - c) * (x - c)).sum();
        assert!((m.sum_sq_dev(c) / direct - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let m = RateMoments::new(0.0);
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance_around(0.0), 0.0);
        let mut one = RateMoments::new(0.0);
        one.add(2.5);
        assert_eq!(one.mean(), 2.5);
        assert_eq!(one.variance_around(2.5), 0.0, "n < 2 has no variance");
    }

    #[test]
    fn non_finite_pivot_degrades_to_zero() {
        let m = RateMoments::new(f64::NAN);
        assert_eq!(m.pivot(), 0.0);
    }

    #[test]
    fn add_lanes_is_bit_identical_to_sequential_adds() {
        let xs = data();
        for &pivot in &[0.0, 0.97, -3.0] {
            let mut lanes = RateMoments::new(pivot);
            let mut seq = RateMoments::new(pivot);
            let mut chunks = xs.chunks_exact(8);
            for chunk in &mut chunks {
                let tile: &[f64; 8] = chunk.try_into().unwrap();
                lanes.add_lanes(tile);
            }
            lanes.add_slice(chunks.remainder());
            seq.add_slice(&xs);
            assert_eq!(lanes.count(), seq.count());
            assert_eq!(lanes.sum().to_bits(), seq.sum().to_bits());
            assert_eq!(lanes.s1.to_bits(), seq.s1.to_bits());
            assert_eq!(lanes.s2.to_bits(), seq.s2.to_bits());
        }
    }
}
