//! Deterministic fork-join parallelism over OS threads.
//!
//! Simulation points and Monte Carlo replications are independent and
//! CPU-bound, so we shard them across `std::thread::scope` workers (no
//! async runtime — see DESIGN.md §2). Results come back in **input
//! order** regardless of completion order or worker count, which is
//! what lets the parallel replication harnesses stay bit-deterministic.
//!
//! This lives in `mbac-num` (the dependency-free substrate crate) so
//! that both the simulator's replication sharding and the experiment
//! sweeps can reach it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, running up to `available_parallelism`
/// workers, and returns the outputs in input order.
///
/// `f` must be `Sync` (it is shared across workers); items are consumed
/// by index so no cloning occurs.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_with(items, f, default_workers())
}

/// The default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// As [`parallel_map`] with an explicit worker count. `workers == 1`
/// runs on a single spawned thread; output is identical for any count.
pub fn parallel_map_with<I, O, F>(items: Vec<I>, f: F, workers: usize) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(workers > 0);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let items = &items;
    let f = &f;
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                scope.spawn(|| {
                    // Work-steal by index: each worker claims the next
                    // unclaimed item, so uneven costs balance out.
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(&items[i])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, out) in handle.join().expect("parallel_map worker panicked") {
                slots[i] = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_sequential() {
        let items: Vec<i32> = (0..37).collect();
        let seq: Vec<i32> = items.iter().map(|&x| x - 3).collect();
        let par = parallel_map_with(items, |&x| x - 3, 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map_with(vec![1, 2, 3], |&x| x + 1, 64);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn output_independent_of_worker_count() {
        let items: Vec<u64> = (0..50).collect();
        let run = |w: usize| parallel_map_with(items.clone(), |&x| x.wrapping_mul(x) ^ 0xA5, w);
        let one = run(1);
        for w in [2, 3, 4, 8] {
            assert_eq!(one, run(w), "worker count {w} changed the output");
        }
    }

    #[test]
    fn heavy_uneven_work_still_ordered() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(items, |&x| {
            // Uneven busy work.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
