//! Deterministic parallelism over a **persistent** worker pool.
//!
//! Simulation points and Monte Carlo replications are independent and
//! CPU-bound. The original implementation forked a fresh
//! `std::thread::scope` per call, which made replication fan-out
//! flat-to-negative on short sessions: thread spawn/join cost rivals the
//! work itself when a replication takes tens of microseconds. This
//! version keeps a lazily-spawned pool of workers alive for the life of
//! the process and hands each call's index space to the participants as
//! chunked deques with work stealing:
//!
//! * the index range `0..n` is split into one contiguous deque per
//!   participant; owners pop chunks from the front, idle participants
//!   steal half of the largest remaining deque from the back, so uneven
//!   per-item costs still balance;
//! * the **caller participates** as worker 0. A call therefore
//!   completes even if every pool thread is busy with another session,
//!   and nested `parallel_map` calls cannot deadlock;
//! * results are merged **in input order** by index, so reports are
//!   byte-identical for any worker count — the contract the replication
//!   harnesses property-test.
//!
//! This lives in `mbac-num` (the dependency-free substrate crate) so
//! that both the simulator's replication sharding and the experiment
//! sweeps can reach it.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Work-accounting for one participant slot of one [`parallel_map_with`]
/// call: how many items it processed, how it obtained them, and how long
/// it was busy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Items this participant evaluated.
    pub items: u64,
    /// Chunks popped from the participant's own deque.
    pub own_chunks: u64,
    /// Chunks stolen from another participant's deque.
    pub steals: u64,
    /// Wall time this participant spent inside the call (claim + work).
    pub busy_ns: u64,
}

impl WorkerStats {
    /// Elementwise accumulate (commutative and associative, so merged
    /// snapshots are independent of merge order).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.items += other.items;
        self.own_chunks += other.own_chunks;
        self.steals += other.steals;
        self.busy_ns += other.busy_ns;
    }
}

/// Aggregated work-accounting for one or more [`parallel_map_with_stats`]
/// calls, per participant slot. Slot 0 is always the caller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolCallStats {
    /// Per-slot stats, indexed by participant slot.
    pub workers: Vec<WorkerStats>,
    /// Wall time of the whole call (sum over calls when merged).
    pub elapsed_ns: u64,
}

impl PoolCallStats {
    /// Total items processed across all slots.
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Total steal events across all slots.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Fraction of the call's wall time slot `slot` was busy, in
    /// `[0, 1]`-ish (clock jitter can nudge it past 1).
    pub fn utilization(&self, slot: usize) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.workers
            .get(slot)
            .map_or(0.0, |w| w.busy_ns as f64 / self.elapsed_ns as f64)
    }

    /// Accumulates another call's stats slot-by-slot. All fields are
    /// sums of non-negative integers, so any merge order produces the
    /// same result — the invariance the metrics snapshot test pins.
    pub fn merge(&mut self, other: &PoolCallStats) {
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerStats::default());
        }
        for (slot, w) in other.workers.iter().enumerate() {
            self.workers[slot].merge(w);
        }
        self.elapsed_ns += other.elapsed_ns;
    }
}

/// Applies `f` to every item, running up to `available_parallelism`
/// workers, and returns the outputs in input order.
///
/// `f` must be `Sync` (it is shared across workers); items are consumed
/// by index so no cloning occurs.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_with(items, f, default_workers())
}

/// The default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// As [`parallel_map`] with an explicit worker count. `workers == 1`
/// runs inline on the caller; output is identical for any count.
pub fn parallel_map_with<I, O, F>(items: Vec<I>, f: F, workers: usize) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_with_stats(items, f, workers).0
}

/// As [`parallel_map_with`], also returning per-worker accounting for
/// the call: items, own-deque chunks, steals, and busy time per slot.
/// The outputs are identical to the stat-less entry points.
pub fn parallel_map_with_stats<I, O, F>(
    items: Vec<I>,
    f: F,
    workers: usize,
) -> (Vec<O>, PoolCallStats)
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(workers > 0);
    let started = Instant::now();
    let n = items.len();
    if n == 0 {
        return (Vec::new(), PoolCallStats::default());
    }
    let participants = workers.min(n);
    if participants == 1 {
        // Single participant: no shared state, no synchronization.
        let out: Vec<O> = items.iter().map(f).collect();
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let stats = PoolCallStats {
            workers: vec![WorkerStats {
                items: n as u64,
                own_chunks: 1,
                steals: 0,
                busy_ns: elapsed_ns,
            }],
            elapsed_ns,
        };
        return (out, stats);
    }

    let shared = Shared {
        items: &items,
        f: &f,
        deques: split_deques(n, participants),
        chunk: (n / (participants * 8)).max(1),
        results: Mutex::new(Vec::with_capacity(n)),
        stats: Mutex::new(vec![WorkerStats::default(); participants]),
        panic: Mutex::new(None),
        poisoned: AtomicBool::new(false),
        finished: Mutex::new(0),
        finished_cv: Condvar::new(),
    };

    // Offer the remaining participant slots to the pool, then do our own
    // share (and steal the slots nobody picked up).
    let job = JobMsg {
        ctx: (&shared as *const Shared<'_, I, O, F>).cast(),
        enter: enter_erased::<I, O, F>,
        next_slot: 1,
        slots_end: participants,
    };
    let handle = pool().submit(job, participants - 1);
    shared.run_participant(0);
    let entered = pool().retire(handle);

    // Wait for every pool participant that entered to leave `shared`
    // before it goes out of scope (they hold references into our stack).
    {
        let mut done = shared.finished.lock().unwrap();
        while *done < entered {
            done = shared.finished_cv.wait(done).unwrap();
        }
    }

    if let Some(payload) = shared.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }

    // Deterministic input-order merge: slot the (index, output) pairs.
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, out) in shared.results.into_inner().unwrap() {
        slots[i] = Some(out);
    }
    let out = slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect();
    let stats = PoolCallStats {
        workers: shared.stats.into_inner().unwrap(),
        elapsed_ns: started.elapsed().as_nanos() as u64,
    };
    (out, stats)
}

/// Initial contiguous split of `0..n` into one deque per participant.
fn split_deques(n: usize, participants: usize) -> Vec<Mutex<Range<usize>>> {
    (0..participants)
        .map(|p| {
            let lo = p * n / participants;
            let hi = (p + 1) * n / participants;
            Mutex::new(lo..hi)
        })
        .collect()
}

/// Per-call shared state, living on the caller's stack. Pool workers
/// reach it through a type-erased pointer; the caller's completion latch
/// guarantees it outlives every participant.
struct Shared<'a, I, O, F> {
    items: &'a [I],
    f: &'a F,
    /// One chunked index deque per participant (owner pops the front,
    /// thieves split the back).
    deques: Vec<Mutex<Range<usize>>>,
    /// Owner-side chunk size.
    chunk: usize,
    /// Completed `(index, output)` pairs from all participants.
    results: Mutex<Vec<(usize, O)>>,
    /// Per-slot work accounting, written once per participant on exit.
    stats: Mutex<Vec<WorkerStats>>,
    /// First panic payload observed in any participant.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Set when a participant panicked: others drain quickly.
    poisoned: AtomicBool,
    /// Count of *pool* participants that have fully left `Shared`.
    finished: Mutex<usize>,
    finished_cv: Condvar,
}

impl<I, O, F> Shared<'_, I, O, F>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    /// Claims the next chunk of work for `slot`: the front of its own
    /// deque, else half of the fullest other deque (stolen off the back).
    /// Records the claim (own pop vs steal) into `acct`.
    fn claim(&self, slot: usize, acct: &mut WorkerStats) -> Option<Range<usize>> {
        {
            let mut own = self.deques[slot].lock().unwrap();
            if !own.is_empty() {
                let take = self.chunk.min(own.len());
                let r = own.start..own.start + take;
                own.start += take;
                acct.own_chunks += 1;
                return Some(r);
            }
        }
        // Steal: pick the victim with the most remaining work so the
        // split keeps both sides busy longest.
        loop {
            let victim = (0..self.deques.len())
                .filter(|&v| v != slot)
                .max_by_key(|&v| self.deques[v].lock().unwrap().len())?;
            let mut d = self.deques[victim].lock().unwrap();
            if d.is_empty() {
                // Lost the race; rescan unless everything is empty.
                drop(d);
                if self.deques.iter().all(|d| d.lock().unwrap().is_empty()) {
                    return None;
                }
                continue;
            }
            let take = d.len().div_ceil(2);
            let r = d.end - take..d.end;
            d.end -= take;
            acct.steals += 1;
            return Some(r);
        }
    }

    fn run_participant(&self, slot: usize) {
        let entered = Instant::now();
        let mut acct = WorkerStats::default();
        let mut produced: Vec<(usize, O)> = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            while let Some(range) = self.claim(slot, &mut acct) {
                acct.items += range.len() as u64;
                for i in range {
                    produced.push((i, (self.f)(&self.items[i])));
                }
                if self.poisoned.load(Ordering::Relaxed) {
                    break;
                }
            }
        }));
        if let Err(payload) = outcome {
            self.poisoned.store(true, Ordering::Relaxed);
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        self.results.lock().unwrap().extend(produced);
        acct.busy_ns = entered.elapsed().as_nanos() as u64;
        self.stats.lock().unwrap()[slot] = acct;
    }

    /// Pool-worker epilogue: record completion and wake the caller.
    fn finish_pool_participant(&self) {
        let mut done = self.finished.lock().unwrap();
        *done += 1;
        self.finished_cv.notify_all();
    }
}

/// Monomorphized entry point a pool worker calls through the erased
/// function pointer.
///
/// # Safety
/// `ctx` must point at a live `Shared<I, O, F>`; the caller's latch in
/// `parallel_map_with` keeps it alive until this returns.
unsafe fn enter_erased<I, O, F>(ctx: *const (), slot: usize)
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let shared = &*ctx.cast::<Shared<'_, I, O, F>>();
    shared.run_participant(slot);
    shared.finish_pool_participant();
}

/// A type-erased offer of participant slots in one `parallel_map` call.
struct JobMsg {
    ctx: *const (),
    enter: unsafe fn(*const (), usize),
    /// Next participant slot a pool worker would take.
    next_slot: usize,
    /// One past the last slot (`participants`).
    slots_end: usize,
}

// Safety: `ctx` is only dereferenced through `enter`, and the submitting
// caller blocks until every worker that claimed a slot has finished.
unsafe impl Send for JobMsg {}

/// Handle identifying a submitted job in the pool queue.
struct JobHandle {
    id: u64,
}

struct QueuedJob {
    id: u64,
    msg: JobMsg,
    /// Pool participants that claimed a slot (never un-claims).
    claimed: usize,
}

struct PoolState {
    queue: Vec<QueuedJob>,
    next_id: u64,
    spawned: usize,
    idle: usize,
}

/// The process-wide persistent pool: a job queue plus lazily spawned
/// workers that live for the life of the process.
struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    cap: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: Vec::new(),
            next_id: 0,
            spawned: 0,
            idle: 0,
        }),
        work_cv: Condvar::new(),
        // Enough threads to saturate the machine with headroom for a few
        // concurrent sessions; oversubscription beyond this is pointless.
        cap: default_workers().max(16),
    })
}

impl Pool {
    /// Enqueues `extra_slots` participant slots for pool workers,
    /// growing the pool (up to its cap) if too few workers are idle.
    fn submit(&self, msg: JobMsg, extra_slots: usize) -> JobHandle {
        let mut st = self.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        if extra_slots > 0 {
            st.queue.push(QueuedJob {
                id,
                msg,
                claimed: 0,
            });
            let wanted = extra_slots.saturating_sub(st.idle);
            let grow = wanted.min(self.cap.saturating_sub(st.spawned));
            for _ in 0..grow {
                st.spawned += 1;
                std::thread::Builder::new()
                    .name("mbac-pool".into())
                    .spawn(|| pool().worker_loop())
                    .expect("spawn pool worker");
            }
            drop(st);
            self.work_cv.notify_all();
        }
        JobHandle { id }
    }

    /// Removes the job from the queue (no further workers can claim a
    /// slot) and returns how many pool participants entered it.
    fn retire(&self, handle: JobHandle) -> usize {
        let mut st = self.state.lock().unwrap();
        match st.queue.iter().position(|j| j.id == handle.id) {
            Some(pos) => {
                let job = st.queue.swap_remove(pos);
                job.claimed
            }
            // Never enqueued (no extra slots were offered): nothing to
            // wait for. Enqueued jobs stay queued until this retire.
            None => 0,
        }
    }

    fn worker_loop(&self) {
        loop {
            let (enter, ctx, slot) = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if let Some(pos) = st
                        .queue
                        .iter()
                        .position(|j| j.msg.next_slot < j.msg.slots_end)
                    {
                        let job = &mut st.queue[pos];
                        let slot = job.msg.next_slot;
                        job.msg.next_slot += 1;
                        job.claimed += 1;
                        let enter = job.msg.enter;
                        let ctx = job.msg.ctx;
                        break (enter, ctx, slot);
                    }
                    st.idle += 1;
                    st = self.work_cv.wait(st).unwrap();
                    st.idle -= 1;
                }
            };
            // Safety: the submitting caller keeps `ctx` alive until its
            // completion latch sees this participant finish.
            unsafe { enter(ctx, slot) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_sequential() {
        let items: Vec<i32> = (0..37).collect();
        let seq: Vec<i32> = items.iter().map(|&x| x - 3).collect();
        let par = parallel_map_with(items, |&x| x - 3, 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map_with(vec![1, 2, 3], |&x| x + 1, 64);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn output_independent_of_worker_count() {
        let items: Vec<u64> = (0..50).collect();
        let run = |w: usize| parallel_map_with(items.clone(), |&x| x.wrapping_mul(x) ^ 0xA5, w);
        let one = run(1);
        for w in [2, 3, 4, 8] {
            assert_eq!(one, run(w), "worker count {w} changed the output");
        }
    }

    #[test]
    fn heavy_uneven_work_still_ordered() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(items, |&x| {
            // Uneven busy work.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn pool_is_reused_across_many_sessions() {
        // Hundreds of short sessions must not spawn hundreds of threads
        // (the old fork-join did); with the persistent pool the spawn
        // count is bounded by the pool cap.
        for round in 0..200 {
            let items: Vec<u64> = (0..8).collect();
            let out = parallel_map_with(items, |&x| x + round, 4);
            assert_eq!(out[3], 3 + round);
        }
        let spawned = pool().state.lock().unwrap().spawned;
        assert!(spawned <= pool().cap, "pool grew past its cap: {spawned}");
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let outer: Vec<u64> = (0..8).collect();
        let out = parallel_map_with(
            outer,
            |&x| {
                let inner: Vec<u64> = (0..8).collect();
                parallel_map_with(inner, |&y| x * 10 + y, 4)
                    .iter()
                    .sum::<u64>()
            },
            4,
        );
        for (i, &v) in out.iter().enumerate() {
            let want: u64 = (0..8).map(|y| (i as u64) * 10 + y).sum();
            assert_eq!(v, want);
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with(
                (0..64).collect::<Vec<u64>>(),
                |&x| {
                    assert!(x != 13, "boom");
                    x
                },
                4,
            )
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn stats_account_for_every_item() {
        for workers in [1, 2, 4] {
            let items: Vec<u64> = (0..97).collect();
            let (out, stats) = parallel_map_with_stats(items, |&x| x * 2, workers);
            assert_eq!(out.len(), 97);
            assert_eq!(stats.total_items(), 97, "workers {workers}");
            assert_eq!(stats.workers.len(), workers.min(97));
            assert!(stats.elapsed_ns > 0);
            // Every item arrives via exactly one claimed chunk.
            let chunks: u64 = stats.workers.iter().map(|w| w.own_chunks + w.steals).sum();
            assert!(chunks >= 1);
        }
    }

    #[test]
    fn stats_merge_is_order_invariant() {
        let calls: Vec<PoolCallStats> = (0..6)
            .map(|k| {
                let items: Vec<u64> = (0..40 + k).collect();
                parallel_map_with_stats(items, |&x| x + k, 3).1
            })
            .collect();
        let mut forward = PoolCallStats::default();
        for c in &calls {
            forward.merge(c);
        }
        let mut backward = PoolCallStats::default();
        for c in calls.iter().rev() {
            backward.merge(c);
        }
        assert_eq!(forward, backward, "merge must be order-invariant");
        assert_eq!(
            forward.total_items(),
            calls.iter().map(|c| c.total_items()).sum::<u64>()
        );
    }

    #[test]
    fn concurrent_sessions_share_the_pool() {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    s.spawn(move || {
                        let items: Vec<u64> = (0..40).collect();
                        parallel_map_with(items, move |&x| x + k, 3)
                    })
                })
                .collect();
            for (k, h) in handles.into_iter().enumerate() {
                let out = h.join().unwrap();
                for (i, &v) in out.iter().enumerate() {
                    assert_eq!(v, i as u64 + k as u64);
                }
            }
        });
    }
}
