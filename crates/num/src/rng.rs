//! Random sampling for the simulator: Gaussian, exponential, and a few
//! discrete helpers, on top of any [`rand::Rng`].
//!
//! The approved dependency list includes `rand` but not `rand_distr`, so
//! the distributions themselves live here. Every stochastic component in
//! the workspace takes an explicit RNG so that simulations are exactly
//! reproducible from a seed.

use rand::Rng;

/// Samples a standard normal `N(0, 1)` variate via the Marsaglia polar
/// method (a rejection form of Box–Muller that avoids trig calls).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return u * factor;
        }
    }
}

/// Samples `N(mean, sd²)`.
#[inline]
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0);
    mean + sd * standard_normal(rng)
}

/// Samples an exponential variate with the given mean (inverse-CDF
/// method). The flow holding times and RCBR level-holding intervals of
/// the paper are exponential.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
    // 1 - U ∈ (0, 1]; ln of it is finite and ≤ 0.
    let u: f64 = rng.gen::<f64>();
    -mean * (1.0 - u).ln()
}

/// Samples a uniform variate on `[lo, hi)`.
#[inline]
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

/// Bernoulli trial with success probability `p`.
#[inline]
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p));
    rng.gen::<f64>() < p
}

/// Samples an index from a discrete distribution given by non-negative
/// weights (not necessarily normalized). Used for stationary-distribution
/// initialization of Markov fluid sources.
///
/// # Panics
/// Panics if all weights are zero or any weight is negative.
pub fn discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights
        .iter()
        .inspect(|&&w| assert!(w >= 0.0, "negative weight {w}"))
        .sum();
    assert!(total > 0.0, "discrete distribution needs positive total weight");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples a truncated normal on `[lo, ∞)` by rejection. The RCBR
/// sources optionally truncate rates at zero so bandwidths stay
/// physical; with σ/μ = 0.3 (the paper's setting) the acceptance rate
/// exceeds 0.999.
pub fn normal_truncated_below<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64) -> f64 {
    assert!(sd > 0.0);
    // With heavy truncation the naive rejection loop would stall; the
    // assertion documents the intended usage envelope.
    assert!(
        (lo - mean) / sd < 5.0,
        "truncation point more than 5 sd above the mean; use a dedicated tail sampler"
    );
    loop {
        let x = normal(rng, mean, sd);
        if x >= lo {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED_CAFE)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut r);
            s1 += x;
            s2 += x * x;
            s3 += x * x * x;
            s4 += x * x * x * x;
        }
        let m = s1 / n as f64;
        let v = s2 / n as f64 - m * m;
        let skew = s3 / n as f64;
        let kurt = s4 / n as f64;
        assert!(m.abs() < 0.01, "mean = {m}");
        assert!((v - 1.0).abs() < 0.02, "var = {v}");
        assert!(skew.abs() < 0.05, "skew = {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis = {kurt}");
    }

    #[test]
    fn standard_normal_tail_fraction() {
        let mut r = rng();
        let n = 400_000;
        let mut beyond = 0usize;
        for _ in 0..n {
            if standard_normal(&mut r) > 1.6448536269514722 {
                beyond += 1;
            }
        }
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.003, "P(X>1.645) = {frac}");
    }

    #[test]
    fn exponential_mean_and_memorylessness() {
        let mut r = rng();
        let n = 200_000;
        let mean = 3.5;
        let mut acc = 0.0;
        let mut over_t = 0usize;
        let mut over_2t = 0usize;
        let t = 2.0;
        for _ in 0..n {
            let x = exponential(&mut r, mean);
            assert!(x >= 0.0);
            acc += x;
            if x > t {
                over_t += 1;
            }
            if x > 2.0 * t {
                over_2t += 1;
            }
        }
        assert!((acc / n as f64 - mean).abs() < 0.05);
        // Memorylessness: P(X > 2t)/P(X > t) ≈ P(X > t).
        let ratio = over_2t as f64 / over_t as f64;
        let p_t = over_t as f64 / n as f64;
        assert!((ratio - p_t).abs() < 0.01, "ratio {ratio} vs {p_t}");
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 2.0, 3.0, 4.0];
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[discrete(&mut r, &weights)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "bin {i}: {got} vs {expect}");
        }
    }

    #[test]
    #[should_panic]
    fn discrete_rejects_all_zero() {
        discrete(&mut rng(), &[0.0, 0.0]);
    }

    #[test]
    fn truncated_normal_stays_above_floor() {
        let mut r = rng();
        for _ in 0..20_000 {
            let x = normal_truncated_below(&mut r, 1.0, 0.3, 0.0);
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let n = 100_000;
        let hits = (0..n).filter(|_| bernoulli(&mut r, 0.3)).count();
        assert!((hits as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
            assert_eq!(exponential(&mut a, 2.0), exponential(&mut b, 2.0));
        }
    }
}
