//! Random sampling for the simulator: Gaussian, exponential, and a few
//! discrete helpers, on top of any [`rand::Rng`].
//!
//! The approved dependency list includes `rand` but not `rand_distr`, so
//! the distributions themselves live here. Every stochastic component in
//! the workspace takes an explicit RNG so that simulations are exactly
//! reproducible from a seed.

use crate::KernelDispatch;
use rand::{Rng, RngCore};
use std::sync::OnceLock;

/// Number of ziggurat layers. 256 lets the layer index come from the
/// low byte of one `u64` draw while the remaining 53 high bits form the
/// uniform, so the common case costs a single RNG call.
const ZIG_LAYERS: usize = 256;

/// 2⁻⁵³, the spacing of the 53-bit uniforms carved out of a `u64`.
const U53: f64 = 1.0 / 9007199254740992.0;

/// Precomputed ziggurat table for a monotone-decreasing density on
/// `[0, ∞)`: layer edges `x[i]` (decreasing, `x[LAYERS] = 0`), the
/// unnormalized density `f[i] = pdf(x[i])`, and the tail cut `r = x[1]`.
struct ZigTable {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
    r: f64,
}

/// Builds the ziggurat for an unnormalized decreasing `pdf` with
/// `pdf(0) = 1`, its inverse `finv`, and tail mass `tail(r) = ∫_r^∞
/// pdf`. The tail cut `r` is found by bisection on the closure
/// condition (the 255th strip must land exactly on `pdf(0)`), so the
/// construction is exact to floating-point accuracy rather than relying
/// on literature constants.
fn build_zig_table(
    pdf: impl Fn(f64) -> f64,
    finv: impl Fn(f64) -> f64,
    tail: impl Fn(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
) -> ZigTable {
    // Residual of the closure condition; decreasing in r. A strip that
    // overshoots pdf(0) = 1 before the last layer means r is too small.
    let residual = |r: f64| -> f64 {
        let v = r * pdf(r) + tail(r);
        let mut x = r;
        for _ in 2..ZIG_LAYERS {
            let y = v / x + pdf(x);
            if y >= 1.0 {
                return 1.0;
            }
            x = finv(y);
        }
        v / x + pdf(x) - 1.0
    };
    assert!(
        residual(lo) > 0.0 && residual(hi) < 0.0,
        "bisection bracket must straddle the root"
    );
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if residual(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let r = 0.5 * (lo + hi);
    let v = r * pdf(r) + tail(r);
    let mut x = [0.0; ZIG_LAYERS + 1];
    let mut f = [0.0; ZIG_LAYERS + 1];
    x[0] = v / pdf(r); // base layer extends past r to cover the tail area
    x[1] = r;
    for i in 2..ZIG_LAYERS {
        x[i] = finv(v / x[i - 1] + pdf(x[i - 1]));
    }
    x[ZIG_LAYERS] = 0.0;
    for i in 0..=ZIG_LAYERS {
        f[i] = pdf(x[i]);
    }
    ZigTable { x, f, r }
}

fn normal_zig() -> &'static ZigTable {
    static TABLE: OnceLock<ZigTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        build_zig_table(
            |x| (-0.5 * x * x).exp(),
            |y| (-2.0 * y.ln()).sqrt(),
            // ∫_r^∞ e^{−x²/2} dx = √(π/2) · erfc(r/√2)
            |r| (std::f64::consts::PI / 2.0).sqrt() * crate::erfc(r / std::f64::consts::SQRT_2),
            3.0,
            4.5,
        )
    })
}

fn exp_zig() -> &'static ZigTable {
    static TABLE: OnceLock<ZigTable> = OnceLock::new();
    TABLE.get_or_init(|| build_zig_table(|x| (-x).exp(), |y| -y.ln(), |r| (-r).exp(), 6.0, 9.0))
}

/// A hoisted handle to the standard-normal ziggurat.
///
/// [`standard_normal`] resolves its `OnceLock` table on every call; that
/// atomic load is invisible in scalar code but measurable inside the
/// batched tick kernels, which draw one Gaussian per flow per step.
/// Kernels grab the handle once outside the loop and call
/// [`NormalSampler::sample`], which performs **exactly** the same
/// arithmetic and consumes the RNG identically, so trajectories are
/// bit-identical either way.
#[derive(Clone, Copy)]
pub struct NormalSampler {
    t: &'static ZigTable,
}

impl NormalSampler {
    /// Resolves the shared ziggurat table (built on first use).
    pub fn get() -> Self {
        NormalSampler { t: normal_zig() }
    }

    /// Samples `N(0, 1)`; same draw sequence as [`standard_normal`].
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let t = self.t;
        loop {
            let bits = rng.next_u64();
            let i = (bits & 0xFF) as usize;
            let u = 2.0 * ((bits >> 11) as f64 * U53) - 1.0; // [-1, 1)
            let x = u * t.x[i];
            if x.abs() < t.x[i + 1] {
                return x; // strictly inside the layer: accept (common case)
            }
            if i == 0 {
                return normal_tail(rng, t.r, u < 0.0);
            }
            // Wedge: accept with probability proportional to the density
            // overhang between the layer edges.
            let h = t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.gen::<f64>();
            if h < (-0.5 * x * x).exp() {
                return x;
            }
        }
    }

    /// Speculatively samples up to `LANES` consecutive standard normals
    /// in one batch, committing the accepted prefix.
    ///
    /// Each ziggurat draw lands strictly inside its layer ~99% of the
    /// time, in which case it consumes exactly one `u64` and accepts
    /// unconditionally — so a run of `LANES` draws usually consumes
    /// exactly `LANES` words with no data-dependent control flow. This
    /// method snapshots the generator, performs the run branchlessly,
    /// and returns how many leading draws accepted (usually `LANES`).
    /// When a draw needs the wedge or tail path, the generator is
    /// repositioned to just after the accepted prefix and the caller
    /// continues with [`NormalSampler::sample`] — so the RNG stream and
    /// the values produced are bit-identical to `LANES` sequential
    /// `sample` calls no matter where the batch stops.
    #[inline]
    pub fn sample_batch<const LANES: usize, R: Rng + Clone>(
        &self,
        rng: &mut R,
        out: &mut [f64; LANES],
    ) -> usize {
        let t = self.t;
        let snapshot = rng.clone();
        // Drain the serial generator chain first so the conversion work
        // below runs as LANES independent dependency chains.
        let mut words = [0u64; LANES];
        for w in &mut words {
            *w = rng.next_u64();
        }
        let mut rejected = 0u64;
        for (idx, slot) in out.iter_mut().enumerate() {
            let bits = words[idx];
            let i = (bits & 0xFF) as usize;
            // One-multiply form of `2 * ((bits >> 11) * 2⁻⁵³) - 1`; both
            // products are exact (53-bit mantissa, power-of-two scale),
            // so the value — and the accept decision — is bit-identical
            // to the scalar path.
            let u = (bits >> 11) as f64 * (2.0 * U53) - 1.0;
            let x = u * t.x[i];
            rejected |= ((x.abs() >= t.x[i + 1]) as u64) << idx;
            *slot = x;
        }
        let p = (rejected.trailing_zeros() as usize).min(LANES);
        if p < LANES {
            // Rewind, then burn the prefix's words so the stream sits
            // exactly where sequential sampling would after `p` draws.
            *rng = snapshot;
            for _ in 0..p {
                rng.next_u64();
            }
        }
        p
    }

    /// Fills `out` with consecutive standard normals, bit-identical to
    /// `out.len()` sequential [`NormalSampler::sample`] calls, via the
    /// kernel selected by the global [`KernelDispatch`].
    pub fn fill<R: Rng + Clone>(&self, rng: &mut R, out: &mut [f64]) {
        self.fill_with(KernelDispatch::current(), rng, out)
    }

    /// As [`NormalSampler::fill`] with an explicit dispatch mode. The
    /// two kernels are bit-exact twins: same values, same RNG-word
    /// consumption (the twin tests below assert both).
    pub fn fill_with<R: Rng + Clone>(
        &self,
        dispatch: KernelDispatch,
        rng: &mut R,
        out: &mut [f64],
    ) {
        match dispatch {
            KernelDispatch::Scalar => self.fill_scalar(rng, out),
            KernelDispatch::Wide => self.fill_wide(rng, out),
        }
    }

    /// The scalar reference fill: [`NormalSampler::sample_batch`] in
    /// 8-wide windows written in place (a speculative window that stops
    /// early is simply overwritten by the resumed stream), with a scalar
    /// tail — so a bulk fill pays the snapshot/commit overhead once per
    /// window instead of once per draw.
    fn fill_scalar<R: Rng + Clone>(&self, rng: &mut R, out: &mut [f64]) {
        let n = out.len();
        let mut drawn = 0usize;
        while drawn + 8 <= n {
            let w: &mut [f64; 8] = (&mut out[drawn..drawn + 8]).try_into().unwrap();
            let p = self.sample_batch::<8, _>(rng, w);
            drawn += p;
            if p < 8 {
                // The draw that stopped the window needs the wedge or
                // tail path; take it scalar and resume batching after it.
                out[drawn] = self.sample(rng);
                drawn += 1;
            }
        }
        while drawn < n {
            out[drawn] = self.sample(rng);
            drawn += 1;
        }
    }

    /// The wide-lane fill: drains RNG words a [`FILL_BLOCK`]-sized block
    /// at a time, then converts the whole block — layer index, the
    /// one-multiply uniform conversion, the layer-edge multiply, and the
    /// accept test — in straight-line tile loops the autovectorizer
    /// lifts to packed SIMD. The ~1% of draws that fail the interior
    /// accept run the exact scalar wedge/tail sampler fed from the
    /// *already-drained* words (see [`BufferedWords`]), so no snapshot,
    /// rewind, or re-draw ever happens: every drained word is consumed
    /// exactly once, in stream order, and both the values and the final
    /// RNG state are bit-identical to sequential sampling.
    fn fill_wide<R: Rng>(&self, rng: &mut R, out: &mut [f64]) {
        let t = self.t;
        let n = out.len();
        let mut drawn = 0usize;
        let mut words = [0u64; FILL_BLOCK];
        let mut vals = [0.0f64; FILL_BLOCK];
        let mut rej = [0u8; FILL_BLOCK];
        while drawn < n {
            // Each value consumes at least one word, so draining exactly
            // `m` words can only run short (wedge/tail draws pull more
            // via `BufferedWords`), never long — no rewind is needed.
            let m = (n - drawn).min(FILL_BLOCK);
            for w in words[..m].iter_mut() {
                *w = rng.next_u64();
            }
            // Speculative conversion of the whole block. Bit-identical
            // per word to the scalar path: same one-multiply uniform,
            // same layer-edge product, same accept compare.
            for idx in 0..m {
                let bits = words[idx];
                let i = (bits & 0xFF) as usize;
                let u = (bits >> 11) as f64 * (2.0 * U53) - 1.0;
                let x = u * t.x[i];
                vals[idx] = x;
                rej[idx] = (x.abs() >= t.x[i + 1]) as u8;
            }
            // Commit pass: copy accepted runs; route each rejected word
            // through the exact scalar sampler over the drained words.
            // Invariant: values produced ≤ words consumed, so the block
            // always consumes all `m` drained words by the time it ends.
            let mut wpos = 0usize; // next unconsumed drained word
            let mut produced = 0usize;
            while produced < m {
                if wpos < m {
                    let run_end = rej[wpos..m]
                        .iter()
                        .position(|&r| r != 0)
                        .map_or(m, |p| wpos + p);
                    let take = run_end - wpos;
                    out[drawn + produced..drawn + produced + take]
                        .copy_from_slice(&vals[wpos..run_end]);
                    produced += take;
                    wpos = run_end;
                    if produced == m {
                        break;
                    }
                    // words[wpos] needs the wedge or tail path; resume
                    // the scalar sampler on the drained stream.
                    let mut src = BufferedWords {
                        words: &words[..m],
                        pos: wpos,
                        rng,
                    };
                    out[drawn + produced] = self.sample(&mut src);
                    wpos = src.pos;
                    produced += 1;
                } else {
                    // Rejections consumed the block's remaining words;
                    // the generator is already positioned sequentially.
                    out[drawn + produced] = self.sample(rng);
                    produced += 1;
                }
            }
            drawn += m;
        }
    }
}

/// Block width of the wide fill: conversion tiles and the reject scan
/// work in units of 64 draws (a cache-resident strip of words/values).
const FILL_BLOCK: usize = 64;

/// Serves pre-drained RNG words in stream order, falling through to the
/// live generator when the buffer is exhausted. Because the drained
/// words *are* the generator's own output in order, sampling through
/// this adapter consumes the logical stream identically to sampling from
/// the generator directly — it merely decouples when the words are
/// produced from when they are interpreted.
struct BufferedWords<'a, R: RngCore> {
    words: &'a [u64],
    pos: usize,
    rng: &'a mut R,
}

impl<R: RngCore> RngCore for BufferedWords<'_, R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos < self.words.len() {
            let w = self.words[self.pos];
            self.pos += 1;
            w
        } else {
            self.rng.next_u64()
        }
    }
}

/// A hoisted handle to the exponential ziggurat; see [`NormalSampler`].
#[derive(Clone, Copy)]
pub struct ExpSampler {
    t: &'static ZigTable,
}

impl ExpSampler {
    /// Resolves the shared ziggurat table (built on first use).
    pub fn get() -> Self {
        ExpSampler { t: exp_zig() }
    }

    /// Samples a unit-mean exponential; same draw sequence as
    /// [`standard_exponential`].
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let t = self.t;
        loop {
            let bits = rng.next_u64();
            let i = (bits & 0xFF) as usize;
            let u = (bits >> 11) as f64 * U53; // [0, 1)
            let x = u * t.x[i];
            if x < t.x[i + 1] {
                return x;
            }
            if i == 0 {
                // Memorylessness: the tail beyond r is r plus a fresh
                // exponential, sampled by inverse CDF.
                return t.r - (1.0 - rng.gen::<f64>()).ln();
            }
            let h = t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.gen::<f64>();
            if h < (-x).exp() {
                return x;
            }
        }
    }
}

/// Samples a standard normal `N(0, 1)` variate via the ziggurat method
/// (Marsaglia & Tsang 2000, 256 layers).
///
/// This sits on the simulator's hottest path — every AR(1) tick and
/// every RCBR renegotiation draws a Gaussian — and the ziggurat's
/// common case is one `u64` draw, one table compare, and one multiply
/// (no transcendentals), several times faster than polar Box–Muller.
/// It is an exact-distribution rejection method, not an approximation.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    NormalSampler::get().sample(rng)
}

/// Marsaglia's exact tail sampler for `|X| > r`.
#[cold]
fn normal_tail<R: Rng + ?Sized>(rng: &mut R, r: f64, negative: bool) -> f64 {
    loop {
        // 1 − U ∈ (0, 1], so the logs stay finite.
        let x = -(1.0 - rng.gen::<f64>()).ln() / r;
        let y = -(1.0 - rng.gen::<f64>()).ln();
        if 2.0 * y >= x * x {
            let v = r + x;
            return if negative { -v } else { v };
        }
    }
}

/// Samples `N(mean, sd²)`.
#[inline]
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0);
    mean + sd * standard_normal(rng)
}

/// Samples a unit-mean exponential variate via the ziggurat method
/// (same construction as [`standard_normal`], one-sided).
#[inline]
pub fn standard_exponential<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    ExpSampler::get().sample(rng)
}

/// Samples an exponential variate with the given mean. The flow holding
/// times and RCBR level-holding intervals of the paper are exponential.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
    mean * standard_exponential(rng)
}

/// Samples a uniform variate on `[lo, hi)`.
#[inline]
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

/// Bernoulli trial with success probability `p`.
#[inline]
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p));
    rng.gen::<f64>() < p
}

/// Samples an index from a discrete distribution given by non-negative
/// weights (not necessarily normalized). Used for stationary-distribution
/// initialization of Markov fluid sources.
///
/// # Panics
/// Panics if all weights are zero or any weight is negative.
pub fn discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights
        .iter()
        .inspect(|&&w| assert!(w >= 0.0, "negative weight {w}"))
        .sum();
    assert!(
        total > 0.0,
        "discrete distribution needs positive total weight"
    );
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples a truncated normal on `[lo, ∞)` by rejection. The RCBR
/// sources optionally truncate rates at zero so bandwidths stay
/// physical; with σ/μ = 0.3 (the paper's setting) the acceptance rate
/// exceeds 0.999.
pub fn normal_truncated_below<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64) -> f64 {
    assert!(sd > 0.0);
    // With heavy truncation the naive rejection loop would stall; the
    // assertion documents the intended usage envelope.
    assert!(
        (lo - mean) / sd < 5.0,
        "truncation point more than 5 sd above the mean; use a dedicated tail sampler"
    );
    loop {
        let x = normal(rng, mean, sd);
        if x >= lo {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED_CAFE)
    }

    #[test]
    fn ziggurat_tail_cuts_match_literature() {
        // Marsaglia & Tsang's published 256-layer constants; the
        // bisected construction must land on them.
        assert!((normal_zig().r - 3.654152885361009).abs() < 1e-12);
        assert!((exp_zig().r - 7.697_117_470_131_05).abs() < 1e-12);
    }

    #[test]
    fn standard_normal_quantiles() {
        // Finer-grained distribution check than the moment tests: the
        // empirical CDF at several quantiles of N(0,1), including the
        // ziggurat wedge and tail regions.
        let mut r = rng();
        let n = 400_000;
        let probes = [
            (-2.0, 0.02275),
            (-1.0, 0.15866),
            (0.0, 0.5),
            (1.0, 0.84134),
            (2.5, 0.99379),
        ];
        let mut below = [0usize; 5];
        for _ in 0..n {
            let x = standard_normal(&mut r);
            for (j, &(q, _)) in probes.iter().enumerate() {
                if x < q {
                    below[j] += 1;
                }
            }
        }
        for (j, &(q, want)) in probes.iter().enumerate() {
            let got = below[j] as f64 / n as f64;
            assert!(
                (got - want).abs() < 0.003,
                "P(X < {q}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut r);
            s1 += x;
            s2 += x * x;
            s3 += x * x * x;
            s4 += x * x * x * x;
        }
        let m = s1 / n as f64;
        let v = s2 / n as f64 - m * m;
        let skew = s3 / n as f64;
        let kurt = s4 / n as f64;
        assert!(m.abs() < 0.01, "mean = {m}");
        assert!((v - 1.0).abs() < 0.02, "var = {v}");
        assert!(skew.abs() < 0.05, "skew = {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis = {kurt}");
    }

    #[test]
    fn standard_normal_tail_fraction() {
        let mut r = rng();
        let n = 400_000;
        let mut beyond = 0usize;
        for _ in 0..n {
            if standard_normal(&mut r) > 1.6448536269514722 {
                beyond += 1;
            }
        }
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.003, "P(X>1.645) = {frac}");
    }

    #[test]
    fn exponential_mean_and_memorylessness() {
        let mut r = rng();
        let n = 200_000;
        let mean = 3.5;
        let mut acc = 0.0;
        let mut over_t = 0usize;
        let mut over_2t = 0usize;
        let t = 2.0;
        for _ in 0..n {
            let x = exponential(&mut r, mean);
            assert!(x >= 0.0);
            acc += x;
            if x > t {
                over_t += 1;
            }
            if x > 2.0 * t {
                over_2t += 1;
            }
        }
        assert!((acc / n as f64 - mean).abs() < 0.05);
        // Memorylessness: P(X > 2t)/P(X > t) ≈ P(X > t).
        let ratio = over_2t as f64 / over_t as f64;
        let p_t = over_t as f64 / n as f64;
        assert!((ratio - p_t).abs() < 0.01, "ratio {ratio} vs {p_t}");
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 2.0, 3.0, 4.0];
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[discrete(&mut r, &weights)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "bin {i}: {got} vs {expect}");
        }
    }

    #[test]
    #[should_panic]
    fn discrete_rejects_all_zero() {
        discrete(&mut rng(), &[0.0, 0.0]);
    }

    #[test]
    fn truncated_normal_stays_above_floor() {
        let mut r = rng();
        for _ in 0..20_000 {
            let x = normal_truncated_below(&mut r, 1.0, 0.3, 0.0);
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let n = 100_000;
        let hits = (0..n).filter(|_| bernoulli(&mut r, 0.3)).count();
        assert!((hits as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
            assert_eq!(exponential(&mut a, 2.0), exponential(&mut b, 2.0));
        }
    }

    #[test]
    fn batch_sampler_matches_sequential_stream() {
        // Interleaving batch draws (whether they commit or restore and
        // fall back) with scalar draws must reproduce the scalar stream
        // bit for bit — values and RNG state both.
        let sampler = NormalSampler::get();
        let mut batched = StdRng::seed_from_u64(9);
        let mut scalar = StdRng::seed_from_u64(9);
        let mut fallbacks = 0usize;
        for round in 0..20_000 {
            let mut got = [0.0f64; 8];
            let p = sampler.sample_batch(&mut batched, &mut got);
            if p < 8 {
                fallbacks += 1;
                for slot in got.iter_mut().skip(p) {
                    *slot = sampler.sample(&mut batched);
                }
            }
            let want: [f64; 8] = std::array::from_fn(|_| sampler.sample(&mut scalar));
            assert_eq!(got, want, "stream diverged in round {round}");
            assert_eq!(batched, scalar, "RNG state diverged in round {round}");
        }
        // The wedge/tail path is rare but must have been exercised.
        assert!(fallbacks > 0, "no batch ever fell back");
    }

    #[test]
    fn fill_matches_sequential_stream() {
        // Bulk fills of every window-boundary length must reproduce the
        // scalar stream bit for bit — values and RNG state both.
        let sampler = NormalSampler::get();
        let mut bulk = StdRng::seed_from_u64(11);
        let mut scalar = StdRng::seed_from_u64(11);
        for &len in &[0usize, 1, 7, 8, 9, 15, 16, 17, 24, 40, 333, 2000] {
            // Several rounds per length so rare wedge/tail draws land in
            // both the 16-wide and 8-wide windows eventually.
            for round in 0..200 {
                let mut got = vec![0.0f64; len];
                sampler.fill(&mut bulk, &mut got);
                let want: Vec<f64> = (0..len).map(|_| sampler.sample(&mut scalar)).collect();
                assert_eq!(got, want, "fill({len}) diverged in round {round}");
                assert_eq!(bulk, scalar, "RNG state diverged for len {len}");
            }
        }
    }

    #[test]
    fn fill_dispatch_twins_are_bit_exact() {
        // The scalar and wide fill kernels must be indistinguishable:
        // same values (bitwise) and same RNG end state for every length,
        // including lengths straddling the FILL_BLOCK boundary and
        // lengths that force scalar tails.
        let sampler = NormalSampler::get();
        for &len in &[
            0usize, 1, 2, 7, 8, 9, 31, 32, 63, 64, 65, 127, 128, 129, 400, 2000,
        ] {
            let mut wide_rng = StdRng::seed_from_u64(0xD15 ^ len as u64);
            let mut scalar_rng = wide_rng.clone();
            for round in 0..120 {
                let mut wide = vec![0.0f64; len];
                let mut scalar = vec![0.0f64; len];
                sampler.fill_with(KernelDispatch::Wide, &mut wide_rng, &mut wide);
                sampler.fill_with(KernelDispatch::Scalar, &mut scalar_rng, &mut scalar);
                let wide_bits: Vec<u64> = wide.iter().map(|v| v.to_bits()).collect();
                let scalar_bits: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    wide_bits, scalar_bits,
                    "twin values diverged: len {len} round {round}"
                );
                assert_eq!(
                    wide_rng, scalar_rng,
                    "twin RNG state diverged: len {len} round {round}"
                );
            }
        }
    }
}
