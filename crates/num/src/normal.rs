//! Standard normal distribution: density `φ`, CDF `Φ`, tail `Q`, the
//! inverse tail `Q⁻¹`, and the Mills ratio.
//!
//! The paper (Grossglauser & Tse) uses `Q(x)` as *the* quality-of-service
//! functional: the target overflow probability is `p_q = Q(α_q)`, so every
//! admission criterion needs `Q` and every calibration needs `Q⁻¹`. The
//! adjusted certainty-equivalent targets of Fig. 6 fall below `1e-10`, so
//! both directions must keep relative accuracy deep in the tail. `Q` is
//! built on [`crate::erf::erfc`]; `Q⁻¹` uses a safeguarded Newton iteration
//! on `ln Q`, which is numerically benign for arbitrarily small
//! probabilities.

use crate::erf::{erfc, erfcx, ln_erfc};

/// `1/sqrt(2π)`.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
/// `sqrt(2)`.
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Standard normal probability density `φ(x) = e^{-x²/2}/√(2π)`
/// (eqn (1) of the paper).
#[inline]
pub fn phi(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal CDF `Φ(x) = Pr{N(0,1) ≤ x}`.
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Gaussian tail function `Q(x) = Pr{N(0,1) > x} = 1 - Φ(x)`
/// (eqn (2) of the paper). Retains relative accuracy for large `x`.
///
/// ```
/// // Q(0) = 1/2 exactly; Q(1.2815515655446004) ≈ 0.1.
/// assert!((mbac_num::q(0.0) - 0.5).abs() < 1e-15);
/// assert!((mbac_num::q(1.2815515655446004) - 0.1).abs() < 1e-12);
/// ```
#[inline]
pub fn q(x: f64) -> f64 {
    0.5 * erfc(x / SQRT_2)
}

/// Natural log of the Gaussian tail, `ln Q(x)`, valid for `x` so large
/// that `Q(x)` itself underflows (`x ≳ 37.5`). Defined for `x ≥ 0`.
pub fn ln_q(x: f64) -> f64 {
    assert!(x >= 0.0, "ln_q requires non-negative x, got {x}");
    std::f64::consts::LN_2.mul_add(-1.0, ln_erfc(x / SQRT_2))
}

/// Mills ratio `Q(x)/φ(x)`, computed without underflow for `x ≥ 0`.
///
/// For large `x` the Mills ratio tends to `1/x`; the paper's repeated
/// approximation `Q(x) ≈ φ(x)/x` is exactly "Mills ratio ≈ 1/x".
pub fn mills_ratio(x: f64) -> f64 {
    assert!(x >= 0.0, "mills_ratio requires non-negative x, got {x}");
    // Q(x)/φ(x) = (1/2)erfc(x/√2) · √(2π) e^{x²/2} = √(π/2) · erfcx(x/√2).
    (std::f64::consts::PI / 2.0).sqrt() * erfcx(x / SQRT_2)
}

/// Inverse Gaussian tail `Q⁻¹(p)`: the `x` with `Q(x) = p`, for
/// `p ∈ (0, 1)`.
///
/// This is `α_q = Q⁻¹(p_q)` in the paper — the "number of standard
/// deviations of safety margin" corresponding to a QoS target. Works for
/// arbitrarily small `p` (down to ~1e-300) with ~1e-13 relative accuracy
/// in `x`.
///
/// # Panics
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// let alpha = mbac_num::inv_q(1e-5);
/// assert!((mbac_num::q(alpha) / 1e-5 - 1.0).abs() < 1e-10);
/// ```
pub fn inv_q(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inv_q requires p in (0,1), got {p}");
    if p == 0.5 {
        return 0.0;
    }
    if p > 0.5 {
        // Q(x) = p > 1/2  =>  x < 0; use symmetry Q(-x) = 1 - Q(x).
        return -inv_q(1.0 - p);
    }
    // Now p < 1/2, root is positive. Solve g(x) = ln Q(x) - ln p = 0 by
    // Newton, g'(x) = -φ(x)/Q(x) = -1/mills_ratio(x).
    let ln_p = p.ln();
    // Initial guess from the tail asymptotic Q(x) ≈ φ(x)/x:
    //   ln p ≈ -x²/2 - ln x - ln √(2π)  =>  x ≈ sqrt(2(-ln p - ln √(2π)))
    // refined once for the ln x term.
    let mut x = (2.0 * (-ln_p - (2.0 * std::f64::consts::PI).sqrt().ln()))
        .max(1e-4)
        .sqrt();
    if x > 1.0 {
        let inner = -2.0 * (ln_p + x.ln() + (2.0 * std::f64::consts::PI).sqrt().ln());
        if inner > 0.0 {
            x = inner.sqrt();
        }
    }
    // Safeguarded Newton on ln Q.
    let (mut lo, mut hi) = (0.0f64, x.max(2.0) * 4.0 + 10.0);
    for _ in 0..100 {
        let g = ln_q(x) - ln_p;
        if g > 0.0 {
            // Q(x) too big -> x too small.
            lo = lo.max(x);
        } else {
            hi = hi.min(x);
        }
        let step = g * mills_ratio(x); // g / (1/mills) with sign: x_{n+1} = x + g·mills
        let mut next = x + step;
        if !(next > lo && next < hi) {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() <= 1e-15 * x.abs() + 1e-300 {
            x = next;
            break;
        }
        x = next;
    }
    x
}

/// Inverse standard normal CDF `Φ⁻¹(p)`.
#[inline]
pub fn inv_norm_cdf(p: f64) -> f64 {
    -inv_q(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference Q(x) values (mpmath, 50 digits).
    const Q_TABLE: &[(f64, f64)] = &[
        (0.0, 0.5),
        (0.5, 0.3085375387259869),
        (1.0, 0.15865525393145707),
        (1.2815515655446004, 0.1),
        (1.6448536269514722, 0.05),
        (2.326347874040841, 0.01),
        (3.090232306167813, 0.001),
        (3.719016485455709, 1e-4),
        (4.264890793922602, 1e-5),
        (4.753424308822899, 1e-6),
        (5.199337582187471, 1e-7),
        (6.361340902404056, 1e-10),
        (7.941345326170997, 1e-15),
    ];

    #[test]
    fn q_matches_reference() {
        for &(x, want) in Q_TABLE {
            let got = q(x);
            // Tolerance 1e-9: the tabulated abscissae themselves carry
            // ~1e-15 absolute error, which Q's steepness amplifies.
            assert!(
                (got / want - 1.0).abs() < 1e-9,
                "Q({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn inv_q_matches_reference() {
        for &(x, p) in Q_TABLE {
            if p >= 0.5 {
                continue;
            }
            let got = inv_q(p);
            assert!(
                (got - x).abs() < 1e-9 * (1.0 + x.abs()),
                "inv_q({p}) = {got}, want {x}"
            );
        }
    }

    #[test]
    fn inv_q_roundtrip_property() {
        for k in 1..60 {
            let p = 10f64.powf(-(k as f64) / 4.0);
            if p >= 1.0 {
                continue;
            }
            let x = inv_q(p);
            let back = if x < 37.0 { q(x) } else { ln_q(x).exp() };
            assert!(
                (back / p - 1.0).abs() < 1e-9,
                "roundtrip failed at p={p}: x={x}, back={back}"
            );
        }
    }

    #[test]
    fn inv_q_upper_half() {
        // Q(x) = 0.8 -> x = -Q⁻¹(0.2).
        let x = inv_q(0.8);
        assert!((q(x) - 0.8).abs() < 1e-12);
        assert!(x < 0.0);
        assert_eq!(inv_q(0.5), 0.0);
    }

    #[test]
    fn cdf_and_tail_sum_to_one() {
        for &x in &[-3.0, -1.0, 0.0, 0.7, 2.5, 5.0] {
            assert!((norm_cdf(x) + q(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn phi_is_symmetric_and_normalized_at_zero() {
        assert!((phi(0.0) - INV_SQRT_2PI).abs() < 1e-16);
        for &x in &[0.5, 1.0, 2.0] {
            assert!((phi(x) - phi(-x)).abs() < 1e-16);
        }
    }

    #[test]
    fn mills_ratio_tends_to_inverse_x() {
        for &x in &[10.0, 30.0, 100.0] {
            let m = mills_ratio(x);
            // m = 1/x · (1 - 1/x² + O(1/x⁴))
            assert!((m * x - 1.0).abs() < 2.0 / (x * x), "mills({x}) = {m}");
        }
        // And at 0: Q(0)/φ(0) = 0.5/(1/√(2π)) = √(π/2).
        assert!((mills_ratio(0.0) - (std::f64::consts::PI / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ln_q_consistent_with_q() {
        for &x in &[0.5, 2.0, 5.0, 10.0, 20.0] {
            assert!((ln_q(x) - q(x).ln()).abs() < 1e-9, "x={x}");
        }
        // Deep tail where q underflows:
        let x = 45.0;
        assert_eq!(q(x), 0.0);
        let lq = ln_q(x);
        // ln Q(x) ≈ -x²/2 - ln(x √(2π))
        let approx = -0.5 * x * x - (x * (2.0 * std::f64::consts::PI).sqrt()).ln();
        assert!((lq - approx).abs() < 1e-3 * lq.abs());
    }

    #[test]
    fn paper_sqrt2_example() {
        // §3.1: "if p_q = 1.0e-5, then p_f ≈ Q(α_q/√2) ≈ 1.3e-3".
        let alpha_q = inv_q(1e-5);
        let pf = q(alpha_q / SQRT_2);
        assert!(
            (1.0e-3..2.0e-3).contains(&pf),
            "paper example: pf = {pf}, expected ≈ 1.3e-3"
        );
    }

    #[test]
    fn inv_q_extreme_small_p() {
        let p = 1e-250;
        let x = inv_q(p);
        let back = ln_q(x);
        assert!(
            (back - p.ln()).abs() < 1e-8 * p.ln().abs(),
            "x={x} back(ln)={back} want {}",
            p.ln()
        );
    }

    #[test]
    #[should_panic]
    fn inv_q_rejects_zero() {
        inv_q(0.0);
    }

    #[test]
    #[should_panic]
    fn inv_q_rejects_one() {
        inv_q(1.0);
    }
}
