//! Ordinary least squares on (x, y) pairs.
//!
//! Used by the traffic validators: Hurst-parameter estimation fits a line
//! to log–log variance-time and rescaled-range plots.

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

/// Fits `y = slope·x + intercept` by least squares.
///
/// # Panics
/// Panics if fewer than 2 points are supplied, the slices differ in
/// length, or all `x` values coincide.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x and y must have the same length");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "all x values coincide; slope undefined");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
        n: xs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 7.0).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_approximately_recovered() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        // Deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 0.5 * x + 2.0 + 0.01 * ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!((fit.intercept - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn horizontal_data_gives_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let fit = linear_fit(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic]
    fn vertical_data_panics() {
        linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn single_point_panics() {
        linear_fit(&[1.0], &[1.0]);
    }
}
