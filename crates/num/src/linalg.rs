//! Small dense linear algebra: Gaussian elimination with partial
//! pivoting.
//!
//! Used by the Markov-fluid traffic sources to solve for stationary
//! distributions (`πQ = 0`, `Σπ = 1`) — systems of a handful of states,
//! where a simple, well-tested direct solver is the right tool.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or either dimension is 0.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_rows(rows, cols, vec![0.0; rows * cols])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * x[c]).sum())
            .collect()
    }
}

/// Errors from the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically so).
    Singular,
    /// Dimension mismatch between matrix and right-hand side.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves the square system `A·x = b` by Gaussian elimination with
/// partial pivoting.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m.get(r, col).abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .unwrap();
        if pivot_val < 1e-13 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        for r in col + 1..n {
            let factor = m.get(r, col) / m.get(col, col);
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        for (c, &xc) in x.iter().enumerate().skip(r + 1) {
            acc -= m.get(r, c) * xc;
        }
        x[r] = acc / m.get(r, r);
    }
    Ok(x)
}

/// Stationary distribution of a continuous-time Markov chain with
/// generator `q` (rows sum to zero, off-diagonals non-negative): solves
/// `πQ = 0`, `Σπ = 1`.
///
/// The singular system is regularized by replacing one balance equation
/// with the normalization constraint.
pub fn ctmc_stationary(q: &Matrix) -> Result<Vec<f64>, LinalgError> {
    let n = q.rows();
    if q.cols() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    // Build Aᵀ with last equation replaced by Σπ = 1: solve A x = b
    // where row i (< n-1) is (Qᵀ)_i and row n-1 is all ones.
    let mut a = Matrix::zeros(n, n);
    for r in 0..n - 1 {
        for c in 0..n {
            a.set(r, c, q.get(c, r)); // transpose: balance equations
        }
    }
    for c in 0..n {
        a.set(n - 1, c, 1.0);
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let pi = solve(&a, &b)?;
    // Clamp tiny negatives from roundoff.
    Ok(pi.into_iter().map(|p| p.max(0.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, -1.0]);
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_system() {
        let n = 8;
        let mut s = 7u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let data: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let a = Matrix::from_rows(n, n, data);
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b).unwrap();
        let ax = a.mul_vec(&x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-9, "residual at {i}");
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(&a, &[1.0, 2.0]).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::from_rows(2, 3, vec![0.0; 6]);
        assert_eq!(
            solve(&a, &[1.0, 2.0]).unwrap_err(),
            LinalgError::DimensionMismatch
        );
    }

    #[test]
    fn two_state_ctmc_stationary() {
        // On-off chain: off->on rate λ = 2, on->off rate μ = 3.
        // π_on = λ/(λ+μ) = 0.4.
        let q = Matrix::from_rows(2, 2, vec![-2.0, 2.0, 3.0, -3.0]);
        let pi = ctmc_stationary(&q).unwrap();
        assert!((pi[0] - 0.6).abs() < 1e-12);
        assert!((pi[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn three_state_birth_death_stationary() {
        // Birth rate 1 (0->1->2), death rate 2 (2->1->0):
        // detailed balance: π1 = π0/2, π2 = π1/2 -> π ∝ (4, 2, 1)/7.
        let q = Matrix::from_rows(3, 3, vec![-1.0, 1.0, 0.0, 2.0, -3.0, 1.0, 0.0, 2.0, -2.0]);
        let pi = ctmc_stationary(&q).unwrap();
        assert!((pi[0] - 4.0 / 7.0).abs() < 1e-12);
        assert!((pi[1] - 2.0 / 7.0).abs() < 1e-12);
        assert!((pi[2] - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_sums_to_one() {
        let q = Matrix::from_rows(3, 3, vec![-5.0, 3.0, 2.0, 1.0, -1.5, 0.5, 4.0, 1.0, -5.0]);
        let pi = ctmc_stationary(&q).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }
}
