//! In-place radix-2 Cooley–Tukey FFT.
//!
//! Needed by the Davies–Harte (circulant embedding) fractional-Gaussian-
//! noise generator in `mbac-traffic`, which synthesizes the long-range-
//! dependent traffic for the Starwars-trace experiments (Figs. 11–12).
//! Power-of-two lengths only — the generator controls its own sizes, so
//! the restriction costs nothing and keeps the implementation simple and
//! auditable (smoltcp-style: robustness over cleverness).

use crate::complex::Complex64;

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftDirection {
    /// `X_k = Σ_n x_n e^{-2πi kn/N}`.
    Forward,
    /// `x_n = Σ_k X_k e^{+2πi kn/N}` (unscaled; see [`ifft`] for the
    /// `1/N`-normalized inverse).
    Inverse,
}

/// In-place FFT of `data`, whose length must be a power of two.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (length 0 is rejected,
/// length 1 is a no-op).
pub fn fft_in_place(data: &mut [Complex64], dir: FftDirection) {
    let n = data.len();
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT length must be a power of two, got {n}"
    );
    if n == 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = match dir {
        FftDirection::Forward => -1.0,
        FftDirection::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for j in 0..half {
                let u = data[i + j];
                let v = data[i + j + half] * w;
                data[i + j] = u + v;
                data[i + j + half] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT returning a new vector.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, FftDirection::Forward);
    out
}

/// Normalized inverse FFT (`1/N` scaling) returning a new vector, so that
/// `ifft(fft(x)) == x`.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, FftDirection::Inverse);
    let scale = 1.0 / out.len() as f64;
    for z in &mut out {
        *z = z.scale(scale);
    }
    out
}

/// FFT of a real signal, returned as the full complex spectrum.
pub fn rfft(input: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = input.iter().map(|&x| Complex64::from_real(x)).collect();
    fft(&buf)
}

fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Naive O(N²) DFT — reference implementation for testing only.
#[doc(hidden)]
pub fn dft_reference(input: &[Complex64], dir: FftDirection) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        FftDirection::Forward => -1.0,
        FftDirection::Inverse => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex64::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_reference_dft() {
        let mut x = Vec::new();
        // Deterministic pseudo-data.
        let mut s = 1u64;
        for _ in 0..64 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            x.push(Complex64::new(re, im));
        }
        let fast = fft(&x);
        let slow = dft_reference(&x, FftDirection::Forward);
        assert!(max_err(&fast, &slow) < 1e-10);
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let back = ifft(&fft(&x));
        assert!(max_err(&x, &back) < 1e-12);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        let spectrum = fft(&x);
        for z in &spectrum {
            assert!((z.re - 1.0).abs() < 1e-14 && z.im.abs() < 1e-14);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let x = vec![Complex64::ONE; 32];
        let spectrum = fft(&x);
        assert!((spectrum[0].re - 32.0).abs() < 1e-12);
        for z in &spectrum[1..] {
            assert!(z.abs() < 1e-11);
        }
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        let spectrum = fft(&x);
        for (k, z) in spectrum.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-10);
            } else {
                assert!(z.abs() < 1e-9, "bin {k} = {:?}", z);
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex64> = (0..256)
            .map(|i| Complex64::new((i as f64).sqrt().sin(), 0.0))
            .collect();
        let spectrum = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spectrum.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn rfft_of_real_signal_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.3).cos() + 0.1 * i as f64)
            .collect();
        let s = rfft(&x);
        for k in 1..16 {
            let a = s[k];
            let b = s[32 - k].conj();
            assert!((a - b).abs() < 1e-10, "bin {k}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 12];
        fft_in_place(&mut x, FftDirection::Forward);
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![Complex64::new(3.0, -1.0)];
        fft_in_place(&mut x, FftDirection::Forward);
        assert_eq!(x[0], Complex64::new(3.0, -1.0));
    }
}
