//! Descriptive statistics: online (Welford) accumulators, batch
//! mean/variance, autocorrelation, and quantiles.
//!
//! These back both the *measurement* side of the MBAC (estimating flow
//! mean and variance, §3.1 eqn (7)) and the *metrology* side of the
//! simulator (estimating overflow probabilities and validating synthetic
//! traffic against its target autocorrelation).

/// Numerically stable online accumulator for mean and variance
/// (Welford's algorithm). Supports O(1) updates and merging.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator; 0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (n denominator; 0 when empty).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sample mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance of a slice (0 when fewer than 2 elements).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Biased (population, 1/n) autocovariance at the given lag.
pub fn autocovariance(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag {
        return 0.0;
    }
    let m = mean(xs);
    let n = xs.len();
    let mut acc = 0.0;
    for i in 0..n - lag {
        acc += (xs[i] - m) * (xs[i + lag] - m);
    }
    acc / n as f64
}

/// Sample autocorrelation function for lags `0..=max_lag`, normalized so
/// `acf[0] = 1`. Returns all-zero (except `acf[0] = 1`) for constant
/// series.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let c0 = autocovariance(xs, 0);
    let mut out = Vec::with_capacity(max_lag + 1);
    if c0 <= 0.0 {
        out.push(1.0);
        out.extend(std::iter::repeat_n(0.0, max_lag));
        return out;
    }
    for lag in 0..=max_lag {
        out.push(autocovariance(xs, lag) / c0);
    }
    out
}

/// Empirical quantile via linear interpolation of order statistics
/// (type-7, the same convention as numpy's default). `p ∈ [0, 1]`.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&p),
        "quantile p must be in [0,1], got {p}"
    );
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.5, -0.5, 4.0, 4.0, 0.0, 7.25];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.count(), xs.len() as u64);
        assert_eq!(rs.min(), -0.5);
        assert_eq!(rs.max(), 7.25);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 - 8.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..33] {
            left.push(x);
        }
        for &x in &xs[33..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn welford_stable_for_large_offset() {
        // Classic catastrophic-cancellation scenario for naive sum-of-squares.
        let offset = 1e9;
        let mut rs = RunningStats::new();
        for &x in &[offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0] {
            rs.push(x);
        }
        assert!((rs.mean() - (offset + 10.0)).abs() < 1e-5);
        assert!(
            (rs.variance() - 30.0).abs() < 1e-6,
            "var = {}",
            rs.variance()
        );
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let rs = RunningStats::new();
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.mean(), 0.0);
        let mut one = RunningStats::new();
        one.push(5.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.mean(), 5.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn acf_of_white_noise_is_small() {
        // Deterministic LCG noise.
        let mut s = 123456789u64;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let r = acf(&xs, 5);
        assert!((r[0] - 1.0).abs() < 1e-12);
        for (lag, v) in r.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.03, "acf[{lag}] = {v}");
        }
    }

    #[test]
    fn acf_of_ar1_matches_phi_powers() {
        // x_{t+1} = φ x_t + ε; theoretical ACF is φ^lag.
        let phi = 0.8;
        let mut s = 42u64;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..200_000)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u1 = ((s >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u2 = (s >> 11) as f64 / (1u64 << 53) as f64;
                let eps = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                x = phi * x + eps;
                x
            })
            .collect();
        let r = acf(&xs, 4);
        for (lag, v) in r.iter().enumerate().skip(1) {
            let want = phi.powi(lag as i32);
            assert!((v - want).abs() < 0.02, "acf[{lag}] = {v}, want {want}");
        }
    }

    #[test]
    fn acf_constant_series() {
        let xs = vec![2.0; 100];
        let r = acf(&xs, 3);
        assert_eq!(r, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }
}
