//! Error function family: `erf`, `erfc`, and the scaled complement `erfcx`.
//!
//! These are the primitives underneath the Gaussian tail function `Q(x)`
//! that appears in every admission criterion and every closed-form result
//! of Grossglauser & Tse. We need *relative* accuracy deep in the tail
//! (the adjusted certainty-equivalent targets in Fig. 6 of the paper reach
//! below `1e-10`), so the implementation combines:
//!
//! * a Maclaurin series for `erf` on `|x| <= 1` (converges to machine
//!   precision in < 30 terms), and
//! * a Lentz-evaluated continued fraction for `erfcx` on `x > 1`, which
//!   preserves relative accuracy arbitrarily far into the tail.
//!
//! Both pieces are classical (Abramowitz & Stegun 7.1.5 / 7.1.14) and are
//! verified against high-precision reference values in the tests.

use std::f64::consts::{FRAC_2_SQRT_PI, PI};

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{-t²} dt`.
///
/// Accurate to close to machine precision for all finite `x`.
///
/// ```
/// let e = mbac_num::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-14);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x.is_infinite() {
        return x.signum();
    }
    let ax = x.abs();
    if ax <= 1.0 {
        erf_series(x)
    } else {
        let c = erfc_large(ax);
        let signed = 1.0 - c;
        if x < 0.0 {
            -signed
        } else {
            signed
        }
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Keeps full *relative* accuracy for large positive `x`, where
/// `1 - erf(x)` would lose all significance to cancellation.
///
/// ```
/// // erfc(5) ≈ 1.5374597944280349e-12 — still ~15 correct digits.
/// let c = mbac_num::erfc(5.0);
/// assert!((c / 1.5374597944280349e-12 - 1.0).abs() < 1e-12);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x.is_infinite() {
        return if x > 0.0 { 0.0 } else { 2.0 };
    }
    if x >= 1.0 {
        erfc_large(x)
    } else if x <= -1.0 {
        2.0 - erfc_large(-x)
    } else {
        1.0 - erf_series(x)
    }
}

/// The scaled complementary error function `erfcx(x) = e^{x²} · erfc(x)`.
///
/// For large `x` this stays O(1/x) instead of underflowing, which lets
/// callers work with log-probabilities in extreme Gaussian tails.
pub fn erfcx(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 1.0 {
        erfcx_cf(x)
    } else if x >= -26.0 {
        // Moderate/negative arguments: e^{x²} does not overflow until
        // roughly x = -26.6, so the direct product is exact enough.
        (x * x).exp() * erfc(x)
    } else {
        // erfc(x) -> 2 for very negative x; e^{x²} overflows.
        f64::INFINITY
    }
}

/// Natural log of `erfc(x)`, valid for any finite `x` and far beyond the
/// point where `erfc` itself underflows (`x ≳ 26.6`).
///
/// For `x < 0` this uses the reflection `erfc(x) = 2 − erfc(−x)`, where
/// `erfc(−x) ∈ (1, 2)` so the subtraction is benign: callers computing
/// log-tail probabilities at negative Q-arguments no longer need to
/// branch around a panicking precondition.
pub fn ln_erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return (2.0 - erfc(-x)).ln();
    }
    if x < 1.0 {
        erfc(x).ln()
    } else {
        // erfc(x) = erfcx(x) e^{-x²}  =>  ln erfc = ln erfcx - x².
        erfcx_cf(x).ln() - x * x
    }
}

/// Maclaurin series for `erf`, used on `|x| <= 1`.
///
/// erf(x) = (2/√π) Σ_{n≥0} (-1)ⁿ x^{2n+1} / (n! (2n+1))
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^{2n+1}/n! without the (2n+1) divisor
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < sum.abs() * 1e-17 {
            break;
        }
    }
    FRAC_2_SQRT_PI * sum
}

/// `erfc` for `x >= 1` via the scaled continued fraction.
fn erfc_large(x: f64) -> f64 {
    erfcx_cf(x) * (-x * x).exp()
}

/// Continued fraction for `erfcx(x)`, `x >= 1` (A&S 7.1.14):
///
/// erfcx(x) = (1/√π) · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + ...)))))
///
/// Evaluated with the modified Lentz algorithm.
fn erfcx_cf(x: f64) -> f64 {
    debug_assert!(x >= 1.0);
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-17;
    let mut f = x;
    let mut c = x;
    let mut d = 0.0f64;
    for m in 1..400 {
        let a = m as f64 / 2.0; // 1/2, 1, 3/2, 2, ...
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    1.0 / (PI.sqrt() * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.5, 0.5204998778130465),
        (0.75, 0.7111556336535151),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
    ];

    const ERFC_TABLE: &[(f64, f64)] = &[
        (1.0, 0.15729920705028513),
        (2.0, 0.004677734981047266),
        (3.0, 2.209049699858544e-5),
        (4.0, 1.541725790028002e-8),
        (5.0, 1.537_459_794_428_035e-12),
        (6.0, 2.1519736712498913e-17),
        (8.0, 1.1224297172982928e-29),
        (10.0, 2.0884875837625447e-45),
        (15.0, 7.212994172451207e-100),
        (20.0, 5.395865611607901e-176),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - want).abs() <= 1e-15 + 1e-14 * want.abs(),
                "erf({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_matches_reference_with_relative_accuracy() {
        for &(x, want) in ERFC_TABLE {
            let got = erfc(x);
            let rel = (got / want - 1.0).abs();
            assert!(rel < 1e-12, "erfc({x}) = {got}, want {want}, rel err {rel}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 4.0] {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erfc_reflection_identity() {
        // erfc(-x) = 2 - erfc(x)
        for &x in &[0.3, 0.9, 1.7, 3.2] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-14);
        }
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.4, 1.3, 2.8] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x={x}");
        }
    }

    #[test]
    fn erfcx_consistent_with_erfc() {
        for &x in &[1.0, 2.0, 3.5, 5.0] {
            let lhs = erfcx(x);
            let rhs = (x * x).exp() * erfc(x);
            assert!((lhs / rhs - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfcx_large_matches_asymptotic() {
        // erfcx(x) ~ 1/(x√π) · (1 - 1/(2x²) + 3/(4x⁴))
        let x = 50.0;
        let asym = (1.0 - 0.5 / (x * x) + 0.75 / (x * x * x * x)) / (x * PI.sqrt());
        assert!((erfcx(x) / asym - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ln_erfc_deep_tail() {
        // At x = 30, erfc underflows? No: erfc(30) ~ 2.6e-393 — underflows f64.
        // ln_erfc must still return a finite, accurate value.
        let x: f64 = 30.0;
        let got = ln_erfc(x);
        // Independent check from the asymptotic expansion
        // erfc(x) ~ e^{-x²}/(x√π) (1 - 1/(2x²) + 3/(4x⁴) - 15/(8x⁶)),
        // whose relative truncation error at x = 30 is below 1e-10.
        let x2 = x * x;
        let series = 1.0 - 0.5 / x2 + 0.75 / (x2 * x2) - 1.875 / (x2 * x2 * x2);
        let want = -x2 + (series / (x * PI.sqrt())).ln();
        assert!(
            (got - want).abs() < 1e-8,
            "ln_erfc(30) = {got}, want {want}"
        );
        assert!(erfc(x) == 0.0, "erfc(30) should underflow to zero");
    }

    #[test]
    fn ln_erfc_negative_arguments() {
        // ln erfc(x) for x < 0 via the reflection ln(2 − erfc(−x)).
        for &x in &[-0.2, -1.0, -3.0, -10.0, -40.0] {
            let got = ln_erfc(x);
            let want = (2.0 - erfc(-x)).ln();
            assert!(
                (got - want).abs() < 1e-14,
                "ln_erfc({x}) = {got}, want {want}"
            );
        }
        // Deep negative: erfc -> 2, so ln erfc -> ln 2 from below.
        assert!((ln_erfc(-50.0) - std::f64::consts::LN_2).abs() < 1e-15);
        // Continuity at zero: erfc(0) = 1.
        assert_eq!(ln_erfc(0.0), 0.0);
        assert!(ln_erfc(f64::NAN).is_nan());
    }

    #[test]
    fn extreme_inputs() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert_eq!(erfc(f64::INFINITY), 0.0);
        assert!((erfc(f64::NEG_INFINITY) - 2.0).abs() < 1e-15);
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }
}
