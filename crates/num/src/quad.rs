//! Numerical integration: adaptive Simpson quadrature on finite
//! intervals and a transformed rule for semi-infinite integrals.
//!
//! The hitting-probability approximations of the paper (eqns (30), (32),
//! (37)) are integrals over `[0, ∞)` of smooth, Gaussian-decaying
//! integrands. Adaptive Simpson with interval subdivision handles the
//! boundary-layer behaviour near `t = 0` (where `σ(t) → 0` makes the
//! integrand nearly singular) and the substitution `t = u/(1-u)` folds the
//! infinite tail into `[0, 1)`.

/// Result of a quadrature, with an error estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quadrature {
    /// The integral estimate.
    pub value: f64,
    /// Estimated absolute error.
    pub error: f64,
    /// Number of integrand evaluations.
    pub evals: u32,
}

/// Adaptive Simpson integration of `f` over `[a, b]` to absolute
/// tolerance `tol`.
///
/// Uses the classical recursive scheme with Richardson error estimation
/// (`|S₂ - S₁|/15`) and a depth cap of 50, which bounds the work while
/// being far deeper than any integrand in this crate requires.
pub fn integrate<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Quadrature {
    assert!(
        a.is_finite() && b.is_finite(),
        "integrate requires finite bounds"
    );
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return Quadrature {
            value: 0.0,
            error: 0.0,
            evals: 0,
        };
    }
    let mut evals = 0u32;
    let mut eval = |x: f64| {
        evals += 1;
        let v = f(x);
        if v.is_nan() {
            0.0
        } else {
            v
        }
    };
    let m = 0.5 * (a + b);
    let fa = eval(a);
    let fm = eval(m);
    let fb = eval(b);
    let whole = simpson(a, b, fa, fm, fb);
    let (value, error) = adaptive(&mut eval, a, b, fa, fm, fb, whole, tol, 50);
    Quadrature {
        value,
        error,
        evals,
    }
}

/// Integrates `f` over `[a, ∞)` to absolute tolerance `tol`, via the
/// substitution `t = a + u/(1-u)`, `dt = du/(1-u)²`, mapping `[0,1) → [a,∞)`.
///
/// The integrand must decay fast enough that `f(t)/(1-u)²` stays bounded
/// as `u → 1`; Gaussian and exponential tails qualify. The transformed
/// integrand is clamped to zero at `u = 1`.
pub fn integrate_to_inf<F: FnMut(f64) -> f64>(mut f: F, a: f64, tol: f64) -> Quadrature {
    integrate(
        move |u| {
            if u >= 1.0 {
                return 0.0;
            }
            let om = 1.0 - u;
            let t = a + u / om;
            let jac = 1.0 / (om * om);
            if !jac.is_finite() {
                return 0.0;
            }
            let v = f(t) * jac;
            if v.is_finite() {
                v
            } else {
                0.0
            }
        },
        0.0,
        1.0,
        tol,
    )
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> (f64, f64) {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        return (left + right + delta / 15.0, delta.abs() / 15.0);
    }
    let (lv, le) = adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1);
    let (rv, re) = adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
    (lv + rv, le + re)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::phi;

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact on cubics.
        let r = integrate(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 1e-12);
        // ∫ = [x⁴/4 - x² + x] from -1 to 3 = (81/4 - 9 + 3) - (1/4 - 1 - 1) = 14.25 + 1.75 = 16
        assert!((r.value - 16.0).abs() < 1e-10, "got {}", r.value);
    }

    #[test]
    fn integrates_sine_over_period() {
        let r = integrate(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-12);
        assert!((r.value - 2.0).abs() < 1e-10);
    }

    #[test]
    fn empty_interval_is_zero() {
        let r = integrate(|x| x.exp(), 1.5, 1.5, 1e-10);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn reversed_interval_is_negated() {
        let fwd = integrate(|x| x.cos(), 0.0, 1.0, 1e-12);
        let rev = integrate(|x| x.cos(), 1.0, 0.0, 1e-12);
        assert!((fwd.value + rev.value).abs() < 1e-10);
    }

    #[test]
    fn gaussian_density_integrates_to_one() {
        let r = integrate(phi, -10.0, 10.0, 1e-13);
        assert!((r.value - 1.0).abs() < 1e-10, "got {}", r.value);
    }

    #[test]
    fn semi_infinite_gaussian_tail() {
        // ∫₀^∞ φ(t) dt = 1/2.
        let r = integrate_to_inf(phi, 0.0, 1e-12);
        assert!((r.value - 0.5).abs() < 1e-9, "got {}", r.value);
        // ∫₂^∞ φ(t) dt = Q(2).
        let r = integrate_to_inf(phi, 2.0, 1e-13);
        assert!(
            (r.value - crate::normal::q(2.0)).abs() < 1e-10,
            "got {}",
            r.value
        );
    }

    #[test]
    fn semi_infinite_exponential() {
        // ∫₀^∞ e^{-3t} dt = 1/3.
        let r = integrate_to_inf(|t| (-3.0 * t).exp(), 0.0, 1e-12);
        assert!((r.value - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn handles_boundary_layer_integrand() {
        // Mimics the paper's eqn (32) integrand near t = 0, which has the
        // shape (α+t)/σ³(t) φ((α+t)/σ(t)) with σ(t) → 0: an essential
        // singularity that evaluates to 0 in the limit.
        let alpha = 3.0;
        let gamma = 100.0;
        let f = |t: f64| {
            let s2: f64 = 2.0 * (1.0 - (-gamma * t).exp());
            if s2 <= 0.0 {
                return 0.0;
            }
            let s = s2.sqrt();
            gamma * (alpha + t) / (s2 * s) * phi((alpha + t) / s)
        };
        let r = integrate_to_inf(f, 0.0, 1e-12);
        // Time-scale separation limit (eqn (33)): γ/(2√π) exp(-α²/4).
        let expect = gamma / (2.0 * std::f64::consts::PI.sqrt()) * (-alpha * alpha / 4.0).exp();
        assert!(
            (r.value / expect - 1.0).abs() < 0.02,
            "got {}, expected ≈ {}",
            r.value,
            expect
        );
    }

    #[test]
    fn error_estimate_is_honest() {
        let r = integrate(|x| (5.0 * x).sin().abs(), 0.0, 2.0, 1e-8);
        // True value: |sin| over [0,2] with period π/5.
        // ∫|sin(5x)|dx over one half-period (π/5) is 2/5. [0,2] contains
        // 10/π ≈ 3.1831 half-periods: 3 full (6/5) plus remainder.
        // Remainder: from 3π/5 to 2: ∫ sin(5x) dx = [-cos(5x)/5]
        //   = (-cos(10) + cos(3π))/5 = (-cos(10) - 1)/5 … careful with sign;
        // easier: compare against a fine trapezoid.
        let n = 2_000_000;
        let mut acc = 0.0;
        for i in 0..=n {
            let x = 2.0 * i as f64 / n as f64;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            acc += w * (5.0 * x).sin().abs();
        }
        acc *= 2.0 / n as f64;
        assert!(
            (r.value - acc).abs() < 1e-6,
            "adaptive {} vs trapezoid {}",
            r.value,
            acc
        );
    }
}
