//! Scalar root finding: bisection and Brent's method.
//!
//! Used to invert the paper's overflow-probability formulas — e.g. solving
//! eqn (38) for the adjusted certainty-equivalent target `p_ce` (Fig. 6),
//! or solving the perfect-knowledge admission criterion (eqn (4)) for the
//! admissible flow count `m*`.

/// Outcome of a root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Location of the root.
    pub x: f64,
    /// Function value at `x` (should be ≈ 0).
    pub fx: f64,
    /// Number of function evaluations used.
    pub evals: u32,
}

/// Errors from the root finders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so no root is bracketed.
    NotBracketed,
    /// The iteration limit was reached before the tolerance was met.
    MaxIterations,
    /// The function returned NaN.
    NanEncountered,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NotBracketed => write!(f, "root is not bracketed by the interval"),
            RootError::MaxIterations => write!(f, "root finder hit its iteration limit"),
            RootError::NanEncountered => write!(f, "function returned NaN during root search"),
        }
    }
}

impl std::error::Error for RootError {}

/// Plain bisection on `[a, b]`. Requires `f(a)` and `f(b)` to have
/// opposite signs. Converges unconditionally; ~53 iterations reach
/// machine precision on any bounded interval.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    xtol: f64,
    max_iter: u32,
) -> Result<Root, RootError> {
    let mut fa = f(a);
    let mut fb = f(b);
    let mut evals = 2;
    if fa.is_nan() || fb.is_nan() {
        return Err(RootError::NanEncountered);
    }
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            fx: 0.0,
            evals,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            fx: 0.0,
            evals,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    #[allow(clippy::explicit_counter_loop)] // `evals` also counts the bracket evaluations
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        evals += 1;
        if fm.is_nan() {
            return Err(RootError::NanEncountered);
        }
        if fm == 0.0 || (b - a).abs() <= xtol {
            return Ok(Root {
                x: m,
                fx: fm,
                evals,
            });
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
            fb = fm;
        }
        let _ = fb;
    }
    Err(RootError::MaxIterations)
}

/// Brent's method on `[a, b]`: inverse-quadratic interpolation with
/// secant and bisection safeguards. Superlinear on smooth functions,
/// never worse than bisection.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a0: f64,
    b0: f64,
    xtol: f64,
    max_iter: u32,
) -> Result<Root, RootError> {
    let mut a = a0;
    let mut b = b0;
    let mut fa = f(a);
    let mut fb = f(b);
    let mut evals = 2;
    if fa.is_nan() || fb.is_nan() {
        return Err(RootError::NanEncountered);
    }
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            fx: 0.0,
            evals,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            fx: 0.0,
            evals,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    // Ensure |f(b)| <= |f(a)|: b is the current best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;
    #[allow(clippy::explicit_counter_loop)] // `evals` also counts the bracket evaluations
    for _ in 0..max_iter {
        if fc.abs() < fb.abs() {
            // Rename so that b stays the best approximation.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol = 2.0 * f64::EPSILON * b.abs() + 0.5 * xtol;
        let m = 0.5 * (c - b);
        if m.abs() <= tol || fb == 0.0 {
            return Ok(Root {
                x: b,
                fx: fb,
                evals,
            });
        }
        if e.abs() < tol || fa.abs() <= fb.abs() {
            // Fall back to bisection.
            d = m;
            e = m;
        } else {
            let s = fb / fa;
            let (mut p, mut qd);
            if a == c {
                // Secant.
                p = 2.0 * m * s;
                qd = 1.0 - s;
            } else {
                // Inverse quadratic interpolation.
                let qa = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * m * qa * (qa - r) - (b - a) * (r - 1.0));
                qd = (qa - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                qd = -qd;
            } else {
                p = -p;
            }
            if 2.0 * p < (3.0 * m * qd - (tol * qd).abs()).min(e * qd.abs()) {
                e = d;
                d = p / qd;
            } else {
                d = m;
                e = m;
            }
        }
        a = b;
        fa = fb;
        b += if d.abs() > tol { d } else { tol * m.signum() };
        fb = f(b);
        evals += 1;
        if fb.is_nan() {
            return Err(RootError::NanEncountered);
        }
        if (fb > 0.0) == (fc > 0.0) {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(RootError::MaxIterations)
}

/// Expands a bracket geometrically from an initial guess until `f`
/// changes sign, then runs Brent. `lo_limit`/`hi_limit` bound the search.
///
/// Convenience used by the `p_ce` inversion, where a sign change is
/// guaranteed by monotonicity but its location varies over orders of
/// magnitude.
pub fn brent_auto_bracket<F: FnMut(f64) -> f64>(
    mut f: F,
    guess: f64,
    lo_limit: f64,
    hi_limit: f64,
    xtol: f64,
) -> Result<Root, RootError> {
    assert!(lo_limit < hi_limit);
    let g = guess.clamp(lo_limit, hi_limit);
    let fg = f(g);
    if fg.is_nan() {
        return Err(RootError::NanEncountered);
    }
    if fg == 0.0 {
        return Ok(Root {
            x: g,
            fx: 0.0,
            evals: 1,
        });
    }
    // Walk outward in both directions with doubling strides.
    let mut lo = g;
    let mut hi = g;
    let mut flo = fg;
    let mut fhi = fg;
    let mut stride = (hi_limit - lo_limit) * 1e-3;
    for _ in 0..64 {
        if flo.signum() != fg.signum() || fhi.signum() != fg.signum() {
            break;
        }
        if lo > lo_limit {
            lo = (lo - stride).max(lo_limit);
            flo = f(lo);
            if flo.is_nan() {
                return Err(RootError::NanEncountered);
            }
        }
        if fhi.signum() == fg.signum() && hi < hi_limit {
            hi = (hi + stride).min(hi_limit);
            fhi = f(hi);
            if fhi.is_nan() {
                return Err(RootError::NanEncountered);
            }
        }
        stride *= 2.0;
        if lo <= lo_limit
            && hi >= hi_limit
            && flo.signum() == fg.signum()
            && fhi.signum() == fg.signum()
        {
            return Err(RootError::NotBracketed);
        }
    }
    if flo.signum() != fg.signum() {
        brent(f, lo, g, xtol, 200)
    } else if fhi.signum() != fg.signum() {
        brent(f, g, hi, xtol, 200)
    } else {
        Err(RootError::NotBracketed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn bisect_rejects_unbracketed() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err(),
            RootError::NotBracketed
        );
    }

    #[test]
    fn brent_finds_sqrt_two_fast() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(r.evals < 20, "brent used {} evals", r.evals);
    }

    #[test]
    fn brent_handles_endpoint_roots() {
        let r = brent(|x| x, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 0.0);
        let r = brent(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 1.0);
    }

    #[test]
    fn brent_on_transcendental() {
        // cos(x) = x has root ≈ 0.7390851332151607.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((r.x - 0.7390851332151607).abs() < 1e-12);
    }

    #[test]
    fn brent_steep_function() {
        // f(x) = exp(20x) - 1 has root at 0; very asymmetric bracket.
        let r = brent(|x| (20.0 * x).exp_m1(), -10.0, 1.0, 1e-13, 200).unwrap();
        assert!(r.x.abs() < 1e-10, "x = {}", r.x);
    }

    #[test]
    fn auto_bracket_expands_to_find_root() {
        // Root at 700, guess at 1.
        let r = brent_auto_bracket(|x| x - 700.0, 1.0, 0.0, 1e6, 1e-10).unwrap();
        assert!((r.x - 700.0).abs() < 1e-6);
    }

    #[test]
    fn auto_bracket_reports_failure() {
        let e = brent_auto_bracket(|x| x * x + 1.0, 0.0, -10.0, 10.0, 1e-10).unwrap_err();
        assert_eq!(e, RootError::NotBracketed);
    }

    #[test]
    fn brent_matches_bisect_on_q_inversion_style_problem() {
        // Monotone decreasing log-tail style function.
        let f = |x: f64| (-x * x / 2.0) - (-8.0f64);
        let rb = bisect(f, 0.0, 10.0, 1e-12, 200).unwrap();
        let rn = brent(f, 0.0, 10.0, 1e-12, 200).unwrap();
        assert!((rb.x - rn.x).abs() < 1e-9);
        assert!((rb.x - 4.0).abs() < 1e-9);
    }
}
