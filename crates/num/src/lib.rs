//! # mbac-num — numerics substrate for the MBAC framework
//!
//! Self-contained numerical building blocks used throughout the
//! reproduction of Grossglauser & Tse, *"A Framework for Robust
//! Measurement-Based Admission Control"* (SIGCOMM '97 / UCB-ERL M98/17):
//!
//! * [`erf()`](erf()), [`erfc`], [`erfcx`], [`ln_erfc`] — error-function family
//!   with full relative accuracy in the tail;
//! * [`phi`], [`q`], [`inv_q`], [`mills_ratio`] — the standard-normal
//!   density and tail functions the paper's admission criteria are built
//!   on (`p_q = Q(α_q)`);
//! * [`quad`] — adaptive Simpson quadrature, including semi-infinite
//!   integrals for the boundary-hitting formulas (eqns (30)/(32)/(37));
//! * [`roots`] — bisection and Brent, used to invert the overflow
//!   formulas for the adjusted certainty-equivalent target `p_ce`;
//! * [`fft`] — radix-2 FFT for the Davies–Harte fGn generator;
//! * [`rng`] — seedable Gaussian / exponential / discrete sampling;
//! * [`stats`], [`ci`], [`regress`] — descriptive statistics, confidence
//!   intervals (the paper's §5.2 termination rule), and least squares
//!   (Hurst estimation).
//!
//! Everything is implemented from scratch on purpose: the reproduction
//! brief requires all substrates to be built, the Rust statistics
//! ecosystem is thin, and the quantities here (Gaussian tails at
//! `p < 1e-10`) need auditable accuracy guarantees. Reference values in
//! the test suites were generated with 50-digit arithmetic.

#![warn(missing_docs)]

pub mod ci;
pub mod complex;
pub mod dispatch;
pub mod erf;
pub mod fft;
pub mod linalg;
pub mod moments;
pub mod normal;
pub mod parallel;
pub mod quad;
pub mod regress;
pub mod rng;
pub mod roots;
pub mod stats;

pub use ci::{mean_ci, wald_ci, wilson_ci, z_critical, ConfidenceInterval};
pub use complex::Complex64;
pub use dispatch::KernelDispatch;
pub use erf::{erf, erfc, erfcx, ln_erfc};
pub use linalg::{ctmc_stationary, solve as solve_linear, LinalgError, Matrix};
pub use moments::RateMoments;
pub use normal::{inv_norm_cdf, inv_q, ln_q, mills_ratio, norm_cdf, phi, q};
pub use parallel::{
    default_workers, parallel_map, parallel_map_with, parallel_map_with_stats, PoolCallStats,
    WorkerStats,
};
pub use quad::{integrate, integrate_to_inf, Quadrature};
pub use regress::{linear_fit, LinearFit};
pub use roots::{bisect, brent, brent_auto_bracket, Root, RootError};
pub use stats::{acf, mean, quantile, std_dev, variance, RunningStats};
