//! Kernel dispatch: selects between the scalar reference kernels and
//! their hand-tiled wide-lane (SIMD-friendly) twins.
//!
//! The three hot kernels — the flow-major innovation fill
//! ([`crate::rng::NormalSampler`]), the AR(1) chunk recurrence
//! (`mbac-traffic`), and the fused moment accumulation
//! ([`crate::RateMoments`]) — each exist in two implementations:
//!
//! * **Scalar** — the original element-at-a-time reference code. This is
//!   the twin every golden and RNG-stream test was blessed against.
//! * **Wide** — the same arithmetic restructured over `[f64; LANES]`
//!   tiles so stable rustc's autovectorizer lifts it to packed SIMD
//!   (SSE2/AVX2/AVX-512 depending on `target-cpu`), with scalar
//!   fallbacks only for the rare ziggurat wedge/tail rejections.
//!
//! The two paths are **bit-exact twins**: per element they execute the
//! identical IEEE expression sequence (vector lanes are elementwise, and
//! rustc never contracts `a*b + c` into an FMA), every reduction folds
//! in the same program order, and the RNG word stream is consumed
//! identically. Switching dispatch therefore never changes a simulation
//! result — the twin property tests in `mbac-num` and `mbac-traffic`
//! assert bit-identity, and the fig5–fig12 goldens pass un-re-blessed on
//! both paths.
//!
//! Selection: the process-wide default is [`KernelDispatch::Wide`],
//! overridable by the `MBAC_KERNEL_DISPATCH` environment variable
//! (`scalar` | `wide`, read once on first use) or at runtime via
//! [`KernelDispatch::set_global`] (used by `mbacctl --kernel-dispatch`
//! and the bench ablation harness). Kernels that need a fixed mode
//! regardless of the global (tests, ablations) take the dispatch
//! explicitly through the `*_with` entry points.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation of the hot kernels to run. The two variants are
/// bit-exact twins; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelDispatch {
    /// Element-at-a-time reference kernels.
    Scalar,
    /// Hand-tiled wide-lane kernels (autovectorized on stable rustc).
    Wide,
}

/// Global dispatch state: 0 = unresolved, 1 = scalar, 2 = wide.
static GLOBAL: AtomicU8 = AtomicU8::new(0);

impl KernelDispatch {
    /// The process-wide dispatch mode: the last
    /// [`set_global`](KernelDispatch::set_global) if any, else
    /// `MBAC_KERNEL_DISPATCH` from the environment, else
    /// [`KernelDispatch::Wide`].
    ///
    /// A relaxed atomic load — cheap enough to consult per kernel call.
    #[inline]
    pub fn current() -> Self {
        match GLOBAL.load(Ordering::Relaxed) {
            1 => KernelDispatch::Scalar,
            2 => KernelDispatch::Wide,
            _ => Self::resolve_from_env(),
        }
    }

    /// Overrides the process-wide dispatch mode (takes precedence over
    /// the environment). Returns the previous effective mode.
    pub fn set_global(self) -> Self {
        let prev = Self::current();
        GLOBAL.store(self as u8 + 1, Ordering::Relaxed);
        prev
    }

    /// Parses a mode name as accepted by `MBAC_KERNEL_DISPATCH` and
    /// `mbacctl --kernel-dispatch`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelDispatch::Scalar),
            "wide" => Some(KernelDispatch::Wide),
            _ => None,
        }
    }

    /// The name `parse` accepts for this mode.
    pub fn name(self) -> &'static str {
        match self {
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Wide => "wide",
        }
    }

    #[cold]
    fn resolve_from_env() -> Self {
        let mode = match std::env::var("MBAC_KERNEL_DISPATCH") {
            Ok(s) => Self::parse(&s).unwrap_or_else(|| {
                panic!("MBAC_KERNEL_DISPATCH={s:?}: expected \"scalar\" or \"wide\"")
            }),
            Err(_) => KernelDispatch::Wide,
        };
        GLOBAL.store(mode as u8 + 1, Ordering::Relaxed);
        mode
    }
}

impl std::fmt::Display for KernelDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for d in [KernelDispatch::Scalar, KernelDispatch::Wide] {
            assert_eq!(KernelDispatch::parse(d.name()), Some(d));
            assert_eq!(KernelDispatch::parse(&d.name().to_uppercase()), Some(d));
        }
        assert_eq!(KernelDispatch::parse("avx512"), None);
    }

    #[test]
    fn set_global_overrides_and_reports_previous() {
        let orig = KernelDispatch::current();
        let before = KernelDispatch::Scalar.set_global();
        assert_eq!(before, orig);
        assert_eq!(KernelDispatch::current(), KernelDispatch::Scalar);
        let before = KernelDispatch::Wide.set_global();
        assert_eq!(before, KernelDispatch::Scalar);
        assert_eq!(KernelDispatch::current(), KernelDispatch::Wide);
        orig.set_global();
    }
}
