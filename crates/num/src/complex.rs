//! A minimal complex-number type used by the FFT.
//!
//! The MBAC framework only needs complex arithmetic inside the
//! Davies–Harte fractional-Gaussian-noise generator, so we keep a small,
//! fully-owned implementation rather than pulling an external crate.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` to avoid overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 4.0);
        let c = a + b - b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 5.0);
        let c = a * b;
        // (2+3i)(-1+5i) = -2 + 10i - 3i + 15i² = -17 + 7i
        assert!(close(c.re, -17.0) && close(c.im, 7.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..32 {
            let theta = k as f64 * 0.41;
            let z = Complex64::cis(theta);
            assert!(close(z.abs(), 1.0));
        }
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex64::new(1.0, 2.0);
        let c = z.conj();
        assert!(close(c.re, 1.0) && close(c.im, -2.0));
        assert!(close((z * c).im, 0.0));
        assert!(close((z * c).re, z.norm_sqr()));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let z = Complex64::I * Complex64::I;
        assert!(close(z.re, -1.0) && close(z.im, 0.0));
    }

    #[test]
    fn scale_multiplies_both_parts() {
        let z = Complex64::new(3.0, -4.0).scale(0.5);
        assert!(close(z.re, 1.5) && close(z.im, -2.0));
        assert!(close(Complex64::new(3.0, -4.0).abs(), 5.0));
    }
}
