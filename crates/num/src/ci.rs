//! Confidence intervals for simulation metrology.
//!
//! The paper's §5.2 termination rule is: stop when "the 95% confidence
//! interval is less than ±20% of the estimated mean", or when the
//! estimate plus its half-width sits at least two orders of magnitude
//! below the target overflow probability. These helpers implement that
//! arithmetic for both raw means and binomial proportions.

use crate::normal::inv_q;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Relative half-width, `half_width / estimate`; infinite when the
    /// estimate is zero.
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            self.half_width() / self.estimate.abs()
        }
    }
}

/// Two-sided z critical value for a confidence `level` (e.g. 0.95 →
/// 1.959963...).
pub fn z_critical(level: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&level),
        "confidence level must be in (0,1)"
    );
    inv_q(0.5 * (1.0 - level))
}

/// Normal-approximation CI for a mean, given sample mean, sample
/// standard deviation and count.
pub fn mean_ci(mean: f64, sd: f64, n: u64, level: f64) -> ConfidenceInterval {
    assert!(n > 0, "mean_ci needs at least one sample");
    let z = z_critical(level);
    let half = z * sd / (n as f64).sqrt();
    ConfidenceInterval {
        estimate: mean,
        lo: mean - half,
        hi: mean + half,
        level,
    }
}

/// Wald (normal-approximation) CI for a binomial proportion.
/// Adequate when `successes` is reasonably large; the simulator uses
/// [`wilson_ci`] when counts are small.
pub fn wald_ci(successes: u64, trials: u64, level: f64) -> ConfidenceInterval {
    assert!(trials > 0, "wald_ci needs at least one trial");
    let p = successes as f64 / trials as f64;
    let z = z_critical(level);
    let half = z * (p * (1.0 - p) / trials as f64).sqrt();
    ConfidenceInterval {
        estimate: p,
        lo: (p - half).max(0.0),
        hi: (p + half).min(1.0),
        level,
    }
}

/// Wilson score interval for a binomial proportion — well-behaved even
/// for zero successes, which matters when the overflow probability is far
/// below the sampling resolution.
pub fn wilson_ci(successes: u64, trials: u64, level: f64) -> ConfidenceInterval {
    assert!(trials > 0, "wilson_ci needs at least one trial");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = z_critical(level);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ConfidenceInterval {
        estimate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_critical_known_values() {
        assert!((z_critical(0.95) - 1.959963984540054).abs() < 1e-9);
        assert!((z_critical(0.99) - 2.5758293035489004).abs() < 1e-9);
        assert!((z_critical(0.90) - 1.6448536269514722).abs() < 1e-9);
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let a = mean_ci(10.0, 2.0, 100, 0.95);
        let b = mean_ci(10.0, 2.0, 10_000, 0.95);
        assert!(b.half_width() < a.half_width());
        assert!((a.half_width() / b.half_width() - 10.0).abs() < 1e-9);
        assert!((a.estimate - 10.0).abs() < 1e-15);
    }

    #[test]
    fn mean_ci_is_symmetric() {
        let ci = mean_ci(5.0, 1.0, 50, 0.95);
        assert!((ci.hi - ci.estimate - (ci.estimate - ci.lo)).abs() < 1e-12);
    }

    #[test]
    fn wald_and_wilson_agree_for_large_counts() {
        let wald = wald_ci(5_000, 100_000, 0.95);
        let wilson = wilson_ci(5_000, 100_000, 0.95);
        assert!((wald.estimate - 0.05).abs() < 1e-12);
        assert!((wald.lo - wilson.lo).abs() < 1e-4);
        assert!((wald.hi - wilson.hi).abs() < 1e-4);
    }

    #[test]
    fn wilson_handles_zero_successes() {
        let ci = wilson_ci(0, 1000, 0.95);
        assert_eq!(ci.estimate, 0.0);
        assert!(ci.lo.abs() < 1e-12, "lo = {}", ci.lo);
        assert!(ci.hi > 0.0 && ci.hi < 0.01, "hi = {}", ci.hi);
    }

    #[test]
    fn wilson_handles_all_successes() {
        let ci = wilson_ci(1000, 1000, 0.95);
        assert_eq!(ci.estimate, 1.0);
        assert_eq!(ci.hi, 1.0);
        assert!(ci.lo > 0.99);
    }

    #[test]
    fn relative_half_width_for_paper_termination_rule() {
        // 95% CI within ±20% of the mean: the paper's criterion (a).
        let ci = wald_ci(100, 10_000, 0.95);
        // p̂ = 0.01, half = 1.96·sqrt(0.01·0.99/10000) ≈ 0.00195 → rhw ≈ 0.195.
        let rhw = ci.relative_half_width();
        assert!((rhw - 0.195).abs() < 0.01, "rhw = {rhw}");
        assert!(rhw < 0.20, "this example should just satisfy the rule");
    }

    #[test]
    fn zero_estimate_has_infinite_relative_width() {
        let ci = wilson_ci(0, 10, 0.95);
        assert!(ci.relative_half_width().is_infinite());
    }
}
