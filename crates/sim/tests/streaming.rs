//! Property tests on the streaming metrics contract: streaming mode is
//! an *emission* change, never an *aggregation* change.
//!
//! Two identities are pinned for any flush interval, sampling fraction
//! and worker count:
//!
//! 1. the merged snapshot a streaming session returns is byte-identical
//!    to the plain `Enabled` snapshot (same entries folded into the
//!    same instruments);
//! 2. the cumulative interval records captured from the stream, re-
//!    folded at end of run (last interval per replication stream,
//!    merged in stream order), reproduce that snapshot byte-for-byte.

use mbac_core::admission::CertaintyEquivalent;
use mbac_metrics::{refold_intervals, StreamConfig, StreamSink};
use mbac_sim::{ImpulsiveConfig, ImpulsiveLoad, MetricsMode, SessionBuilder};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use proptest::prelude::*;

fn rcbr() -> RcbrModel {
    RcbrModel::new(RcbrConfig {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        truncate_at_zero: true,
    })
}

fn small_cfg(seed: u64, replications: usize) -> ImpulsiveConfig {
    ImpulsiveConfig {
        capacity: 40.0,
        estimation_flows: 40,
        mean_holding: Some(15.0),
        observe_times: vec![0.5, 2.0, 8.0],
        replications,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn refolded_intervals_reproduce_snapshot_mode_bit_identically(
        seed in 0u64..1_000_000,
        workers in 1usize..8,
        flush_interval in 0u64..50,
        fraction_idx in 0usize..3,
        replications in 1usize..12,
    ) {
        let sample_fraction = [0.0, 0.1, 1.0][fraction_idx];
        let model = rcbr();
        let policy = CertaintyEquivalent::from_probability(1e-2);
        let cfg = small_cfg(seed, replications);
        let scenario = ImpulsiveLoad::new(&cfg, &model, &policy);

        // Reference: plain snapshot mode, single worker.
        let (_, reference) = SessionBuilder::new()
            .workers(1)
            .metrics(MetricsMode::Enabled)
            .run_metered(&scenario)
            .unwrap();

        // Streaming mode. The ring is sized above the worst-case record
        // count so nothing can drop: the identity under test is about
        // aggregation, not backpressure (drops are covered separately).
        let (stream_sink, collected) = StreamSink::collecting(StreamConfig {
            ring_capacity: 1 << 15,
            sample_fraction,
            flush_interval,
            ..StreamConfig::default()
        });
        let (_, streamed) = SessionBuilder::new()
            .workers(workers)
            .stream(stream_sink.handle())
            .run_metered(&scenario)
            .unwrap();
        let stats = stream_sink.finish().unwrap();
        prop_assert_eq!(stats.dropped, 0, "oversized ring must not drop");
        // Every replication flushes at least its final interval.
        prop_assert!(stats.intervals >= replications as u64);

        // Identity 1: streaming collection returns the same snapshot.
        prop_assert_eq!(
            reference.to_json(),
            streamed.to_json(),
            "streaming mode changed the aggregate (workers={}, flush={})",
            workers,
            flush_interval
        );

        // Identity 2: the captured intervals re-fold to it exactly.
        let items = collected.lock().unwrap();
        let refolded = refold_intervals(&items);
        prop_assert_eq!(
            reference.to_json(),
            refolded.to_json(),
            "re-folded intervals diverged (workers={}, flush={})",
            workers,
            flush_interval
        );
    }
}
