//! Wheel-vs-reference equivalence proptests.
//!
//! The timing-wheel flow table ([`mbac_sim::FlowTable`]) claims to be
//! *bit-identical* to the frozen pre-calendar implementation
//! ([`mbac_sim::ReferenceFlowTable`]) — same snapshots (the exact
//! surviving slot permutation), same `next_departure`, same ids, same
//! conservation counts, same RNG stream — on any interleaving of
//! admissions, advances, departures, and fused measurement ticks.
//! These proptests drive both tables through randomized schedules
//! built to stress the wheel's hard cases:
//!
//! * duplicate departure times (holds and time steps share a 0.5 grid,
//!   so exact `f64` collisions are common);
//! * out-of-order holding times (a late admit with a short hold lowers
//!   the pending minimum below earlier admits);
//! * `INFINITY` holds (never scheduled in the calendar) and far-future
//!   holds (land in the wheel's top levels and must cascade down);
//! * empty-table and empty-window drains (`depart_until` with nothing
//!   expiring, including on a completely empty table);
//! * mixed groups (two keyed kernels plus the boxed fallback group via
//!   `admit_process`), exercising the canonical group-then-slot expiry
//!   order, on both the batched and unbatched engines.

use mbac_sim::{FlowTable, ReferenceFlowTable};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of the randomized schedule. Times are in half-unit steps so
/// departure times collide exactly in `f64`.
#[derive(Clone, Debug)]
enum Op {
    /// Admit from source model `which` (0 = RCBR, 1 = AR(1)) with a
    /// holding time of `hold_steps · 0.5`; `hold_steps == 0` means an
    /// `INFINITY` hold, and `far` pushes the departure ~1e6 time units
    /// out (top wheel levels).
    Admit {
        which: u8,
        hold_steps: u8,
        far: bool,
    },
    /// Admit a pre-spawned boxed process into the fallback group.
    AdmitBoxed { hold_steps: u8 },
    /// Advance all processes by `steps · 0.5` (RNG-consuming).
    Advance { steps: u8 },
    /// Expire everything due by now + `steps · 0.5` (no advance — the
    /// lifecycle side alone, including empty drains when `steps` is 0).
    Depart { steps: u8 },
    /// The fused advance+depart+measure tick; moments compared too.
    FusedTick { steps: u8 },
}

/// Weighted op generator (the vendored proptest stub has no
/// `prop_oneof`, so the mix is drawn by hand: admits dominate, with
/// lifecycle and fused ticks interleaved).
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn sample(&self, rng: &mut StdRng) -> Op {
        match rng.gen_range(0u8..11) {
            0..=3 => Op::Admit {
                which: rng.gen_range(0u8..2),
                hold_steps: rng.gen_range(0u8..12),
                far: rng.gen_range(0u8..10) == 0,
            },
            4 => Op::AdmitBoxed {
                hold_steps: rng.gen_range(1u8..12),
            },
            5 | 6 => Op::Advance {
                steps: rng.gen_range(1u8..5),
            },
            7 | 8 => Op::Depart {
                steps: rng.gen_range(0u8..5),
            },
            _ => Op::FusedTick {
                steps: rng.gen_range(1u8..5),
            },
        }
    }
}

struct Harness {
    wheel: FlowTable,
    legacy: ReferenceFlowTable,
    rng_a: StdRng,
    rng_b: StdRng,
    now: f64,
    snap_a: Vec<f64>,
    snap_b: Vec<f64>,
}

impl Harness {
    fn new(batched: bool, seed: u64) -> Self {
        Harness {
            wheel: if batched {
                FlowTable::new()
            } else {
                FlowTable::new_unbatched()
            },
            legacy: if batched {
                ReferenceFlowTable::new()
            } else {
                ReferenceFlowTable::new_unbatched()
            },
            rng_a: StdRng::seed_from_u64(seed),
            rng_b: StdRng::seed_from_u64(seed),
            now: 0.0,
            snap_a: Vec::new(),
            snap_b: Vec::new(),
        }
    }

    fn hold(&self, hold_steps: u8, far: bool) -> f64 {
        if hold_steps == 0 {
            f64::INFINITY
        } else if far {
            self.now + 1.0e6 + hold_steps as f64 * 0.5
        } else {
            self.now + hold_steps as f64 * 0.5
        }
    }

    fn check(&mut self, step: usize) {
        self.wheel.snapshot_into(&mut self.snap_a);
        self.legacy.snapshot_into(&mut self.snap_b);
        prop_assert_eq!(&self.snap_a, &self.snap_b, "snapshot at step {}", step);
        prop_assert_eq!(self.wheel.ids(), self.legacy.ids(), "ids at step {}", step);
        prop_assert_eq!(self.wheel.next_departure(), self.legacy.next_departure());
        prop_assert_eq!(self.wheel.len(), self.legacy.len());
        prop_assert_eq!(self.wheel.admitted_total(), self.legacy.admitted_total());
        prop_assert_eq!(self.wheel.departed_total(), self.legacy.departed_total());
        prop_assert_eq!(
            self.wheel.admitted_total() - self.wheel.departed_total(),
            self.wheel.len() as u64,
            "conservation at step {}",
            step
        );
    }
}

fn run_schedule(batched: bool, seed: u64, ops: &[Op]) {
    let rcbr = RcbrModel::new(RcbrConfig::paper_default(1.0));
    let ar1 = Ar1Model::new(Ar1Config {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        tick: 0.05,
        clamp_at_zero: true,
    });
    let mut h = Harness::new(batched, seed);
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Admit {
                which,
                hold_steps,
                far,
            } => {
                let model: &dyn SourceModel = if which == 0 { &rcbr } else { &ar1 };
                let departs = h.hold(hold_steps, far);
                let id_a = h.wheel.admit(model, departs, &mut h.rng_a);
                let id_b = h.legacy.admit(model, departs, &mut h.rng_b);
                prop_assert_eq!(id_a, id_b);
            }
            Op::AdmitBoxed { hold_steps } => {
                let departs = h.hold(hold_steps, false);
                let proc_a = rcbr.spawn(&mut h.rng_a);
                let proc_b = rcbr.spawn(&mut h.rng_b);
                let id_a = h.wheel.admit_process(proc_a, departs);
                let id_b = h.legacy.admit_process(proc_b, departs);
                prop_assert_eq!(id_a, id_b);
            }
            Op::Advance { steps } => {
                h.now += steps as f64 * 0.5;
                h.wheel.advance_to(h.now, &mut h.rng_a);
                h.legacy.advance_to(h.now, &mut h.rng_b);
            }
            Op::Depart { steps } => {
                let until = h.now + steps as f64 * 0.5;
                let gone_a = h.wheel.depart_until(until);
                let gone_b = h.legacy.depart_until(until);
                prop_assert_eq!(gone_a, gone_b, "departure count at step {}", step);
            }
            Op::FusedTick { steps } => {
                h.now += steps as f64 * 0.5;
                let pivot = 1.0 + (step % 7) as f64 * 0.01;
                let mom_a = h.wheel.advance_depart_measure(h.now, &mut h.rng_a, pivot);
                let mom_b = h.legacy.advance_depart_measure(h.now, &mut h.rng_b, pivot);
                prop_assert_eq!(mom_a, mom_b, "moments at step {}", step);
            }
        }
        h.check(step);
    }
    // Final bulk drain (now + 2e6 clears the far-future entries too,
    // leaving only INFINITY holds), then prove the RNG streams never
    // diverged.
    let gone_a = h.wheel.depart_until(h.now + 2.0e6);
    let gone_b = h.legacy.depart_until(h.now + 2.0e6);
    prop_assert_eq!(gone_a, gone_b, "drain departure count");
    h.check(usize::MAX);
    prop_assert_eq!(h.rng_a.gen::<u64>(), h.rng_b.gen::<u64>(), "RNG stream");
}

proptest! {
    /// Batched engine: wheel ≡ legacy bit-for-bit on random schedules.
    #[test]
    fn wheel_matches_reference_batched(
        seed in 0u64..1_000_000,
        ops in collection::vec(OpStrategy, 1..80),
    ) {
        run_schedule(true, seed, &ops);
    }

    /// Unbatched (boxed) engine: same contract.
    #[test]
    fn wheel_matches_reference_unbatched(
        seed in 0u64..1_000_000,
        ops in collection::vec(OpStrategy, 1..80),
    ) {
        run_schedule(false, seed, &ops);
    }
}
