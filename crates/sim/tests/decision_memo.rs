//! Regression suite for the O(1) decision memo: the memoized
//! admissible count must be the *identical* f64 the policy quadratic
//! would return — across memo-cold vs memo-hot calls, across memo
//! eviction and re-entry, and across the `KernelDispatch` scalar/wide
//! kernel twins feeding the estimator. A memo that returned a
//! recomputed-but-rounded value would silently break the serve plane's
//! byte-identical invariance contract.

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_num::KernelDispatch;
use mbac_sim::{AdmissionEngine, FlowTable, MbacController};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn controller() -> MbacController {
    MbacController::new(
        Box::new(FilteredEstimator::new(2.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    )
}

fn model() -> Ar1Model {
    Ar1Model::new(Ar1Config {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        tick: 0.05,
        clamp_at_zero: true,
    })
}

/// Evolves an AR(1) population for `ticks` measurement ticks and, after
/// each observation, queries the admissible count twice (memo-cold:
/// the estimate just changed; memo-hot: identical key). Returns the
/// `(cold, hot)` bit patterns per tick.
fn run_ticks(ticks: usize, capacity: f64) -> Vec<(u64, u64)> {
    let m = model();
    let mut rng = StdRng::seed_from_u64(99);
    let mut table = FlowTable::new();
    for _ in 0..40 {
        table.admit(&m, f64::INFINITY, &mut rng);
    }
    let mut ctl = controller();
    let mut out = Vec::with_capacity(ticks);
    for step in 1..=ticks {
        let t = step as f64 * 0.1;
        if ctl.supports_moments() {
            let mom = table.advance_depart_measure(t, &mut rng, ctl.moment_pivot());
            ctl.observe_moments(t, &mom);
        } else {
            let mut snap = Vec::new();
            table.advance_to(t, &mut rng);
            table.depart_until(t);
            table.snapshot_into(&mut snap);
            MbacController::observe(&mut ctl, t, &snap);
        }
        let cold = MbacController::admissible_count(&ctl, capacity).unwrap();
        let hot = MbacController::admissible_count(&ctl, capacity).unwrap();
        out.push((cold.to_bits(), hot.to_bits()));
    }
    out
}

/// Memo-hot answers are bit-identical to the memo-cold computation
/// they cached, at every tick.
#[test]
fn memo_hot_is_bit_identical_to_cold() {
    for (step, (cold, hot)) in run_ticks(150, 50.0).into_iter().enumerate() {
        assert_eq!(cold, hot, "memo hit diverged at tick {step}");
    }
}

/// The same `(mean, var, capacity)` key yields bit-identical decisions
/// under the scalar and wide kernel dispatches: the estimator inputs
/// are dispatch twins, so the memoized decision stream must be too.
#[test]
fn decisions_are_bit_identical_across_dispatch() {
    let prev = KernelDispatch::set_global(KernelDispatch::Scalar);
    let scalar = run_ticks(150, 50.0);
    KernelDispatch::set_global(KernelDispatch::Wide);
    let wide = run_ticks(150, 50.0);
    KernelDispatch::set_global(prev);
    assert_eq!(scalar.len(), wide.len());
    for (step, (s, w)) in scalar.into_iter().zip(wide).enumerate() {
        assert_eq!(s, w, "scalar/wide decision diverged at tick {step}");
    }
}

/// The memo holds one entry: cycling capacities evicts it, and
/// re-asking the first capacity recomputes the quadratic — which must
/// land on the identical bits the first (memoized) answer had.
#[test]
fn memo_eviction_and_recompute_are_bit_stable() {
    let m = model();
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = FlowTable::new();
    for _ in 0..30 {
        table.admit(&m, f64::INFINITY, &mut rng);
    }
    let mut ctl = controller();
    let mut snap = Vec::new();
    for step in 1..=60 {
        let t = step as f64 * 0.1;
        table.advance_to(t, &mut rng);
        table.snapshot_into(&mut snap);
        MbacController::observe(&mut ctl, t, &snap);
        let first = MbacController::admissible_count(&ctl, 50.0).unwrap();
        // Evict the (μ̂, σ̂², 50) entry with a different capacity...
        let other = MbacController::admissible_count(&ctl, 60.0).unwrap();
        assert!(other > first, "more capacity must admit more flows");
        // ...then the recomputed quadratic must reproduce the bits.
        let again = MbacController::admissible_count(&ctl, 50.0).unwrap();
        assert_eq!(
            first.to_bits(),
            again.to_bits(),
            "recompute diverged from memo at tick {step}"
        );
    }
}
