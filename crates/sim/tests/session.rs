//! Property tests on the session pipeline's determinism contract: the
//! worker count and the flow-engine choice are performance knobs, never
//! semantic ones. Any configuration must produce byte-identical reports
//! and merged metric snapshots through the builder, on either path.

use mbac_core::admission::CertaintyEquivalent;
use mbac_sim::{Engine, ImpulsiveConfig, ImpulsiveLoad, MetricsMode, SessionBuilder};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use proptest::prelude::*;

fn rcbr() -> RcbrModel {
    RcbrModel::new(RcbrConfig {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        truncate_at_zero: true,
    })
}

fn small_cfg(seed: u64, replications: usize, finite_holding: bool) -> ImpulsiveConfig {
    ImpulsiveConfig {
        capacity: 60.0,
        estimation_flows: 60,
        mean_holding: finite_holding.then_some(15.0),
        observe_times: vec![0.5, 2.0, 8.0],
        replications,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same scenario, any worker count, either engine: the report and
    /// the merged snapshot are byte-identical to the 1-worker batched
    /// reference run.
    #[test]
    fn report_and_metrics_invariant_under_workers_and_engine(
        seed in 0u64..1_000_000,
        workers in 1usize..8,
        boxed in 0u8..2,
        finite_holding in 0u8..2,
        replications in 1usize..24,
    ) {
        let (boxed, finite_holding) = (boxed == 1, finite_holding == 1);
        let model = rcbr();
        let policy = CertaintyEquivalent::from_probability(1e-2);
        let cfg = small_cfg(seed, replications, finite_holding);
        let scenario = ImpulsiveLoad::new(&cfg, &model, &policy);

        let (reference, reference_snap) = SessionBuilder::new()
            .workers(1)
            .metrics(MetricsMode::Enabled)
            .run_metered(&scenario)
            .unwrap();

        let engine = if boxed { Engine::Boxed } else { Engine::Batched };
        let (report, snap) = SessionBuilder::new()
            .workers(workers)
            .engine(engine)
            .metrics(MetricsMode::Enabled)
            .run_metered(&scenario)
            .unwrap();

        prop_assert_eq!(
            format!("{reference:?}"),
            format!("{report:?}"),
            "report diverged at workers={}, engine={}", workers, engine
        );
        prop_assert_eq!(
            reference_snap.to_json(),
            snap.to_json(),
            "metrics diverged at workers={}, engine={}", workers, engine
        );
    }

    /// The sequential path is the same computation as the parallel one:
    /// `run_local` agrees byte-for-byte with `run` at any worker count.
    #[test]
    fn local_and_parallel_paths_agree(
        seed in 0u64..1_000_000,
        workers in 2usize..8,
    ) {
        let model = rcbr();
        let policy = CertaintyEquivalent::from_probability(1e-2);
        let cfg = small_cfg(seed, 8, true);
        let scenario = ImpulsiveLoad::new(&cfg, &model, &policy);

        let sequential = SessionBuilder::new().run_local(&scenario).unwrap();
        let parallel = SessionBuilder::new()
            .workers(workers)
            .run(&scenario)
            .unwrap();

        prop_assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
    }

    /// Metrics collection never perturbs the scientific result: the
    /// report is byte-identical with the sink disabled, enabled, or
    /// enabled with timing.
    #[test]
    fn metrics_mode_never_perturbs_the_report(
        seed in 0u64..1_000_000,
        workers in 1usize..5,
    ) {
        let model = rcbr();
        let policy = CertaintyEquivalent::from_probability(1e-2);
        let cfg = small_cfg(seed, 6, true);
        let scenario = ImpulsiveLoad::new(&cfg, &model, &policy);

        let run_with = |mode: MetricsMode| {
            let (report, _) = SessionBuilder::new()
                .workers(workers)
                .metrics(mode)
                .run_metered(&scenario)
                .unwrap();
            format!("{report:?}")
        };

        let off = run_with(MetricsMode::Disabled);
        prop_assert_eq!(&off, &run_with(MetricsMode::Enabled));
        prop_assert_eq!(&off, &run_with(MetricsMode::EnabledWithTiming));
    }
}
