//! Rollback edge cases for multi-hop path admission: a flow reserved at
//! hops `1..k` and rejected at hop `k+1` must leave every hop's
//! occupancy *and* every hop controller's decision memo bit-identical
//! to never having asked. The serve plane's byte-invariance contract
//! leans on this — a rollback that perturbed the memo (or leaked a
//! provisional occupancy increment) would make decision bytes depend on
//! how many rejected attempts happened to precede a request. Mirrors
//! `decision_memo.rs`: memo-cold, memo-hot, and evicted variants.

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_core::topology::{LinkId, PathAdmission, RouteId, Topology};
use mbac_sim::{FlowTable, MbacController};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn controller() -> MbacController {
    MbacController::new(
        Box::new(FilteredEstimator::new(2.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    )
}

fn model() -> Ar1Model {
    Ar1Model::new(Ar1Config {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        tick: 0.05,
        clamp_at_zero: true,
    })
}

/// Two wide hops feeding a bottleneck: hops 0 and 1 accept (capacity 50
/// against ~40 flows), hop 2 rejects every time (capacity 2 against the
/// same population), so `decide` always reserves twice and rolls back.
fn bottleneck() -> Topology {
    Topology::new(
        vec![50.0, 50.0, 2.0],
        vec![vec![LinkId(0), LinkId(1), LinkId(2)]],
    )
    .unwrap()
}

/// One observed controller per link plus the measured occupancies —
/// deterministic in `seed`, so calling it twice yields bit-identical
/// twins (one set to path-ask, one set to leave alone).
fn observed_controllers(
    topology: &Topology,
    seed: u64,
    ticks: usize,
) -> (Vec<MbacController>, Vec<u32>) {
    let m = model();
    let mut ctls = Vec::new();
    let mut occupancies = Vec::new();
    for link in topology.link_ids() {
        let mut rng = StdRng::seed_from_u64(seed ^ link.as_u64());
        let mut table = FlowTable::new();
        for _ in 0..40 {
            table.admit(&m, f64::INFINITY, &mut rng);
        }
        let mut ctl = controller();
        let mut snap = Vec::new();
        for step in 1..=ticks {
            let t = step as f64 * 0.1;
            table.advance_to(t, &mut rng);
            table.snapshot_into(&mut snap);
            MbacController::observe(&mut ctl, t, &snap);
        }
        occupancies.push(table.len() as u32);
        ctls.push(ctl);
    }
    (ctls, occupancies)
}

/// The admissible-count bit patterns of every hop at its own capacity.
fn memo_bits(topology: &Topology, ctls: &[MbacController]) -> Vec<Option<u64>> {
    topology
        .link_ids()
        .map(|link| {
            MbacController::admissible_count(&ctls[link.index()], topology.capacity(link))
                .map(f64::to_bits)
        })
        .collect()
}

/// Runs one rejected path attempt and asserts it left no trace: the
/// shared skeleton of the memo-cold/hot/evicted variants. `prepare` is
/// applied identically to the asked set and the never-asked twins
/// before the attempt, setting up the desired memo state.
fn assert_rejection_leaves_no_trace(prepare: impl Fn(&Topology, &[MbacController])) {
    let topology = bottleneck();
    let (ctls, measured) = observed_controllers(&topology, 17, 80);
    let (twins, twin_measured) = observed_controllers(&topology, 17, 80);
    assert_eq!(measured, twin_measured, "twin populations diverged");

    prepare(&topology, &ctls);
    prepare(&topology, &twins);

    let mut path = PathAdmission::for_topology(&topology);
    for link in topology.link_ids() {
        path.sync(link, measured[link.index()]);
    }
    let before: Vec<u32> = topology.link_ids().map(|l| path.occupancy(l)).collect();

    let decision = path.decide(&topology, RouteId(0), &mut |link: LinkId, c: f64| {
        MbacController::admissible_count(&ctls[link.index()], c)
    });

    // Hops 0 and 1 were reserved, hop 2 rejected, everything rolled back.
    assert!(!decision.admit);
    assert_eq!(decision.reject_hop, Some(2));
    for (k, report) in decision.hops.iter().enumerate() {
        assert_eq!(
            report.occupancy, before[k],
            "hop {k} report must show the restored (pre-ask) occupancy"
        );
    }
    for link in topology.link_ids() {
        assert_eq!(
            path.occupancy(link),
            before[link.index()],
            "{link} occupancy changed across a rejected attempt"
        );
    }
    // The asked controllers answer with the exact bits of twins that
    // were never path-asked — the memo carries no trace of the attempt.
    assert_eq!(
        memo_bits(&topology, &ctls),
        memo_bits(&topology, &twins),
        "a rejected path attempt perturbed the decision memo"
    );
}

/// Memo-cold: the attempt is the first admissible-count query after the
/// last observation, so `decide` itself populates the memo. The
/// post-rollback bits must equal a never-asked twin's first query.
#[test]
fn rejected_path_leaves_cold_memo_bit_identical() {
    assert_rejection_leaves_no_trace(|_, _| {});
}

/// Memo-hot: every hop's memo is pre-warmed at its own capacity, so
/// `decide` hits the memo at each hop. The hit must not dirty it.
#[test]
fn rejected_path_leaves_hot_memo_bit_identical() {
    assert_rejection_leaves_no_trace(|topology, ctls| {
        for link in topology.link_ids() {
            let _ = MbacController::admissible_count(&ctls[link.index()], topology.capacity(link));
        }
    });
}

/// Evicted: the memo holds one entry; warming at the hop capacity and
/// then querying a different one evicts it, so `decide` recomputes the
/// quadratic at each hop. The recompute-after-rollback must still land
/// on the twin's bits.
#[test]
fn rejected_path_recomputes_evicted_memo_bit_identically() {
    assert_rejection_leaves_no_trace(|topology, ctls| {
        for link in topology.link_ids() {
            let c = topology.capacity(link);
            let _ = MbacController::admissible_count(&ctls[link.index()], c);
            let _ = MbacController::admissible_count(&ctls[link.index()], c + 7.0);
        }
    });
}

/// Interleaved admits and rejects on a parking lot: after every rejected
/// attempt the occupancy vector equals its pre-ask value, after every
/// admit it grows by exactly one on the route's hops and nowhere else —
/// and the tight capacity forces both outcomes to occur.
#[test]
fn interleaved_attempts_account_occupancy_exactly() {
    let topology = Topology::parking_lot(3, 45.0);
    let (ctls, measured) = observed_controllers(&topology, 5, 80);
    let mut path = PathAdmission::for_topology(&topology);
    for link in topology.link_ids() {
        path.sync(link, measured[link.index()]);
    }
    let mut admits = 0usize;
    let mut rejects = 0usize;
    for attempt in 0..40 {
        let route = RouteId((attempt % topology.routes()) as u32);
        let before: Vec<u32> = topology.link_ids().map(|l| path.occupancy(l)).collect();
        let decision = path.decide(&topology, route, &mut |link: LinkId, c: f64| {
            MbacController::admissible_count(&ctls[link.index()], c)
        });
        for link in topology.link_ids() {
            let expected = if decision.admit && topology.hop_index(route, link).is_some() {
                before[link.index()] + 1
            } else {
                before[link.index()]
            };
            assert_eq!(
                path.occupancy(link),
                expected,
                "attempt {attempt} on {route}: {link} occupancy drifted"
            );
        }
        if decision.admit {
            admits += 1;
        } else {
            rejects += 1;
        }
    }
    assert!(admits > 0, "capacity 45 against 40 flows must admit some");
    assert!(rejects > 0, "the filling lot must eventually reject");
}
