//! The flow table: admitted flows grouped into batched rate engines,
//! plus lifecycle bookkeeping.
//!
//! Holds the admitted flows, advances their bandwidth processes in
//! lock-step, applies departures, and produces the per-flow snapshots
//! the estimators consume. Conservation (`admitted − departed =
//! in-system`) is tracked and asserted by the property tests.
//!
//! Flows are stored in [`FlowBatch`] groups keyed by
//! [`SourceModel::batch_key`]: homogeneous flows share a
//! struct-of-arrays kernel that advances all of them in one pass and
//! leaves a cached rate vector, while heterogeneous or pre-spawned
//! processes fall back to a boxed group with identical semantics (see
//! `mbac_traffic::batch`).
//!
//! Departures go through a hierarchical timing wheel (the
//! [`crate::calendar`] module): `admit` schedules the flow's departure
//! in O(1), a tick pops only the expiring buckets, and `next_departure`
//! reads the earliest non-empty bucket — so a departing tick costs
//! O(departures popped), never O(flows in system). Because the batch
//! kernels compact with `swap_remove`, the wheel stores stable flow
//! *handles* resolved through a slot map whose back-pointers are
//! patched on every swap; the popped set is then applied in a canonical
//! order (group, then slot, replaying the exact `swap_remove` sequence
//! of the pre-wheel scan — see [`crate::reference`]) so the surviving
//! slot permutation, and with it every snapshot, is bit-identical to
//! the legacy table's. Departures consume no randomness, so the RNG
//! stream is untouched by construction.
//!
//! Batched and unbatched tables consume the RNG identically (the
//! kernels' documented stream contract), so [`FlowTable::new`] and
//! [`FlowTable::new_unbatched`] produce bit-identical simulations for a
//! fixed seed; the equivalence tests below assert this, and the
//! `tests/churn.rs` proptests assert bit-equality against the frozen
//! reference table at every step of randomized schedules.

use crate::calendar::{CalendarEntry, DepartureCalendar};
use mbac_num::RateMoments;
use mbac_traffic::batch::{BatchKey, DynBatch, FlowBatch};
use mbac_traffic::process::{RateProcess, SourceModel};
use rand::rngs::StdRng;

/// Lifecycle bookkeeping for one flow; slot-parallel to its batch.
#[derive(Debug, Clone, Copy)]
struct FlowMeta {
    id: u64,
    /// Absolute departure time.
    departs_at: f64,
}

/// Where a flow currently lives: group index and slot within it. The
/// calendar's stable handle indexes into the slot map, which is kept
/// current as `swap_remove` relocates slots.
#[derive(Debug, Clone, Copy)]
struct SlotRef {
    group: u32,
    slot: u32,
}

/// One group of flows sharing a batched kernel (or the boxed fallback).
struct BatchGroup {
    /// `None` marks the boxed fallback group.
    key: Option<BatchKey>,
    batch: Box<dyn FlowBatch>,
    /// Slot-parallel metadata, reordered in lock-step with the batch.
    meta: Vec<FlowMeta>,
    /// Slot-parallel stable handles into the owner's slot map.
    handles: Vec<u32>,
}

/// The set of flows currently in the system.
pub struct FlowTable {
    groups: Vec<BatchGroup>,
    /// Route flows into specialized kernels when the model offers one.
    batching: bool,
    /// Flows currently in the system (sum of group lengths).
    count: usize,
    next_id: u64,
    admitted_total: u64,
    departed_total: u64,
    /// Time up to which all processes have been advanced.
    advanced_to: f64,
    /// Exact `min(departs_at)` over the live flows; `INFINITY` when
    /// empty or when every live flow holds forever. Kept exact: admits
    /// fold in O(1), departures re-read the calendar's earliest bucket.
    min_departure: f64,
    /// The departure calendar (finite departure times only; flows with
    /// `INFINITY` holds can never expire and are not scheduled).
    calendar: DepartureCalendar,
    /// Stable handle → current location; entries of freed handles are
    /// stale until reused.
    slots: Vec<SlotRef>,
    /// Freed handles, reused LIFO (deterministic).
    free: Vec<u32>,
    /// Scratch: entries popped by the current `depart_until`.
    expired: Vec<CalendarEntry>,
    /// Scratch: popped entries resolved to (group, slot), then sorted
    /// into the canonical expiry order.
    expiry_locs: Vec<(u32, u32)>,
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowTable {
    /// Creates an empty table using batched kernels where available.
    pub fn new() -> Self {
        FlowTable {
            groups: Vec::new(),
            batching: true,
            count: 0,
            next_id: 0,
            admitted_total: 0,
            departed_total: 0,
            advanced_to: 0.0,
            min_departure: f64::INFINITY,
            calendar: DepartureCalendar::new(),
            slots: Vec::new(),
            free: Vec::new(),
            expired: Vec::new(),
            expiry_locs: Vec::new(),
        }
    }

    /// Creates an empty table that keeps every flow on the boxed
    /// fallback path — the reference engine for equivalence tests and
    /// A/B benchmarks.
    pub fn new_unbatched() -> Self {
        FlowTable {
            batching: false,
            ..Self::new()
        }
    }

    /// Whether this table routes flows into batched kernels (`true` for
    /// [`FlowTable::new`], `false` for [`FlowTable::new_unbatched`]).
    pub fn is_batched(&self) -> bool {
        self.batching
    }

    /// Number of flows currently in the system (the paper's `N_t`).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total flows ever admitted.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Total flows ever departed.
    pub fn departed_total(&self) -> u64 {
        self.departed_total
    }

    fn register(&mut self, group: usize, departs_at: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.admitted_total += 1;
        self.count += 1;
        let g = &mut self.groups[group];
        let location = SlotRef {
            group: group as u32,
            slot: g.meta.len() as u32,
        };
        let handle = match self.free.pop() {
            Some(h) => {
                self.slots[h as usize] = location;
                h
            }
            None => {
                let h = self.slots.len() as u32;
                self.slots.push(location);
                h
            }
        };
        g.meta.push(FlowMeta { id, departs_at });
        g.handles.push(handle);
        if departs_at.is_finite() {
            self.calendar.schedule(handle, departs_at);
        }
        self.min_departure = self.min_departure.min(departs_at);
        id
    }

    fn fallback_group(&mut self) -> usize {
        match self.groups.iter().position(|g| g.key.is_none()) {
            Some(i) => i,
            None => {
                self.groups.push(BatchGroup {
                    key: None,
                    batch: Box::new(DynBatch::new()),
                    meta: Vec::new(),
                    handles: Vec::new(),
                });
                self.groups.len() - 1
            }
        }
    }

    /// Admits a new flow spawned from `model`, departing at absolute
    /// time `departs_at`. O(1) (plus the kernel's spawn). Returns the
    /// flow id.
    pub fn admit(&mut self, model: &dyn SourceModel, departs_at: f64, rng: &mut StdRng) -> u64 {
        let group = match self.batching.then(|| model.batch_key()).flatten() {
            Some(key) => match self.groups.iter().position(|g| g.key == Some(key)) {
                Some(i) => i,
                None => {
                    let batch = model
                        .new_batch()
                        .expect("batch_key() implies new_batch() (see SourceModel docs)");
                    self.groups.push(BatchGroup {
                        key: Some(key),
                        batch,
                        meta: Vec::new(),
                        handles: Vec::new(),
                    });
                    self.groups.len() - 1
                }
            },
            None => self.fallback_group(),
        };
        if self.groups[group].key.is_some() {
            self.groups[group].batch.spawn_one(rng);
        } else {
            let process = model.spawn(rng);
            self.groups[group]
                .batch
                .try_push_boxed(process)
                .ok()
                .expect("fallback group accepts boxed processes");
        }
        self.register(group, departs_at)
    }

    /// Admits a flow whose rate process already exists (used by the
    /// impulsive-load harness, where the *measured* candidate processes
    /// are the ones admitted). Always lands in the boxed fallback
    /// group. Returns the flow id.
    pub fn admit_process(&mut self, process: Box<dyn RateProcess>, departs_at: f64) -> u64 {
        let group = self.fallback_group();
        self.groups[group]
            .batch
            .try_push_boxed(process)
            .ok()
            .expect("fallback group accepts boxed processes");
        self.register(group, departs_at)
    }

    /// Advances every flow's bandwidth process to absolute time `t`.
    pub fn advance_to(&mut self, t: f64, rng: &mut StdRng) {
        let dt = t - self.advanced_to;
        assert!(
            dt >= -1e-9,
            "cannot advance flows backwards ({t} < {})",
            self.advanced_to
        );
        if dt > 0.0 {
            for g in &mut self.groups {
                g.batch.advance_all(dt, rng);
            }
            self.advanced_to = t;
        }
    }

    /// Replays, for one group, the exact `swap_remove` sequence the
    /// legacy while-loop scan would have produced for the expiring slot
    /// set `exp` (ascending `(group, slot)` pairs, all in this group) —
    /// without visiting any surviving slot.
    ///
    /// The legacy scan (`crate::reference`) walks `i` upward and, on
    /// expiry, swap-removes without advancing `i`, re-examining the
    /// element swapped in from the tail. Two facts make an
    /// O(expiring) replay possible: a destination slot is always
    /// strictly below the current length, so tail *sources* are never
    /// former destinations and still hold their original elements; and
    /// source positions strictly descend, so one reverse pointer into
    /// the sorted expiring set answers every "does the tail element
    /// expire too?" membership query.
    fn apply_expirations(
        g: &mut BatchGroup,
        exp: &[(u32, u32)],
        t: f64,
        slots: &mut [SlotRef],
        free: &mut Vec<u32>,
    ) {
        let mut live = g.meta.len();
        // Reverse membership pointer: exp[hi..] are expiring slots
        // already consumed from the tail (or about to be checked).
        let mut hi = exp.len();
        for &(_, slot) in exp {
            let e = slot as usize;
            if e >= live {
                // Already consumed as a tail source below.
                break;
            }
            loop {
                debug_assert!(g.meta[e].departs_at <= t, "removing a non-expired slot");
                free.push(g.handles[e]);
                g.meta.swap_remove(e);
                g.handles.swap_remove(e);
                g.batch.swap_remove(e);
                live -= 1;
                if e == live {
                    // Removed the last element; nothing swapped in.
                    break;
                }
                // The element from original slot `live` now sits at
                // `e`. If it expires too, the legacy scan removes it
                // in place on the next pass of its while-loop.
                while hi > 0 && exp[hi - 1].1 as usize > live {
                    hi -= 1;
                }
                if hi > 0 && exp[hi - 1].1 as usize == live {
                    hi -= 1;
                    continue;
                }
                // A survivor moved into `e`: patch its back-pointer.
                slots[g.handles[e] as usize].slot = e as u32;
                break;
            }
        }
    }

    /// Removes every flow whose departure time is ≤ `t`. Returns how
    /// many departed. O(1) when no departure is pending (the common
    /// case, via the exact cached minimum), O(departures popped)
    /// otherwise — the calendar pops only expired buckets and the
    /// canonical-order replay touches only expiring slots, so the cost
    /// never scales with the flows in system.
    pub fn depart_until(&mut self, t: f64) -> usize {
        if self.min_departure > t {
            return 0;
        }
        self.expired.clear();
        self.calendar.pop_until(t, &mut self.expired);
        let gone = self.expired.len();
        debug_assert!(gone > 0, "exact minimum {} <= {t}", self.min_departure);
        {
            // Resolve handles to their current locations, then order
            // canonically: group, then slot — the order the legacy
            // scan encounters them in.
            let slots = &self.slots;
            let locs = &mut self.expiry_locs;
            locs.clear();
            locs.extend(self.expired.iter().map(|e| {
                let s = slots[e.handle as usize];
                (s.group, s.slot)
            }));
            locs.sort_unstable();
        }
        let mut start = 0;
        while start < self.expiry_locs.len() {
            let group = self.expiry_locs[start].0;
            let mut end = start + 1;
            while end < self.expiry_locs.len() && self.expiry_locs[end].0 == group {
                end += 1;
            }
            Self::apply_expirations(
                &mut self.groups[group as usize],
                &self.expiry_locs[start..end],
                t,
                &mut self.slots,
                &mut self.free,
            );
            start = end;
        }
        self.count -= gone;
        self.departed_total += gone as u64;
        // The new exact minimum: the earliest non-empty bucket's fold
        // (`INFINITY` when only never-departing flows remain — the
        // same value the legacy whole-table fold produced).
        self.min_departure = self.calendar.peek_min();
        debug_assert!(self.min_departure > t);
        gone
    }

    /// Fused measurement tick: advances every flow to absolute time `t`,
    /// applies departures, and reduces the surviving flows' rates into a
    /// [`RateMoments`] centered on `pivot` — equivalent to
    /// [`FlowTable::advance_to`] + [`FlowTable::depart_until`] +
    /// folding the [`FlowTable::snapshot_into`] slice, but in a single
    /// sweep over the flow state in the common case (no departure
    /// pending, checked against the exact cached minimum in O(1)).
    ///
    /// The moments fold the rates in the exact snapshot order (group
    /// order, slot order), so the derived mean is bit-identical to the
    /// slice path's and the RNG stream is untouched by the fusion.
    pub fn advance_depart_measure(&mut self, t: f64, rng: &mut StdRng, pivot: f64) -> RateMoments {
        let mut mom = RateMoments::new(pivot);
        let dt = t - self.advanced_to;
        assert!(
            dt >= -1e-9,
            "cannot advance flows backwards ({t} < {})",
            self.advanced_to
        );
        if self.min_departure > t && dt > 0.0 {
            for g in &mut self.groups {
                g.batch.advance_and_measure(dt, rng, &mut mom);
            }
            self.advanced_to = t;
        } else {
            // A departure interleaves (or time stands still): run the
            // unfused sequence, then reduce the cached rates in the
            // same order a snapshot would list them.
            self.advance_to(t, rng);
            self.depart_until(t);
            for g in &self.groups {
                mom.add_slice(g.batch.rates());
            }
        }
        mom
    }

    /// The earliest pending departure time, if any.
    pub fn next_departure(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min_departure)
    }

    /// Sum of the instantaneous rates (the aggregate load `S_t`), read
    /// from the batches' cached rate vectors.
    ///
    /// Note the fold shape: per-group partial sums, then a sum of
    /// groups — *not* the flat flow-order fold `RateMoments::sum`
    /// produces. The two differ bitwise once a table holds more than
    /// one group, which is why multi-group callers (the impulsive
    /// harness) keep this method instead of reusing a fused tick's
    /// moments.
    pub fn aggregate_rate(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.batch.rates().iter().sum::<f64>())
            .sum()
    }

    /// Writes the per-flow instantaneous rates into `out` (cleared
    /// first). The estimator snapshot of eqn (23). Reserves the full
    /// flow count up front so large-N snapshots never reallocate while
    /// crossing groups.
    pub fn snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.count);
        for g in &self.groups {
            out.extend_from_slice(g.batch.rates());
        }
    }

    /// Ids of the flows currently in the system (test/diagnostic aid).
    pub fn ids(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.count);
        out.extend(self.groups.iter().flat_map(|g| g.meta.iter().map(|m| m.id)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceFlowTable;
    use mbac_traffic::ar1::{Ar1Config, Ar1Model};
    use mbac_traffic::markov::{MarkovFluidFactory, MarkovFluidModel};
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    #[test]
    fn admit_and_depart_conserve_counts() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let mut table = FlowTable::new();
        for i in 0..10 {
            table.admit(&m, 10.0 + i as f64, &mut rng);
        }
        assert_eq!(table.len(), 10);
        let gone = table.depart_until(14.5);
        assert_eq!(gone, 5); // departures at 10,11,12,13,14
        assert_eq!(table.len(), 5);
        assert_eq!(
            table.admitted_total() - table.departed_total(),
            table.len() as u64
        );
    }

    #[test]
    fn aggregate_is_sum_of_snapshot() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(2);
        let mut table = FlowTable::new();
        for _ in 0..50 {
            table.admit(&m, f64::INFINITY, &mut rng);
        }
        let mut snap = Vec::new();
        table.snapshot_into(&mut snap);
        assert_eq!(snap.len(), 50);
        let sum: f64 = snap.iter().sum();
        assert!((sum - table.aggregate_rate()).abs() < 1e-9);
    }

    #[test]
    fn advance_moves_all_processes() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(3);
        let mut table = FlowTable::new();
        for _ in 0..20 {
            table.admit(&m, f64::INFINITY, &mut rng);
        }
        let before = table.aggregate_rate();
        table.advance_to(100.0, &mut rng); // ~100 renegotiations each
        let after = table.aggregate_rate();
        assert_ne!(before, after);
    }

    #[test]
    fn next_departure_tracks_minimum() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(4);
        let mut table = FlowTable::new();
        assert!(table.next_departure().is_none());
        table.admit(&m, 7.0, &mut rng);
        table.admit(&m, 3.0, &mut rng);
        table.admit(&m, 9.0, &mut rng);
        assert_eq!(table.next_departure(), Some(3.0));
        table.depart_until(3.0);
        assert_eq!(table.next_departure(), Some(7.0));
    }

    /// Regression test for the exact minimum: interleave admissions and
    /// departures (including several with the same departure time and
    /// admissions that lower the pending minimum) and check the cache
    /// against a brute-force reference at every step.
    #[test]
    fn next_departure_survives_interleaved_admits_and_departs() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(40);
        let mut table = FlowTable::new();
        let mut reference: Vec<(u64, f64)> = Vec::new();

        let check = |table: &FlowTable, reference: &[(u64, f64)]| {
            let want = reference
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::INFINITY, f64::min);
            match table.next_departure() {
                None => assert!(reference.is_empty()),
                Some(got) => assert_eq!(got, want),
            }
            let mut ids: Vec<u64> = reference.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            let mut got_ids = table.ids();
            got_ids.sort_unstable();
            assert_eq!(got_ids, ids);
        };

        // Deterministic but irregular schedule of admits/departs.
        let departure_times = [7.0, 3.0, 3.0, 9.0, 1.5, 12.0, 2.5, 2.5, 8.0, 4.0, 11.0, 0.5];
        let mut now = 0.0;
        for (k, &d) in departure_times.iter().enumerate() {
            let id = table.admit(&m, now + d, &mut rng);
            reference.push((id, now + d));
            check(&table, &reference);
            if k % 3 == 2 {
                now += 2.0;
                table.advance_to(now, &mut rng);
                table.depart_until(now);
                reference.retain(|&(_, t)| t > now);
                check(&table, &reference);
            }
        }
        // Drain everything.
        now += 100.0;
        table.depart_until(now);
        reference.retain(|&(_, t)| t > now);
        check(&table, &reference);
        assert!(table.is_empty());
        assert_eq!(table.admitted_total(), departure_times.len() as u64);
        assert_eq!(table.departed_total(), departure_times.len() as u64);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(5);
        let mut table = FlowTable::new();
        for _ in 0..5 {
            table.admit(&m, f64::INFINITY, &mut rng);
        }
        let ids = table.ids();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    /// The fused measurement tick must be bit-identical to the unfused
    /// advance → depart → snapshot sequence — same snapshots, same
    /// moments, same RNG stream — through admissions and departures
    /// (which force its fallback branch) on both engines.
    #[test]
    fn fused_tick_matches_unfused_sequence() {
        for make in [FlowTable::new, FlowTable::new_unbatched] {
            let m = Ar1Model::new(Ar1Config {
                mean: 1.0,
                std_dev: 0.3,
                t_c: 1.0,
                tick: 0.05,
                clamp_at_zero: true,
            });
            let mut rng_a = StdRng::seed_from_u64(91);
            let mut rng_b = StdRng::seed_from_u64(91);
            let mut fused = make();
            let mut plain = make();
            let mut snap = Vec::new();
            let mut now = 0.0;
            for step in 0..200 {
                now += 0.1;
                let pivot = 1.0 + 0.001 * (step % 9) as f64;
                let mom = fused.advance_depart_measure(now, &mut rng_a, pivot);
                plain.advance_to(now, &mut rng_b);
                plain.depart_until(now);
                plain.snapshot_into(&mut snap);
                let mut want = RateMoments::new(pivot);
                want.add_slice(&snap);
                assert_eq!(mom, want, "moments diverged at step {step}");
                assert_eq!(fused.len(), plain.len());
                if step % 4 == 0 {
                    let holding = 0.7 + (step % 13) as f64;
                    fused.admit(&m, now + holding, &mut rng_a);
                    plain.admit(&m, now + holding, &mut rng_b);
                }
            }
            assert!(fused.departed_total() > 0, "fallback branch unexercised");
        }
    }

    /// Batched and unbatched tables must yield bit-identical snapshots
    /// for the same seed, through admissions, advances, and departures.
    #[test]
    fn batched_table_is_bit_exact_with_unbatched() {
        for (name, m) in [
            ("rcbr", Box::new(model()) as Box<dyn SourceModel>),
            (
                "ar1",
                Box::new(Ar1Model::new(Ar1Config {
                    mean: 1.0,
                    std_dev: 0.3,
                    t_c: 1.0,
                    tick: 0.05,
                    clamp_at_zero: true,
                })),
            ),
            (
                "markov",
                Box::new(MarkovFluidFactory::new(MarkovFluidModel::on_off(
                    2.0, 1.0, 3.0,
                ))),
            ),
        ] {
            let mut rng_a = StdRng::seed_from_u64(77);
            let mut rng_b = StdRng::seed_from_u64(77);
            let mut batched = FlowTable::new();
            let mut boxed = FlowTable::new_unbatched();
            let mut snap_a = Vec::new();
            let mut snap_b = Vec::new();
            let mut now = 0.0;
            for step in 0..200 {
                now += 0.1;
                batched.advance_to(now, &mut rng_a);
                boxed.advance_to(now, &mut rng_b);
                batched.depart_until(now);
                boxed.depart_until(now);
                if step % 3 == 0 {
                    let holding = 1.0 + (step % 17) as f64;
                    batched.admit(m.as_ref(), now + holding, &mut rng_a);
                    boxed.admit(m.as_ref(), now + holding, &mut rng_b);
                }
                batched.snapshot_into(&mut snap_a);
                boxed.snapshot_into(&mut snap_b);
                assert_eq!(snap_a, snap_b, "{name} diverged at step {step}");
                assert_eq!(batched.len(), boxed.len());
                assert_eq!(batched.next_departure(), boxed.next_departure());
            }
            assert!(batched.admitted_total() > 0 && batched.departed_total() > 0);
        }
    }

    /// The wheel table's headline contract: bit-identical to the frozen
    /// legacy table — snapshots (the exact surviving slot permutation),
    /// `next_departure`, ids, conservation counts, and the RNG stream —
    /// through an irregular schedule with duplicate departure times,
    /// batch departures, admissions into live groups, and `INFINITY`
    /// holds, on both engines. (The randomized version lives in
    /// `tests/churn.rs` as a proptest.)
    #[test]
    fn wheel_table_is_bit_exact_with_reference() {
        for batched in [true, false] {
            let m = model();
            let ar1 = Ar1Model::new(Ar1Config {
                mean: 1.0,
                std_dev: 0.3,
                t_c: 1.0,
                tick: 0.05,
                clamp_at_zero: true,
            });
            let mut rng_a = StdRng::seed_from_u64(123);
            let mut rng_b = StdRng::seed_from_u64(123);
            let mut wheel = if batched {
                FlowTable::new()
            } else {
                FlowTable::new_unbatched()
            };
            let mut legacy = if batched {
                ReferenceFlowTable::new()
            } else {
                ReferenceFlowTable::new_unbatched()
            };
            let mut snap_a = Vec::new();
            let mut snap_b = Vec::new();
            let mut now = 0.0;
            for step in 0..300 {
                now += 0.25;
                // Two source models → two groups on the batched engine,
                // so the canonical (group, slot) order is exercised.
                let (model, hold): (&dyn SourceModel, f64) = if step % 5 == 0 {
                    (&ar1, [1.25, 3.0, 3.0, f64::INFINITY][step % 4])
                } else {
                    (&m, 0.5 + (step % 11) as f64 * 0.75)
                };
                wheel.admit(model, now + hold, &mut rng_a);
                legacy.admit(model, now + hold, &mut rng_b);
                wheel.advance_to(now, &mut rng_a);
                legacy.advance_to(now, &mut rng_b);
                let gone_a = wheel.depart_until(now);
                let gone_b = legacy.depart_until(now);
                assert_eq!(gone_a, gone_b, "departure count at step {step}");
                wheel.snapshot_into(&mut snap_a);
                legacy.snapshot_into(&mut snap_b);
                assert_eq!(snap_a, snap_b, "snapshot diverged at step {step}");
                assert_eq!(wheel.ids(), legacy.ids(), "ids diverged at step {step}");
                assert_eq!(wheel.next_departure(), legacy.next_departure());
                assert_eq!(wheel.len(), legacy.len());
                assert_eq!(wheel.departed_total(), legacy.departed_total());
            }
            assert!(wheel.departed_total() > 100, "schedule too quiet");
            // Drain: a bulk expiry through both tables, then the RNG
            // streams must still be in lock-step.
            wheel.depart_until(now + 1e6);
            legacy.depart_until(now + 1e6);
            assert_eq!(wheel.len(), legacy.len());
            assert_eq!(wheel.next_departure(), legacy.next_departure());
            use rand::Rng as _;
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }
}
