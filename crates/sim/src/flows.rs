//! The flow table: per-flow rate processes plus lifecycle bookkeeping.
//!
//! Holds the admitted flows, advances their bandwidth processes in
//! lock-step, applies departures, and produces the per-flow snapshots
//! the estimators consume. Conservation (`admitted − departed =
//! in-system`) is tracked and asserted by the property tests.

use mbac_traffic::process::{RateProcess, SourceModel};
use rand::RngCore;

/// One admitted flow.
struct Flow {
    id: u64,
    process: Box<dyn RateProcess>,
    /// Absolute departure time.
    departs_at: f64,
}

/// The set of flows currently in the system.
pub struct FlowTable {
    flows: Vec<Flow>,
    next_id: u64,
    admitted_total: u64,
    departed_total: u64,
    /// Time up to which all processes have been advanced.
    advanced_to: f64,
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable {
            flows: Vec::new(),
            next_id: 0,
            admitted_total: 0,
            departed_total: 0,
            advanced_to: 0.0,
        }
    }

    /// Number of flows currently in the system (the paper's `N_t`).
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total flows ever admitted.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Total flows ever departed.
    pub fn departed_total(&self) -> u64 {
        self.departed_total
    }

    /// Admits a new flow spawned from `model`, departing at absolute
    /// time `departs_at`. Returns the flow id.
    pub fn admit(
        &mut self,
        model: &dyn SourceModel,
        departs_at: f64,
        rng: &mut dyn RngCore,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.admitted_total += 1;
        self.flows.push(Flow { id, process: model.spawn(rng), departs_at });
        id
    }

    /// Admits a flow whose rate process already exists (used by the
    /// impulsive-load harness, where the *measured* candidate processes
    /// are the ones admitted). Returns the flow id.
    pub fn admit_process(
        &mut self,
        process: Box<dyn RateProcess>,
        departs_at: f64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.admitted_total += 1;
        self.flows.push(Flow { id, process, departs_at });
        id
    }

    /// Advances every flow's bandwidth process to absolute time `t`.
    pub fn advance_to(&mut self, t: f64, rng: &mut dyn RngCore) {
        let dt = t - self.advanced_to;
        assert!(dt >= -1e-9, "cannot advance flows backwards ({t} < {})", self.advanced_to);
        if dt > 0.0 {
            for f in &mut self.flows {
                f.process.advance(dt, rng);
            }
            self.advanced_to = t;
        }
    }

    /// Removes every flow whose departure time is ≤ `t`. Returns how
    /// many departed.
    pub fn depart_until(&mut self, t: f64) -> usize {
        let before = self.flows.len();
        self.flows.retain(|f| f.departs_at > t);
        let gone = before - self.flows.len();
        self.departed_total += gone as u64;
        gone
    }

    /// The earliest pending departure time, if any.
    pub fn next_departure(&self) -> Option<f64> {
        self.flows.iter().map(|f| f.departs_at).fold(None, |acc, t| match acc {
            None => Some(t),
            Some(a) => Some(a.min(t)),
        })
    }

    /// Sum of the instantaneous rates (the aggregate load `S_t`).
    pub fn aggregate_rate(&self) -> f64 {
        self.flows.iter().map(|f| f.process.rate()).sum()
    }

    /// Writes the per-flow instantaneous rates into `out` (cleared
    /// first). The estimator snapshot of eqn (23).
    pub fn snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.flows.iter().map(|f| f.process.rate()));
    }

    /// Ids of the flows currently in the system (test/diagnostic aid).
    pub fn ids(&self) -> Vec<u64> {
        self.flows.iter().map(|f| f.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    #[test]
    fn admit_and_depart_conserve_counts() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let mut table = FlowTable::new();
        for i in 0..10 {
            table.admit(&m, 10.0 + i as f64, &mut rng);
        }
        assert_eq!(table.len(), 10);
        let gone = table.depart_until(14.5);
        assert_eq!(gone, 5); // departures at 10,11,12,13,14
        assert_eq!(table.len(), 5);
        assert_eq!(
            table.admitted_total() - table.departed_total(),
            table.len() as u64
        );
    }

    #[test]
    fn aggregate_is_sum_of_snapshot() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(2);
        let mut table = FlowTable::new();
        for _ in 0..50 {
            table.admit(&m, f64::INFINITY, &mut rng);
        }
        let mut snap = Vec::new();
        table.snapshot_into(&mut snap);
        assert_eq!(snap.len(), 50);
        let sum: f64 = snap.iter().sum();
        assert!((sum - table.aggregate_rate()).abs() < 1e-9);
    }

    #[test]
    fn advance_moves_all_processes() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(3);
        let mut table = FlowTable::new();
        for _ in 0..20 {
            table.admit(&m, f64::INFINITY, &mut rng);
        }
        let before = table.aggregate_rate();
        table.advance_to(100.0, &mut rng); // ~100 renegotiations each
        let after = table.aggregate_rate();
        assert_ne!(before, after);
    }

    #[test]
    fn next_departure_tracks_minimum() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(4);
        let mut table = FlowTable::new();
        assert!(table.next_departure().is_none());
        table.admit(&m, 7.0, &mut rng);
        table.admit(&m, 3.0, &mut rng);
        table.admit(&m, 9.0, &mut rng);
        assert_eq!(table.next_departure(), Some(3.0));
        table.depart_until(3.0);
        assert_eq!(table.next_departure(), Some(7.0));
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(5);
        let mut table = FlowTable::new();
        for _ in 0..5 {
            table.admit(&m, f64::INFINITY, &mut rng);
        }
        let ids = table.ids();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
