//! Simulation telemetry: the instrument bundle threaded through the
//! runner hot paths, behind a zero-cost disabled mode.
//!
//! [`MetricsSink`] wraps an optional [`SimMetrics`]; every record site
//! in the simulator costs one branch on the `Option` when disabled (the
//! bench guard in `tests/statistical.rs` and `crates/bench` verifies
//! the overhead is unmeasurable). When enabled, the bundle collects:
//!
//! | name | instrument | meaning |
//! |---|---|---|
//! | `sim.ticks` | counter | simulation ticks executed |
//! | `sim.admitted` | counter | flows admitted |
//! | `sim.denied` | counter | admissions withheld by the ramp cap |
//! | `sim.departed` | counter | flows departed |
//! | `sim.rng.exp_draws` | counter | exponential holding-time draws |
//! | `sim.load` | histogram | per-tick aggregate load |
//! | `sim.load_series` | series | downsampled load trajectory |
//! | `engine.occupancy` | histogram | per-tick flow-table occupancy |
//! | `engine.tick_ns` | histogram | wall-clock ns per tick (opt-in) |
//! | `ctl.admissible` | gauge | controller's admissible count |
//! | `ctl.innovation` | histogram | per-observation change in μ̂ |
//!
//! The replication pool additionally exports per-worker accounting (see
//! [`pool_stats_snapshot`]) in the timing-enabled mode:
//!
//! | name | instrument | meaning |
//! |---|---|---|
//! | `pool.calls` | counter | fan-out calls folded in |
//! | `pool.elapsed_ns` | counter | wall time of the fan-out calls |
//! | `pool.worker<i>.items` | counter | replications run by slot *i* |
//! | `pool.worker<i>.own_chunks` | counter | chunks popped from slot *i*'s own deque |
//! | `pool.worker<i>.steals` | counter | chunks slot *i* stole |
//! | `pool.worker<i>.busy_ns` | counter | wall time slot *i* was busy |
//! | `pool.worker<i>.utilization` | gauge | busy / elapsed per call |
//!
//! Wall-clock timing is **off by default** and excluded from snapshots
//! unless explicitly enabled with [`SimMetrics::with_timing`]: timings
//! are machine-dependent, and default snapshots must stay deterministic
//! so that the batched and boxed engines (and any worker count) produce
//! *identical* merged snapshots for the same seed. Pool accounting is
//! timing-gated for the same reason — worker counts and steal patterns
//! are machine facts, not simulation results.

use mbac_metrics::{
    Aggregated, Counter, CounterSnapshot, Gauge, Histogram, MetricValue, MetricsSnapshot,
    TimeSeries,
};
use mbac_num::PoolCallStats;

/// Default point budget for the load trajectory sketch.
const SERIES_CAPACITY: usize = 512;

/// The instrument bundle one simulation run records into.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Simulation ticks executed.
    pub ticks: Counter,
    /// Flows admitted into the system.
    pub admitted: Counter,
    /// Admissions withheld by the per-tick ramp cap (demand the
    /// controller allowed but signaling throttled this tick).
    pub denied: Counter,
    /// Flows that departed.
    pub departed: Counter,
    /// Exponential holding-time draws taken from the RNG.
    pub rng_exp_draws: Counter,
    /// Per-tick aggregate load.
    pub load: Histogram,
    /// Downsampled `(t, load)` trajectory.
    pub load_series: TimeSeries,
    /// Per-tick flow-table occupancy (batch fill of the engine).
    pub occupancy: Histogram,
    /// Wall-clock nanoseconds per tick (only populated with timing on).
    pub tick_ns: Histogram,
    /// Controller's admissible count after each decision.
    pub admissible: Gauge,
    /// Per-observation innovation `μ̂_t − μ̂_{t−1}` of the controller's
    /// mean-rate estimate.
    pub innovation: Histogram,
    timing: bool,
}

impl Default for SimMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMetrics {
    /// Creates an empty bundle with wall-clock timing off.
    pub fn new() -> Self {
        SimMetrics {
            ticks: Counter::new(),
            admitted: Counter::new(),
            denied: Counter::new(),
            departed: Counter::new(),
            rng_exp_draws: Counter::new(),
            load: Histogram::new(),
            load_series: TimeSeries::new(SERIES_CAPACITY),
            occupancy: Histogram::new(),
            tick_ns: Histogram::new(),
            admissible: Gauge::new(),
            innovation: Histogram::new(),
            timing: false,
        }
    }

    /// Enables wall-clock per-tick timing. The timing histogram then
    /// appears in snapshots as `engine.tick_ns` — and the snapshot is
    /// no longer machine-independent.
    pub fn with_timing(mut self) -> Self {
        self.timing = true;
        self
    }

    /// Whether wall-clock timing is enabled.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Freezes the bundle into a named, mergeable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        out.insert("sim.ticks", MetricValue::Counter(self.ticks.snapshot()));
        out.insert(
            "sim.admitted",
            MetricValue::Counter(self.admitted.snapshot()),
        );
        out.insert("sim.denied", MetricValue::Counter(self.denied.snapshot()));
        out.insert(
            "sim.departed",
            MetricValue::Counter(self.departed.snapshot()),
        );
        out.insert(
            "sim.rng.exp_draws",
            MetricValue::Counter(self.rng_exp_draws.snapshot()),
        );
        out.insert("sim.load", MetricValue::Histogram(self.load.snapshot()));
        out.insert(
            "sim.load_series",
            MetricValue::Series(self.load_series.snapshot()),
        );
        out.insert(
            "engine.occupancy",
            MetricValue::Histogram(self.occupancy.snapshot()),
        );
        out.insert(
            "ctl.admissible",
            MetricValue::Gauge(self.admissible.snapshot()),
        );
        out.insert(
            "ctl.innovation",
            MetricValue::Histogram(self.innovation.snapshot()),
        );
        if self.timing {
            out.insert(
                "engine.tick_ns",
                MetricValue::Histogram(self.tick_ns.snapshot()),
            );
        }
        out
    }
}

/// Exports one replication fan-out's per-worker pool accounting as
/// snapshot entries (see the module table for the names).
///
/// Everything except the utilization gauges is a counter, so merging
/// snapshots from successive calls **sums** the accounting — integer
/// sums are commutative and associative, making the merged result
/// independent of merge order (the invariance test below pins this).
/// The per-slot utilization gauge absorbs one `busy/elapsed` ratio per
/// call; its merged distribution (count/min/max/sum) is likewise
/// order-independent.
pub fn pool_stats_snapshot(stats: &PoolCallStats) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::new();
    let counter = |count: u64| MetricValue::Counter(CounterSnapshot { count });
    out.insert("pool.calls", counter(1));
    out.insert("pool.elapsed_ns", counter(stats.elapsed_ns));
    for (slot, w) in stats.workers.iter().enumerate() {
        out.insert(format!("pool.worker{slot}.items"), counter(w.items));
        out.insert(
            format!("pool.worker{slot}.own_chunks"),
            counter(w.own_chunks),
        );
        out.insert(format!("pool.worker{slot}.steals"), counter(w.steals));
        out.insert(format!("pool.worker{slot}.busy_ns"), counter(w.busy_ns));
        let mut util = Gauge::new();
        util.set(stats.utilization(slot));
        out.insert(
            format!("pool.worker{slot}.utilization"),
            MetricValue::Gauge(util.snapshot()),
        );
    }
    out
}

/// An optional [`SimMetrics`]: `disabled()` is the zero-cost default
/// (one `Option` branch per record site), `enabled()` collects.
#[derive(Debug, Default)]
pub struct MetricsSink {
    inner: Option<Box<SimMetrics>>,
    /// Extra snapshot entries attached by components that export their
    /// own instrument state (e.g. the overflow meter).
    extra: MetricsSnapshot,
}

impl MetricsSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        MetricsSink::default()
    }

    /// A sink that records into a fresh [`SimMetrics`].
    pub fn enabled() -> Self {
        MetricsSink {
            inner: Some(Box::new(SimMetrics::new())),
            extra: MetricsSnapshot::new(),
        }
    }

    /// A recording sink with wall-clock timing enabled.
    pub fn enabled_with_timing() -> Self {
        MetricsSink {
            inner: Some(Box::new(SimMetrics::new().with_timing())),
            extra: MetricsSnapshot::new(),
        }
    }

    /// Whether the sink records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The bundle, when recording — every hot-path record site goes
    /// through this single branch.
    #[inline]
    pub fn get_mut(&mut self) -> Option<&mut SimMetrics> {
        self.inner.as_deref_mut()
    }

    /// Read access to the bundle.
    pub fn get(&self) -> Option<&SimMetrics> {
        self.inner.as_deref()
    }

    /// Merges pre-built snapshot entries into this sink's output (used
    /// by components that export their own instrument state, like
    /// [`crate::metrics::OverflowMeter::export_into`]). No-op when the
    /// sink is disabled.
    pub fn attach(&mut self, entries: MetricsSnapshot) {
        if self.is_enabled() {
            self.extra.merge(&entries);
        }
    }

    /// Snapshot of the collected metrics (empty snapshot when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = self
            .inner
            .as_deref()
            .map(SimMetrics::snapshot)
            .unwrap_or_default();
        out.merge(&self.extra);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_snapshots_empty() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn enabled_sink_records_and_snapshots() {
        let mut sink = MetricsSink::enabled();
        assert!(sink.is_enabled());
        if let Some(m) = sink.get_mut() {
            m.ticks.inc();
            m.load.record(42.0);
            m.admissible.set(97.0);
        }
        let snap = sink.snapshot();
        match snap.get("sim.ticks") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 1),
            other => panic!("{other:?}"),
        }
        match snap.get("sim.load") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("{other:?}"),
        }
        // Timing is off by default: deterministic snapshot only.
        assert!(snap.get("engine.tick_ns").is_none());
    }

    #[test]
    fn pool_stats_snapshot_is_merge_order_invariant() {
        use mbac_num::WorkerStats;
        // Synthetic accounting with exactly-representable ratios so the
        // full snapshots (gauges included) compare bitwise equal.
        let call = |scale: u64| PoolCallStats {
            workers: (0..3)
                .map(|s| WorkerStats {
                    items: 10 * scale + s,
                    own_chunks: 2 * scale,
                    steals: s,
                    busy_ns: 256 * scale,
                })
                .collect(),
            elapsed_ns: 1024 * scale,
        };
        let snaps: Vec<MetricsSnapshot> = (1..=4).map(|k| pool_stats_snapshot(&call(k))).collect();
        let mut forward = MetricsSnapshot::new();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = MetricsSnapshot::new();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward, backward, "pool metrics must merge order-free");
        match forward.get("pool.calls") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 4),
            other => panic!("{other:?}"),
        }
        match forward.get("pool.worker2.steals") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 8),
            other => panic!("{other:?}"),
        }
        match forward.get("pool.worker0.utilization") {
            Some(MetricValue::Gauge(g)) => {
                assert_eq!(g.count, 4);
                assert_eq!(g.min, 0.25);
                assert_eq!(g.max, 0.25);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timing_histogram_is_opt_in() {
        let mut sink = MetricsSink::enabled_with_timing();
        if let Some(m) = sink.get_mut() {
            assert!(m.timing_enabled());
            m.tick_ns.record(1234.0);
        }
        assert!(sink.snapshot().get("engine.tick_ns").is_some());
    }
}
