//! Simulation telemetry: the instrument bundle threaded through the
//! runner hot paths, behind a zero-cost disabled mode.
//!
//! [`MetricsSink`] wraps an optional [`SimMetrics`]; every record site
//! in the simulator costs one branch on the `Option` when disabled (the
//! bench guard in `tests/statistical.rs` and `crates/bench` verifies
//! the overhead is unmeasurable). When enabled, the bundle collects:
//!
//! | name | instrument | meaning |
//! |---|---|---|
//! | `sim.ticks` | counter | simulation ticks executed |
//! | `sim.admitted` | counter | flows admitted |
//! | `sim.denied` | counter | admissions withheld by the ramp cap |
//! | `sim.departed` | counter | flows departed |
//! | `sim.rng.exp_draws` | counter | exponential holding-time draws |
//! | `sim.load` | histogram | per-tick aggregate load |
//! | `sim.load_series` | series | downsampled load trajectory |
//! | `engine.occupancy` | histogram | per-tick flow-table occupancy |
//! | `engine.tick_ns` | histogram | wall-clock ns per tick (opt-in) |
//! | `ctl.admissible` | gauge | controller's admissible count |
//! | `ctl.innovation` | histogram | per-observation change in μ̂ |
//!
//! The replication pool additionally exports per-worker accounting (see
//! [`pool_stats_snapshot`]) in the timing-enabled mode:
//!
//! | name | instrument | meaning |
//! |---|---|---|
//! | `pool.calls` | counter | fan-out calls folded in |
//! | `pool.elapsed_ns` | counter | wall time of the fan-out calls |
//! | `pool.worker<i>.items` | counter | replications run by slot *i* |
//! | `pool.worker<i>.own_chunks` | counter | chunks popped from slot *i*'s own deque |
//! | `pool.worker<i>.steals` | counter | chunks slot *i* stole |
//! | `pool.worker<i>.busy_ns` | counter | wall time slot *i* was busy |
//! | `pool.worker<i>.utilization` | gauge | busy / elapsed per call |
//!
//! Wall-clock timing is **off by default** and excluded from snapshots
//! unless explicitly enabled with [`SimMetrics::with_timing`]: timings
//! are machine-dependent, and default snapshots must stay deterministic
//! so that the batched and boxed engines (and any worker count) produce
//! *identical* merged snapshots for the same seed. Pool accounting is
//! timing-gated for the same reason — worker counts and steal patterns
//! are machine facts, not simulation results.

use mbac_metrics::{
    Aggregated, Counter, CounterSnapshot, FieldBuf, Gauge, Histogram, MetricValue, MetricsSnapshot,
    Sampler, StreamHandle, StreamItem, TimeSeries,
};
use mbac_num::PoolCallStats;

/// Default point budget for the load trajectory sketch.
const SERIES_CAPACITY: usize = 512;

/// The instrument bundle one simulation run records into.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Simulation ticks executed.
    pub ticks: Counter,
    /// Flows admitted into the system.
    pub admitted: Counter,
    /// Admissions withheld by the per-tick ramp cap (demand the
    /// controller allowed but signaling throttled this tick).
    pub denied: Counter,
    /// Flows that departed.
    pub departed: Counter,
    /// Exponential holding-time draws taken from the RNG.
    pub rng_exp_draws: Counter,
    /// Per-tick aggregate load.
    pub load: Histogram,
    /// Downsampled `(t, load)` trajectory.
    pub load_series: TimeSeries,
    /// Per-tick flow-table occupancy (batch fill of the engine).
    pub occupancy: Histogram,
    /// Wall-clock nanoseconds per tick (only populated with timing on).
    pub tick_ns: Histogram,
    /// Controller's admissible count after each decision.
    pub admissible: Gauge,
    /// Per-observation innovation `μ̂_t − μ̂_{t−1}` of the controller's
    /// mean-rate estimate.
    pub innovation: Histogram,
    timing: bool,
}

impl Default for SimMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMetrics {
    /// Creates an empty bundle with wall-clock timing off.
    pub fn new() -> Self {
        SimMetrics {
            ticks: Counter::new(),
            admitted: Counter::new(),
            denied: Counter::new(),
            departed: Counter::new(),
            rng_exp_draws: Counter::new(),
            load: Histogram::new(),
            load_series: TimeSeries::new(SERIES_CAPACITY),
            occupancy: Histogram::new(),
            tick_ns: Histogram::new(),
            admissible: Gauge::new(),
            innovation: Histogram::new(),
            timing: false,
        }
    }

    /// Enables wall-clock per-tick timing. The timing histogram then
    /// appears in snapshots as `engine.tick_ns` — and the snapshot is
    /// no longer machine-independent.
    pub fn with_timing(mut self) -> Self {
        self.timing = true;
        self
    }

    /// Whether wall-clock timing is enabled.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Freezes the bundle into a named, mergeable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        out.insert("sim.ticks", MetricValue::Counter(self.ticks.snapshot()));
        out.insert(
            "sim.admitted",
            MetricValue::Counter(self.admitted.snapshot()),
        );
        out.insert("sim.denied", MetricValue::Counter(self.denied.snapshot()));
        out.insert(
            "sim.departed",
            MetricValue::Counter(self.departed.snapshot()),
        );
        out.insert(
            "sim.rng.exp_draws",
            MetricValue::Counter(self.rng_exp_draws.snapshot()),
        );
        out.insert("sim.load", MetricValue::Histogram(self.load.snapshot()));
        out.insert(
            "sim.load_series",
            MetricValue::Series(self.load_series.snapshot()),
        );
        out.insert(
            "engine.occupancy",
            MetricValue::Histogram(self.occupancy.snapshot()),
        );
        out.insert(
            "ctl.admissible",
            MetricValue::Gauge(self.admissible.snapshot()),
        );
        out.insert(
            "ctl.innovation",
            MetricValue::Histogram(self.innovation.snapshot()),
        );
        if self.timing {
            out.insert(
                "engine.tick_ns",
                MetricValue::Histogram(self.tick_ns.snapshot()),
            );
        }
        out
    }
}

/// Exports one replication fan-out's per-worker pool accounting as
/// snapshot entries (see the module table for the names).
///
/// Everything except the utilization gauges is a counter, so merging
/// snapshots from successive calls **sums** the accounting — integer
/// sums are commutative and associative, making the merged result
/// independent of merge order (the invariance test below pins this).
/// The per-slot utilization gauge absorbs one `busy/elapsed` ratio per
/// call; its merged distribution (count/min/max/sum) is likewise
/// order-independent.
pub fn pool_stats_snapshot(stats: &PoolCallStats) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::new();
    let counter = |count: u64| MetricValue::Counter(CounterSnapshot { count });
    out.insert("pool.calls", counter(1));
    out.insert("pool.elapsed_ns", counter(stats.elapsed_ns));
    for (slot, w) in stats.workers.iter().enumerate() {
        out.insert(format!("pool.worker{slot}.items"), counter(w.items));
        out.insert(
            format!("pool.worker{slot}.own_chunks"),
            counter(w.own_chunks),
        );
        out.insert(format!("pool.worker{slot}.steals"), counter(w.steals));
        out.insert(format!("pool.worker{slot}.busy_ns"), counter(w.busy_ns));
        let mut util = Gauge::new();
        util.set(stats.utilization(slot));
        out.insert(
            format!("pool.worker{slot}.utilization"),
            MetricValue::Gauge(util.snapshot()),
        );
    }
    out
}

/// One unit of work's worth of telemetry: a small, allocation-free
/// record a hot loop fills locally and folds into the sink's mergeable
/// instruments on drop (via [`EntryGuard`]) or explicitly with
/// [`MetricsSink::fold_entry`].
///
/// Every field defaults to its fold-identity — `0` for the counter
/// deltas, `NaN` for the value fields (gauges, histograms and series
/// ignore non-finite values; counters ignore zero adds) — so folding an
/// entry unconditionally updates exactly the instruments the producer
/// touched. That makes entry-based recording **bit-identical** to the
/// old per-instrument call sites: untouched fields are no-ops, touched
/// fields replay the same `record`/`add` the site used to make.
///
/// In streaming mode each folded entry also advances the per-stream
/// sequence, feeds the deterministic sampler, and triggers cumulative
/// interval flushes (see [`MetricsSink::streaming`]).
#[derive(Debug, Clone, Copy)]
pub struct TickEntry {
    /// Simulation time of the unit of work.
    pub t: f64,
    /// Ticks executed (counter delta).
    pub ticks: u64,
    /// Flows admitted (counter delta).
    pub admitted: u64,
    /// Admissions withheld by the ramp cap (counter delta).
    pub denied: u64,
    /// Flows departed (counter delta).
    pub departed: u64,
    /// Exponential holding-time draws (counter delta).
    pub exp_draws: u64,
    /// Per-tick aggregate load (`sim.load` + `sim.load_series`).
    pub load: f64,
    /// Flow-table occupancy (`engine.occupancy`).
    pub occupancy: f64,
    /// Wall-clock ns for the unit (`engine.tick_ns`; only set it when
    /// [`MetricsSink::timing_enabled`]).
    pub tick_ns: f64,
    /// Controller's admissible count (`ctl.admissible`).
    pub admissible: f64,
    /// Estimator innovation (`ctl.innovation`).
    pub innovation: f64,
}

impl TickEntry {
    /// An identity entry at time `t`: folding it changes nothing.
    pub fn new(t: f64) -> Self {
        TickEntry {
            t,
            ticks: 0,
            admitted: 0,
            denied: 0,
            departed: 0,
            exp_draws: 0,
            load: f64::NAN,
            occupancy: f64::NAN,
            tick_ns: f64::NAN,
            admissible: f64::NAN,
            innovation: f64::NAN,
        }
    }

    /// The entry's touched fields as a fixed-capacity sample payload
    /// (finite values and non-zero counters only).
    pub fn fields(&self) -> FieldBuf {
        let mut f = FieldBuf::new();
        f.push("load", self.load);
        f.push("occupancy", self.occupancy);
        f.push("admissible", self.admissible);
        f.push("innovation", self.innovation);
        f.push("tick_ns", self.tick_ns);
        let counters: [(&'static str, u64); 5] = [
            ("ticks", self.ticks),
            ("admitted", self.admitted),
            ("denied", self.denied),
            ("departed", self.departed),
            ("exp_draws", self.exp_draws),
        ];
        for (name, n) in counters {
            if n > 0 {
                f.push(name, n as f64);
            }
        }
        f
    }
}

/// A [`TickEntry`] borrowed from a sink: deref-mut to fill it, folds on
/// drop. The guard keeps hot loops to one statement per unit of work
/// with no way to forget the fold.
#[derive(Debug)]
pub struct EntryGuard<'a> {
    sink: &'a mut MetricsSink,
    entry: TickEntry,
}

impl std::ops::Deref for EntryGuard<'_> {
    type Target = TickEntry;
    fn deref(&self) -> &TickEntry {
        &self.entry
    }
}

impl std::ops::DerefMut for EntryGuard<'_> {
    fn deref_mut(&mut self) -> &mut TickEntry {
        &mut self.entry
    }
}

impl Drop for EntryGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.sink.fold_entry(&self.entry);
    }
}

/// Streaming-mode state of a sink: the shared emission handle plus this
/// replication's sequence counter and sampler.
#[derive(Debug)]
struct StreamState {
    handle: StreamHandle,
    /// Producer stream index (the replication index).
    stream: u64,
    sampler: Sampler,
    flush_interval: u64,
    seq: u64,
    last_t: f64,
}

/// An optional [`SimMetrics`]: `disabled()` is the zero-cost default
/// (one `Option` branch per record site), `enabled()` collects.
#[derive(Debug, Default)]
pub struct MetricsSink {
    inner: Option<Box<SimMetrics>>,
    /// Extra snapshot entries attached by components that export their
    /// own instrument state (e.g. the overflow meter).
    extra: MetricsSnapshot,
    /// Present only in streaming mode.
    stream: Option<Box<StreamState>>,
}

impl MetricsSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        MetricsSink::default()
    }

    /// A sink that records into a fresh [`SimMetrics`].
    pub fn enabled() -> Self {
        MetricsSink {
            inner: Some(Box::new(SimMetrics::new())),
            extra: MetricsSnapshot::new(),
            stream: None,
        }
    }

    /// A recording sink with wall-clock timing enabled.
    pub fn enabled_with_timing() -> Self {
        MetricsSink {
            inner: Some(Box::new(SimMetrics::new().with_timing())),
            extra: MetricsSnapshot::new(),
            stream: None,
        }
    }

    /// A recording sink that additionally emits through `handle` as
    /// producer stream `stream` (the replication index): sampled raw
    /// entries plus cumulative interval flushes every
    /// `flush_interval` folded entries, and always a final interval
    /// from [`MetricsSink::finish_rep`].
    ///
    /// Aggregation is *identical* to [`MetricsSink::enabled`] — the
    /// instruments fold the same entries in the same order, so
    /// snapshots stay bit-identical and the last interval per stream
    /// re-folds to the snapshot-mode aggregate exactly.
    pub fn streaming(handle: StreamHandle, stream: u64) -> Self {
        let sampler = handle.sampler_for(stream);
        let flush_interval = handle.flush_interval();
        MetricsSink {
            inner: Some(Box::new(SimMetrics::new())),
            extra: MetricsSnapshot::new(),
            stream: Some(Box::new(StreamState {
                handle,
                stream,
                sampler,
                flush_interval,
                seq: 0,
                last_t: f64::NAN,
            })),
        }
    }

    /// Whether the sink records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether wall-clock timing should be measured for this sink
    /// (false when disabled — don't pay for `Instant::now`).
    pub fn timing_enabled(&self) -> bool {
        self.inner
            .as_deref()
            .is_some_and(SimMetrics::timing_enabled)
    }

    /// Borrows a fresh identity entry at time `t`; folding happens when
    /// the guard drops. Callers should skip entry construction entirely
    /// when [`MetricsSink::is_enabled`] is false — the guard itself is
    /// a no-op then, but the values filled into it usually are not free
    /// to compute.
    #[inline]
    pub fn entry(&mut self, t: f64) -> EntryGuard<'_> {
        EntryGuard {
            sink: self,
            entry: TickEntry::new(t),
        }
    }

    /// Folds one entry into the instruments: counter deltas add
    /// (zero-delta adds are no-ops), value fields record (non-finite
    /// values are ignored). In streaming mode the entry then advances
    /// the stream sequence, may emit a sampled raw record, and may
    /// flush a cumulative interval.
    ///
    /// Inlined so the identity fields of a caller's entry constant-fold
    /// away: a hot loop that only touches counters (e.g. the impulsive
    /// per-admission entry at 10⁶-flow scale) compiles down to the
    /// counter adds — the NaN guards on the untouched value instruments
    /// are decided at compile time, not per flow.
    #[inline]
    pub fn fold_entry(&mut self, e: &TickEntry) {
        let Some(m) = self.inner.as_deref_mut() else {
            return;
        };
        m.ticks.add(e.ticks);
        m.admitted.add(e.admitted);
        m.denied.add(e.denied);
        m.departed.add(e.departed);
        m.rng_exp_draws.add(e.exp_draws);
        m.load.record(e.load);
        m.load_series.record(e.t, e.load);
        m.occupancy.record(e.occupancy);
        m.tick_ns.record(e.tick_ns);
        m.admissible.set(e.admissible);
        m.innovation.record(e.innovation);
        if self.stream.is_some() {
            self.stream_entry(e);
        }
    }

    /// The streaming arm of [`MetricsSink::fold_entry`], kept out of
    /// line so the inlined aggregate fold stays small at every call
    /// site; only entered when the sink is in streaming mode.
    fn stream_entry(&mut self, e: &TickEntry) {
        let mut flush_at = None;
        if let Some(s) = self.stream.as_deref_mut() {
            s.seq += 1;
            s.last_t = e.t;
            if s.sampler.keep(s.seq) {
                s.handle.emit(StreamItem::Sample {
                    stream: s.stream,
                    seq: s.seq,
                    t: e.t,
                    fields: e.fields(),
                });
            }
            if s.flush_interval > 0 && s.seq.is_multiple_of(s.flush_interval) {
                flush_at = Some(s.seq);
            }
        }
        if let Some(seq) = flush_at {
            self.flush_interval_record(seq);
        }
    }

    /// Emits the final cumulative interval of this replication's
    /// stream. No-op outside streaming mode; call once, after the last
    /// entry (and after any [`MetricsSink::attach`]).
    pub fn finish_rep(&mut self) {
        if let Some(s) = self.stream.as_deref() {
            self.flush_interval_record(s.seq);
        }
    }

    /// Emits one cumulative interval: the full snapshot so far. The
    /// clone is the flush cost — paid per interval, never per entry.
    fn flush_interval_record(&mut self, seq: u64) {
        let metrics = self.snapshot();
        let Some(s) = self.stream.as_deref() else {
            return;
        };
        s.handle.emit(StreamItem::Interval {
            stream: s.stream,
            seq,
            t: s.last_t,
            metrics,
        });
    }

    /// The bundle, when recording — every hot-path record site goes
    /// through this single branch.
    #[inline]
    pub fn get_mut(&mut self) -> Option<&mut SimMetrics> {
        self.inner.as_deref_mut()
    }

    /// Read access to the bundle.
    pub fn get(&self) -> Option<&SimMetrics> {
        self.inner.as_deref()
    }

    /// Merges pre-built snapshot entries into this sink's output (used
    /// by components that export their own instrument state, like
    /// [`crate::metrics::OverflowMeter::export_into`]). No-op when the
    /// sink is disabled.
    pub fn attach(&mut self, entries: MetricsSnapshot) {
        if self.is_enabled() {
            self.extra.merge(&entries);
        }
    }

    /// Snapshot of the collected metrics (empty snapshot when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = self
            .inner
            .as_deref()
            .map(SimMetrics::snapshot)
            .unwrap_or_default();
        out.merge(&self.extra);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_snapshots_empty() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn enabled_sink_records_and_snapshots() {
        let mut sink = MetricsSink::enabled();
        assert!(sink.is_enabled());
        if let Some(m) = sink.get_mut() {
            m.ticks.inc();
            m.load.record(42.0);
            m.admissible.set(97.0);
        }
        let snap = sink.snapshot();
        match snap.get("sim.ticks") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 1),
            other => panic!("{other:?}"),
        }
        match snap.get("sim.load") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("{other:?}"),
        }
        // Timing is off by default: deterministic snapshot only.
        assert!(snap.get("engine.tick_ns").is_none());
    }

    #[test]
    fn pool_stats_snapshot_is_merge_order_invariant() {
        use mbac_num::WorkerStats;
        // Synthetic accounting with exactly-representable ratios so the
        // full snapshots (gauges included) compare bitwise equal.
        let call = |scale: u64| PoolCallStats {
            workers: (0..3)
                .map(|s| WorkerStats {
                    items: 10 * scale + s,
                    own_chunks: 2 * scale,
                    steals: s,
                    busy_ns: 256 * scale,
                })
                .collect(),
            elapsed_ns: 1024 * scale,
        };
        let snaps: Vec<MetricsSnapshot> = (1..=4).map(|k| pool_stats_snapshot(&call(k))).collect();
        let mut forward = MetricsSnapshot::new();
        for s in &snaps {
            forward.merge(s);
        }
        let mut backward = MetricsSnapshot::new();
        for s in snaps.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward, backward, "pool metrics must merge order-free");
        match forward.get("pool.calls") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 4),
            other => panic!("{other:?}"),
        }
        match forward.get("pool.worker2.steals") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 8),
            other => panic!("{other:?}"),
        }
        match forward.get("pool.worker0.utilization") {
            Some(MetricValue::Gauge(g)) => {
                assert_eq!(g.count, 4);
                assert_eq!(g.min, 0.25);
                assert_eq!(g.max, 0.25);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timing_histogram_is_opt_in() {
        let mut sink = MetricsSink::enabled_with_timing();
        if let Some(m) = sink.get_mut() {
            assert!(m.timing_enabled());
            m.tick_ns.record(1234.0);
        }
        assert!(sink.snapshot().get("engine.tick_ns").is_some());
    }
}
