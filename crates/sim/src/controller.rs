//! Glue between estimators and admission policies: the deployable MBAC.
//!
//! The simulator drives anything implementing [`AdmissionEngine`] — the
//! minimal measure-then-decide interface. [`MbacController`] is the
//! paper's engine (a statistics estimator feeding a Gaussian criterion);
//! the related-work baselines of §6 (`mbac_core::admission::MeasuredSum`
//! wrapped by [`MeasuredSumController`]) implement the same trait with a
//! completely different internal logic.

use mbac_core::admission::{AdmissionPolicy, MeasuredSum};
use mbac_core::estimators::{Estimate, Estimator};
use mbac_num::RateMoments;
use std::cell::Cell;

/// The measure-then-decide interface the simulator drives.
pub trait AdmissionEngine {
    /// Feeds one measurement snapshot (per-flow instantaneous rates at
    /// time `t`; the aggregate is their sum).
    fn observe(&mut self, t: f64, rates: &[f64]);

    /// The number of flows the engine currently allows in the system
    /// (`None` before any measurement exists — cold start).
    fn admissible_count(&self, capacity: f64, current_flows: usize) -> Option<f64>;

    /// Clears all measurement state.
    fn reset(&mut self);

    /// The engine's current `(μ̂, σ̂)` per-flow estimate, for telemetry
    /// (estimator-innovation tracking). Engines without a per-flow
    /// statistics estimate keep the default `None`.
    fn estimate_stats(&self) -> Option<(f64, f64)> {
        None
    }

    /// Whether [`AdmissionEngine::observe_moments`] may be used in place
    /// of [`AdmissionEngine::observe`]. The tick loops gate once per run.
    fn supports_moments(&self) -> bool {
        false
    }

    /// Feeds one measurement as pre-reduced sufficient statistics —
    /// O(1) in the number of flows. Only valid when
    /// [`AdmissionEngine::supports_moments`] is `true`.
    fn observe_moments(&mut self, t: f64, moments: &RateMoments) {
        let _ = (t, moments);
        panic!("engine does not support moment observations");
    }

    /// The pivot the fused tick kernel should center second moments on.
    fn moment_pivot(&self) -> f64 {
        0.0
    }
}

/// An estimator plus an admission policy — the complete
/// measurement-based admission controller the simulator drives.
pub struct MbacController {
    estimator: Box<dyn Estimator + Send>,
    policy: Box<dyn AdmissionPolicy + Send>,
    /// Memo for the eqn (42) inversion: the last
    /// `(μ̂, σ̂², capacity) → admissible count` evaluation, keyed by bit
    /// pattern so a hit returns the *identical* f64. The continuous-load
    /// fill loop re-asks after every admission while the estimate only
    /// changes at measurement ticks, so this makes the steady-state
    /// admission decision O(1) lookups instead of repeated quadratics.
    decision_memo: Cell<Option<(DecisionKey, f64)>>,
}

/// Bit patterns of `(μ̂, σ̂², capacity)` keying one memoized admissible-
/// count evaluation: bit equality guarantees the memoized f64 is the
/// identical value the quadratic would return.
type DecisionKey = (u64, u64, u64);

impl MbacController {
    /// Bundles an estimator with a policy.
    pub fn new(
        estimator: Box<dyn Estimator + Send>,
        policy: Box<dyn AdmissionPolicy + Send>,
    ) -> Self {
        MbacController {
            estimator,
            policy,
            decision_memo: Cell::new(None),
        }
    }

    /// Feeds a measurement snapshot (per-flow instantaneous rates).
    pub fn observe(&mut self, t: f64, rates: &[f64]) {
        self.estimator.observe(t, rates);
    }

    /// The current statistics estimate, if any.
    pub fn estimate(&self) -> Option<Estimate> {
        self.estimator.estimate()
    }

    /// The estimated admissible number of flows for the given capacity,
    /// or `None` before any measurement exists.
    pub fn admissible_count(&self, capacity: f64) -> Option<f64> {
        self.estimator.estimate().map(|e| {
            let key = (e.mean.to_bits(), e.variance.to_bits(), capacity.to_bits());
            if let Some((k, m)) = self.decision_memo.get() {
                if k == key {
                    return m;
                }
            }
            let m = self.policy.admissible_count(e, capacity);
            self.decision_memo.set(Some((key, m)));
            m
        })
    }

    /// The estimator's memory time-scale `T_m`.
    pub fn memory_timescale(&self) -> f64 {
        self.estimator.memory_timescale()
    }

    /// Clears estimator state (for reuse across replications).
    pub fn reset(&mut self) {
        self.estimator.reset();
    }
}

impl AdmissionEngine for MbacController {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        MbacController::observe(self, t, rates);
    }

    fn admissible_count(&self, capacity: f64, _current_flows: usize) -> Option<f64> {
        MbacController::admissible_count(self, capacity)
    }

    fn reset(&mut self) {
        MbacController::reset(self);
    }

    fn estimate_stats(&self) -> Option<(f64, f64)> {
        self.estimate().map(|e| (e.mean, e.variance.sqrt()))
    }

    fn supports_moments(&self) -> bool {
        self.estimator.supports_moments()
    }

    fn observe_moments(&mut self, t: f64, moments: &RateMoments) {
        self.estimator.observe_moments(t, moments);
    }

    fn moment_pivot(&self) -> f64 {
        self.estimator.moment_pivot()
    }
}

/// Adapter running the Jamin-style measured-sum algorithm (§6 related
/// work) as an [`AdmissionEngine`]: the admissible count is the current
/// occupancy plus however many declared-rate flows fit under the
/// utilization-scaled capacity, given the windowed load measurement.
pub struct MeasuredSumController {
    policy: MeasuredSum,
}

impl MeasuredSumController {
    /// Wraps a measured-sum policy.
    pub fn new(policy: MeasuredSum) -> Self {
        MeasuredSumController { policy }
    }

    /// Access to the wrapped policy (e.g. to inspect its estimate).
    pub fn policy(&self) -> &MeasuredSum {
        &self.policy
    }
}

impl AdmissionEngine for MeasuredSumController {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        self.policy.observe_aggregate(t, rates.iter().sum());
    }

    fn admissible_count(&self, capacity: f64, current_flows: usize) -> Option<f64> {
        self.policy
            .headroom_flows(capacity)
            .map(|extra| current_flows as f64 + extra)
    }

    fn reset(&mut self) {
        self.policy.reset();
    }

    fn supports_moments(&self) -> bool {
        true
    }

    fn observe_moments(&mut self, t: f64, moments: &RateMoments) {
        // Measured-sum only needs the aggregate; the moment sum is the
        // identical flow-order fold of the rate slice.
        self.policy.observe_aggregate(t, moments.sum());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_core::admission::CertaintyEquivalent;
    use mbac_core::estimators::MemorylessEstimator;

    fn controller() -> MbacController {
        MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-3)),
        )
    }

    #[test]
    fn no_admission_before_measurement() {
        let ctl = controller();
        assert!(ctl.admissible_count(100.0).is_none());
    }

    #[test]
    fn admissible_count_follows_measurements() {
        let mut ctl = controller();
        ctl.observe(0.0, &[1.0, 1.0, 1.0, 1.0]);
        let m = ctl.admissible_count(100.0).unwrap();
        // σ̂ = 0 ⇒ fluid limit c/μ̂ = 100.
        assert!((m - 100.0).abs() < 1e-9);
        ctl.observe(1.0, &[0.5, 1.5, 0.5, 1.5]);
        let m2 = ctl.admissible_count(100.0).unwrap();
        assert!(m2 < m, "measured burstiness must reduce admissions");
    }

    #[test]
    fn reset_clears_estimate() {
        let mut ctl = controller();
        ctl.observe(0.0, &[1.0, 2.0]);
        assert!(ctl.estimate().is_some());
        ctl.reset();
        assert!(ctl.estimate().is_none());
    }
}
