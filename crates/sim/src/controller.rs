//! Glue between estimators and admission policies: the deployable MBAC.
//!
//! The simulator drives anything implementing [`AdmissionEngine`] — the
//! minimal measure-then-decide interface. [`MbacController`] is the
//! paper's engine (a statistics estimator feeding a Gaussian criterion);
//! the related-work baselines of §6 (`mbac_core::admission::MeasuredSum`
//! wrapped by [`MeasuredSumController`]) implement the same trait with a
//! completely different internal logic.

use mbac_core::admission::{AdmissionPolicy, MeasuredSum};
use mbac_core::estimators::{Estimate, Estimator};

/// The measure-then-decide interface the simulator drives.
pub trait AdmissionEngine {
    /// Feeds one measurement snapshot (per-flow instantaneous rates at
    /// time `t`; the aggregate is their sum).
    fn observe(&mut self, t: f64, rates: &[f64]);

    /// The number of flows the engine currently allows in the system
    /// (`None` before any measurement exists — cold start).
    fn admissible_count(&self, capacity: f64, current_flows: usize) -> Option<f64>;

    /// Clears all measurement state.
    fn reset(&mut self);

    /// The engine's current `(μ̂, σ̂)` per-flow estimate, for telemetry
    /// (estimator-innovation tracking). Engines without a per-flow
    /// statistics estimate keep the default `None`.
    fn estimate_stats(&self) -> Option<(f64, f64)> {
        None
    }
}

/// An estimator plus an admission policy — the complete
/// measurement-based admission controller the simulator drives.
pub struct MbacController {
    estimator: Box<dyn Estimator + Send>,
    policy: Box<dyn AdmissionPolicy + Send>,
}

impl MbacController {
    /// Bundles an estimator with a policy.
    pub fn new(
        estimator: Box<dyn Estimator + Send>,
        policy: Box<dyn AdmissionPolicy + Send>,
    ) -> Self {
        MbacController { estimator, policy }
    }

    /// Feeds a measurement snapshot (per-flow instantaneous rates).
    pub fn observe(&mut self, t: f64, rates: &[f64]) {
        self.estimator.observe(t, rates);
    }

    /// The current statistics estimate, if any.
    pub fn estimate(&self) -> Option<Estimate> {
        self.estimator.estimate()
    }

    /// The estimated admissible number of flows for the given capacity,
    /// or `None` before any measurement exists.
    pub fn admissible_count(&self, capacity: f64) -> Option<f64> {
        self.estimator
            .estimate()
            .map(|e| self.policy.admissible_count(e, capacity))
    }

    /// The estimator's memory time-scale `T_m`.
    pub fn memory_timescale(&self) -> f64 {
        self.estimator.memory_timescale()
    }

    /// Clears estimator state (for reuse across replications).
    pub fn reset(&mut self) {
        self.estimator.reset();
    }
}

impl AdmissionEngine for MbacController {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        MbacController::observe(self, t, rates);
    }

    fn admissible_count(&self, capacity: f64, _current_flows: usize) -> Option<f64> {
        MbacController::admissible_count(self, capacity)
    }

    fn reset(&mut self) {
        MbacController::reset(self);
    }

    fn estimate_stats(&self) -> Option<(f64, f64)> {
        self.estimate().map(|e| (e.mean, e.variance.sqrt()))
    }
}

/// Adapter running the Jamin-style measured-sum algorithm (§6 related
/// work) as an [`AdmissionEngine`]: the admissible count is the current
/// occupancy plus however many declared-rate flows fit under the
/// utilization-scaled capacity, given the windowed load measurement.
pub struct MeasuredSumController {
    policy: MeasuredSum,
}

impl MeasuredSumController {
    /// Wraps a measured-sum policy.
    pub fn new(policy: MeasuredSum) -> Self {
        MeasuredSumController { policy }
    }

    /// Access to the wrapped policy (e.g. to inspect its estimate).
    pub fn policy(&self) -> &MeasuredSum {
        &self.policy
    }
}

impl AdmissionEngine for MeasuredSumController {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        self.policy.observe_aggregate(t, rates.iter().sum());
    }

    fn admissible_count(&self, capacity: f64, current_flows: usize) -> Option<f64> {
        self.policy
            .headroom_flows(capacity)
            .map(|extra| current_flows as f64 + extra)
    }

    fn reset(&mut self) {
        self.policy.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_core::admission::CertaintyEquivalent;
    use mbac_core::estimators::MemorylessEstimator;

    fn controller() -> MbacController {
        MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-3)),
        )
    }

    #[test]
    fn no_admission_before_measurement() {
        let ctl = controller();
        assert!(ctl.admissible_count(100.0).is_none());
    }

    #[test]
    fn admissible_count_follows_measurements() {
        let mut ctl = controller();
        ctl.observe(0.0, &[1.0, 1.0, 1.0, 1.0]);
        let m = ctl.admissible_count(100.0).unwrap();
        // σ̂ = 0 ⇒ fluid limit c/μ̂ = 100.
        assert!((m - 100.0).abs() < 1e-9);
        ctl.observe(1.0, &[0.5, 1.5, 0.5, 1.5]);
        let m2 = ctl.admissible_count(100.0).unwrap();
        assert!(m2 < m, "measured burstiness must reduce admissions");
    }

    #[test]
    fn reset_clears_estimate() {
        let mut ctl = controller();
        ctl.observe(0.0, &[1.0, 2.0]);
        assert!(ctl.estimate().is_some());
        ctl.reset();
        assert!(ctl.estimate().is_none());
    }
}
