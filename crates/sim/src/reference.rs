//! The pre-calendar flow table, frozen as a brute-force reference.
//!
//! This is the cached-minimum + linear-scan lifecycle exactly as it
//! stood before the timing-wheel departure calendar ([`crate::calendar`])
//! replaced it: `depart_until` walks every slot of any group whose
//! cached minimum has expired and then rescans the group to recompute
//! the minimum — O(flows in system) on any tick with a departure.
//!
//! It exists for two purposes only, both gated behind the
//! `reference-table` feature (always on under `cfg(test)` via the
//! self dev-dependency):
//!
//! * **equivalence proof** — the wheel table's contract is to be
//!   *bit-identical* to this table (snapshots, `next_departure`, ids,
//!   conservation counts, RNG stream) at every step; the proptests in
//!   `tests/churn.rs` and the unit tests in [`crate::flows`] drive both
//!   through randomized interleaved schedules and assert exactly that;
//! * **baseline** — the `churn` block in `bench_json` measures the
//!   wheel's O(departures) lifecycle against this table's O(N) scans at
//!   10³/10⁵/10⁶ concurrent flows.
//!
//! Do not use it in simulations; it is the slow path by construction.

use mbac_num::RateMoments;
use mbac_traffic::batch::{BatchKey, DynBatch, FlowBatch};
use mbac_traffic::process::{RateProcess, SourceModel};
use rand::rngs::StdRng;

/// Lifecycle bookkeeping for one flow; slot-parallel to its batch.
#[derive(Debug, Clone, Copy)]
struct FlowMeta {
    id: u64,
    /// Absolute departure time.
    departs_at: f64,
}

/// One group of flows sharing a batched kernel (or the boxed fallback).
struct BatchGroup {
    /// `None` marks the boxed fallback group.
    key: Option<BatchKey>,
    batch: Box<dyn FlowBatch>,
    /// Slot-parallel metadata, reordered in lock-step with the batch.
    meta: Vec<FlowMeta>,
    /// Cached `min(departs_at)` over the group; `INFINITY` when empty.
    min_departure: f64,
}

impl BatchGroup {
    fn recompute_min(&mut self) {
        self.min_departure = self
            .meta
            .iter()
            .map(|m| m.departs_at)
            .fold(f64::INFINITY, f64::min);
    }
}

/// The legacy flow table: cached minima, full-group departure scans.
pub struct ReferenceFlowTable {
    groups: Vec<BatchGroup>,
    /// Route flows into specialized kernels when the model offers one.
    batching: bool,
    /// Flows currently in the system (sum of group lengths).
    count: usize,
    next_id: u64,
    admitted_total: u64,
    departed_total: u64,
    /// Time up to which all processes have been advanced.
    advanced_to: f64,
    /// Cached `min(departs_at)` over all groups; `INFINITY` when empty.
    min_departure: f64,
}

impl Default for ReferenceFlowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ReferenceFlowTable {
    /// Creates an empty table using batched kernels where available.
    pub fn new() -> Self {
        ReferenceFlowTable {
            groups: Vec::new(),
            batching: true,
            count: 0,
            next_id: 0,
            admitted_total: 0,
            departed_total: 0,
            advanced_to: 0.0,
            min_departure: f64::INFINITY,
        }
    }

    /// Creates an empty table that keeps every flow on the boxed
    /// fallback path.
    pub fn new_unbatched() -> Self {
        ReferenceFlowTable {
            batching: false,
            ..Self::new()
        }
    }

    /// Number of flows currently in the system.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total flows ever admitted.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Total flows ever departed.
    pub fn departed_total(&self) -> u64 {
        self.departed_total
    }

    fn register(&mut self, group: usize, departs_at: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.admitted_total += 1;
        self.count += 1;
        let g = &mut self.groups[group];
        g.meta.push(FlowMeta { id, departs_at });
        g.min_departure = g.min_departure.min(departs_at);
        self.min_departure = self.min_departure.min(departs_at);
        id
    }

    fn fallback_group(&mut self) -> usize {
        match self.groups.iter().position(|g| g.key.is_none()) {
            Some(i) => i,
            None => {
                self.groups.push(BatchGroup {
                    key: None,
                    batch: Box::new(DynBatch::new()),
                    meta: Vec::new(),
                    min_departure: f64::INFINITY,
                });
                self.groups.len() - 1
            }
        }
    }

    /// Admits a new flow spawned from `model`, departing at absolute
    /// time `departs_at`. Returns the flow id.
    pub fn admit(&mut self, model: &dyn SourceModel, departs_at: f64, rng: &mut StdRng) -> u64 {
        let group = match self.batching.then(|| model.batch_key()).flatten() {
            Some(key) => match self.groups.iter().position(|g| g.key == Some(key)) {
                Some(i) => i,
                None => {
                    let batch = model
                        .new_batch()
                        .expect("batch_key() implies new_batch() (see SourceModel docs)");
                    self.groups.push(BatchGroup {
                        key: Some(key),
                        batch,
                        meta: Vec::new(),
                        min_departure: f64::INFINITY,
                    });
                    self.groups.len() - 1
                }
            },
            None => self.fallback_group(),
        };
        if self.groups[group].key.is_some() {
            self.groups[group].batch.spawn_one(rng);
        } else {
            let process = model.spawn(rng);
            self.groups[group]
                .batch
                .try_push_boxed(process)
                .ok()
                .expect("fallback group accepts boxed processes");
        }
        self.register(group, departs_at)
    }

    /// Admits a flow whose rate process already exists. Always lands in
    /// the boxed fallback group. Returns the flow id.
    pub fn admit_process(&mut self, process: Box<dyn RateProcess>, departs_at: f64) -> u64 {
        let group = self.fallback_group();
        self.groups[group]
            .batch
            .try_push_boxed(process)
            .ok()
            .expect("fallback group accepts boxed processes");
        self.register(group, departs_at)
    }

    /// Advances every flow's bandwidth process to absolute time `t`.
    pub fn advance_to(&mut self, t: f64, rng: &mut StdRng) {
        let dt = t - self.advanced_to;
        assert!(
            dt >= -1e-9,
            "cannot advance flows backwards ({t} < {})",
            self.advanced_to
        );
        if dt > 0.0 {
            for g in &mut self.groups {
                g.batch.advance_all(dt, rng);
            }
            self.advanced_to = t;
        }
    }

    /// Removes every flow whose departure time is ≤ `t` — the O(N)
    /// scan-and-rescan the calendar replaced. Returns how many departed.
    pub fn depart_until(&mut self, t: f64) -> usize {
        if self.min_departure > t {
            return 0;
        }
        let mut gone = 0;
        for g in &mut self.groups {
            if g.min_departure > t {
                continue;
            }
            let mut i = 0;
            while i < g.meta.len() {
                if g.meta[i].departs_at <= t {
                    g.meta.swap_remove(i);
                    g.batch.swap_remove(i);
                    gone += 1;
                } else {
                    i += 1;
                }
            }
            g.recompute_min();
        }
        self.count -= gone;
        self.departed_total += gone as u64;
        self.min_departure = self
            .groups
            .iter()
            .map(|g| g.min_departure)
            .fold(f64::INFINITY, f64::min);
        gone
    }

    /// Fused measurement tick, legacy gating included.
    pub fn advance_depart_measure(&mut self, t: f64, rng: &mut StdRng, pivot: f64) -> RateMoments {
        let mut mom = RateMoments::new(pivot);
        let dt = t - self.advanced_to;
        assert!(
            dt >= -1e-9,
            "cannot advance flows backwards ({t} < {})",
            self.advanced_to
        );
        if self.min_departure > t && dt > 0.0 {
            for g in &mut self.groups {
                g.batch.advance_and_measure(dt, rng, &mut mom);
            }
            self.advanced_to = t;
        } else {
            self.advance_to(t, rng);
            self.depart_until(t);
            for g in &self.groups {
                mom.add_slice(g.batch.rates());
            }
        }
        mom
    }

    /// The earliest pending departure time, if any.
    pub fn next_departure(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min_departure)
    }

    /// Sum of the instantaneous rates (per-group partial sums).
    pub fn aggregate_rate(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.batch.rates().iter().sum::<f64>())
            .sum()
    }

    /// Writes the per-flow instantaneous rates into `out` (cleared
    /// first).
    pub fn snapshot_into(&self, out: &mut Vec<f64>) {
        out.clear();
        for g in &self.groups {
            out.extend_from_slice(g.batch.rates());
        }
    }

    /// Ids of the flows currently in the system.
    pub fn ids(&self) -> Vec<u64> {
        self.groups
            .iter()
            .flat_map(|g| g.meta.iter().map(|m| m.id))
            .collect()
    }
}
