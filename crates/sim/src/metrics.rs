//! Overflow metrology — the paper's §5.2 measurement methodology.
//!
//! The meter collects spaced samples of the aggregate load, each sample
//! contributing (a) an overflow indicator `1{S_t > c}` and (b) the load
//! value itself. Termination follows the paper exactly:
//!
//! * **criterion (a)**: stop when the 95% confidence interval of the
//!   overflow probability is within ±20% of the estimate;
//! * **criterion (b)**: stop when `estimate + half-width` is at least
//!   two orders of magnitude below the target `p_q`; in that case report
//!   the Gaussian-tail estimate `Q((c − μ̂_S)/σ̂_S)` built from the
//!   sample mean and variance of the aggregate load.
//!
//! Both meters are backed by `mbac-metrics` instruments, so their state
//! can be exported into a [`mbac_metrics::MetricsSnapshot`] (see
//! [`OverflowMeter::export_into`]) and merged across runs.

use mbac_metrics::{Aggregated, Counter, Histogram, MetricValue, MetricsSnapshot};
use mbac_num::{q, wilson_ci, ConfidenceInterval};

/// How the final overflow estimate was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfMethod {
    /// Direct relative frequency of overflow samples (criterion (a)).
    Direct,
    /// Gaussian-tail fallback `Q((c−μ̂)/σ̂)` (criterion (b)).
    GaussianTail,
}

/// Why sampling stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The ±20% CI criterion was met.
    CiConverged,
    /// The estimate fell ≥ 2 orders below target.
    FarBelowTarget,
    /// The configured sample budget ran out first.
    BudgetExhausted,
}

/// Final overflow-probability estimate.
#[derive(Debug, Clone, Copy)]
pub struct PfEstimate {
    /// The estimate itself.
    pub value: f64,
    /// The direct-frequency confidence interval (always reported, even
    /// when the Gaussian-tail value is the headline estimate).
    pub ci: ConfidenceInterval,
    /// How `value` was obtained.
    pub method: PfMethod,
    /// Why sampling stopped.
    pub stopped: StopReason,
    /// Number of spaced samples used.
    pub samples: u64,
    /// Number of overflow events among them.
    pub overflows: u64,
}

/// Streaming overflow meter, backed by `mbac-metrics` instruments: the
/// sampled load feeds a [`Histogram`] (moments for the Gaussian tail,
/// log-bins for the distribution), overflow events a [`Counter`].
#[derive(Debug, Clone)]
pub struct OverflowMeter {
    capacity: f64,
    target: f64,
    level: f64,
    rel_width: f64,
    min_samples: u64,
    overflows: Counter,
    load: Histogram,
}

impl OverflowMeter {
    /// Creates a meter for a link of the given capacity and QoS target
    /// `p_q`, using the paper's constants (95% level, ±20% relative
    /// width, two orders of magnitude for criterion (b)).
    pub fn new(capacity: f64, target: f64) -> Self {
        assert!(capacity > 0.0);
        assert!(target > 0.0 && target < 1.0);
        OverflowMeter {
            capacity,
            target,
            level: 0.95,
            rel_width: 0.20,
            min_samples: 50,
            overflows: Counter::new(),
            load: Histogram::new(),
        }
    }

    /// Overrides the minimum sample count before termination checks
    /// (default 50).
    pub fn with_min_samples(mut self, n: u64) -> Self {
        self.min_samples = n;
        self
    }

    /// Records one spaced sample of the aggregate load.
    pub fn record(&mut self, aggregate_load: f64) {
        if aggregate_load > self.capacity {
            self.overflows.inc();
        }
        self.load.record(aggregate_load);
    }

    /// Number of samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.load.count()
    }

    /// Number of overflow events recorded so far.
    pub fn overflows(&self) -> u64 {
        self.overflows.get()
    }

    /// Mean utilization observed so far (mean load / capacity).
    pub fn mean_utilization(&self) -> f64 {
        if self.samples() == 0 {
            0.0
        } else {
            self.load.snapshot().mean() / self.capacity
        }
    }

    /// The Gaussian-tail estimate `Q((c − μ̂_S)/σ̂_S)` from the sampled
    /// aggregate-load statistics (the paper's small-`p_f` reporting
    /// path).
    ///
    /// Sentinels, so no `NaN` can leak into reports:
    /// * **empty meter** (`samples() == 0`) → `f64::NAN`, the documented
    ///   "no evidence" value — any probability here would be fabricated,
    ///   and callers that can reach this state must check `samples()`
    ///   first ([`finalize`](Self::finalize) already asserts it);
    /// * **degenerate load** (zero sample variance) → the point mass
    ///   either clears capacity or it doesn't: `1.0` if the constant
    ///   load exceeds `c`, else `0.0`.
    pub fn gaussian_tail_estimate(&self) -> f64 {
        if self.samples() == 0 {
            return f64::NAN;
        }
        let s = self.load.snapshot();
        let sd = s.std_dev();
        if sd <= 0.0 {
            return if s.mean() > self.capacity { 1.0 } else { 0.0 };
        }
        q((self.capacity - s.mean()) / sd)
    }

    /// Exports the meter's state into a metrics snapshot under
    /// `<prefix>.samples`, `<prefix>.overflows`, `<prefix>.load`.
    pub fn export_into(&self, prefix: &str, out: &mut MetricsSnapshot) {
        let mut samples = Counter::new();
        samples.add(self.samples());
        out.insert(
            format!("{prefix}.samples"),
            MetricValue::Counter(samples.snapshot()),
        );
        out.insert(
            format!("{prefix}.overflows"),
            MetricValue::Counter(self.overflows.snapshot()),
        );
        out.insert(
            format!("{prefix}.load"),
            MetricValue::Histogram(self.load.snapshot()),
        );
    }

    /// Checks the termination criteria. Returns `Some(reason)` when
    /// sampling may stop.
    pub fn should_stop(&self) -> Option<StopReason> {
        if self.samples() < self.min_samples {
            return None;
        }
        let ci = wilson_ci(self.overflows(), self.samples(), self.level);
        if self.overflows() > 0 && ci.relative_half_width() <= self.rel_width {
            return Some(StopReason::CiConverged);
        }
        // Criterion (b): estimate + CI at least two orders below target.
        if ci.estimate + ci.half_width() <= self.target * 1e-2 {
            return Some(StopReason::FarBelowTarget);
        }
        None
    }

    /// Produces the final estimate, applying the paper's reporting rule
    /// for the given stop reason.
    pub fn finalize(&self, stopped: StopReason) -> PfEstimate {
        assert!(self.samples() > 0, "cannot finalize an empty meter");
        let ci = wilson_ci(self.overflows(), self.samples(), self.level);
        let (value, method) = match stopped {
            StopReason::CiConverged => (ci.estimate, PfMethod::Direct),
            StopReason::FarBelowTarget => (self.gaussian_tail_estimate(), PfMethod::GaussianTail),
            StopReason::BudgetExhausted => {
                // Use the direct estimate when it has real support,
                // otherwise fall back to the parametric tail.
                if self.overflows() >= 10 {
                    (ci.estimate, PfMethod::Direct)
                } else {
                    (self.gaussian_tail_estimate(), PfMethod::GaussianTail)
                }
            }
        };
        PfEstimate {
            value,
            ci,
            method,
            stopped,
            samples: self.samples(),
            overflows: self.overflows(),
        }
    }
}

/// Streaming meter for the utility-based QoS metric (paper §7 /
/// `mbac_core::utility`): records the perceived utility of the
/// proportional bandwidth share `min(1, c/S)` at each spaced sample.
#[derive(Debug, Clone)]
pub struct UtilityMeter {
    capacity: f64,
    utility: mbac_core::utility::UtilityFunction,
    stats: Histogram,
}

impl UtilityMeter {
    /// Creates a meter for the given link capacity and utility model.
    pub fn new(capacity: f64, utility: mbac_core::utility::UtilityFunction) -> Self {
        assert!(capacity > 0.0);
        UtilityMeter {
            capacity,
            utility,
            stats: Histogram::new(),
        }
    }

    /// Records one spaced sample of the aggregate demand.
    pub fn record(&mut self, aggregate_load: f64) {
        let share = if aggregate_load <= 0.0 {
            1.0
        } else {
            (self.capacity / aggregate_load).min(1.0)
        };
        self.stats.record(self.utility.eval(share));
    }

    /// Mean realized utility so far (0 when empty).
    pub fn mean_utility(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.snapshot().mean()
        }
    }

    /// Mean utility loss `ε̂ = 1 − mean utility` — the §7 QoS metric.
    pub fn mean_loss(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            1.0 - self.mean_utility()
        }
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.stats.count()
    }

    /// Exports the realized-utility distribution into a metrics snapshot
    /// under `<prefix>.utility`.
    pub fn export_into(&self, prefix: &str, out: &mut MetricsSnapshot) {
        out.insert(
            format!("{prefix}.utility"),
            MetricValue::Histogram(self.stats.snapshot()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_core::utility::UtilityFunction;

    #[test]
    fn utility_meter_hard_equals_overflow_frequency() {
        let mut um = UtilityMeter::new(10.0, UtilityFunction::Hard);
        let mut om = OverflowMeter::new(10.0, 1e-2);
        for &load in &[8.0, 9.0, 11.0, 12.0, 10.0, 9.5, 13.0] {
            um.record(load);
            om.record(load);
        }
        let freq = om.overflows() as f64 / om.samples() as f64;
        assert!((um.mean_loss() - freq).abs() < 1e-12);
    }

    #[test]
    fn utility_meter_elastic_partial_credit() {
        let mut um = UtilityMeter::new(10.0, UtilityFunction::Elastic { exponent: 1.0 });
        um.record(20.0); // share 0.5, utility 0.5
        um.record(5.0); // share 1, utility 1
        assert!((um.mean_utility() - 0.75).abs() < 1e-12);
        assert!((um.mean_loss() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utility_meter_empty_is_lossless() {
        let um = UtilityMeter::new(10.0, UtilityFunction::Hard);
        assert_eq!(um.mean_loss(), 0.0);
        assert_eq!(um.samples(), 0);
    }

    #[test]
    fn counts_overflows_against_capacity() {
        let mut m = OverflowMeter::new(10.0, 1e-2);
        m.record(9.0);
        m.record(11.0);
        m.record(10.0); // equal is NOT overflow (strictly greater)
        assert_eq!(m.samples(), 3);
        assert_eq!(m.overflows(), 1);
    }

    #[test]
    fn ci_criterion_triggers_with_enough_hits() {
        let mut m = OverflowMeter::new(1.0, 1e-2);
        // 10% overflow rate, many samples: CI tightens below ±20%.
        for i in 0..2000 {
            m.record(if i % 10 == 0 { 2.0 } else { 0.5 });
        }
        assert_eq!(m.should_stop(), Some(StopReason::CiConverged));
        let est = m.finalize(StopReason::CiConverged);
        assert_eq!(est.method, PfMethod::Direct);
        assert!((est.value - 0.1).abs() < 0.02);
    }

    #[test]
    fn far_below_target_triggers_without_hits() {
        let mut m = OverflowMeter::new(100.0, 1e-2);
        // No overflows at all; loads well below capacity. With zero
        // successes the Wilson upper bound is ≈ z²/(2n), so reaching
        // two orders below a 1e-2 target needs n ≳ 2·10⁴ samples.
        for _ in 0..30_000 {
            m.record(50.0);
        }
        assert_eq!(m.should_stop(), Some(StopReason::FarBelowTarget));
        let est = m.finalize(StopReason::FarBelowTarget);
        assert_eq!(est.method, PfMethod::GaussianTail);
    }

    #[test]
    fn gaussian_tail_estimate_matches_formula() {
        let mut m = OverflowMeter::new(10.0, 1e-3);
        // Loads alternating 8 ± 1: mean 8, sd ≈ 1.
        for i in 0..10_000 {
            m.record(if i % 2 == 0 { 7.0 } else { 9.0 });
        }
        let g = m.gaussian_tail_estimate();
        let want = q((10.0 - 8.0) / 1.0);
        assert!((g / want - 1.0).abs() < 0.01, "got {g}, want {want}");
    }

    #[test]
    fn no_stop_before_min_samples() {
        let mut m = OverflowMeter::new(1.0, 1e-2).with_min_samples(100);
        for _ in 0..99 {
            m.record(0.0);
        }
        assert_eq!(m.should_stop(), None);
    }

    #[test]
    fn budget_exhausted_uses_direct_when_supported() {
        let mut m = OverflowMeter::new(1.0, 1e-3);
        for i in 0..100 {
            m.record(if i < 15 { 2.0 } else { 0.5 });
        }
        let est = m.finalize(StopReason::BudgetExhausted);
        assert_eq!(est.method, PfMethod::Direct);
        assert_eq!(est.overflows, 15);
    }

    #[test]
    fn budget_exhausted_falls_back_to_tail_when_unsupported() {
        let mut m = OverflowMeter::new(10.0, 1e-3);
        for i in 0..100 {
            m.record(5.0 + (i % 7) as f64 * 0.1);
        }
        let est = m.finalize(StopReason::BudgetExhausted);
        assert_eq!(est.method, PfMethod::GaussianTail);
    }

    #[test]
    fn utilization_is_mean_load_over_capacity() {
        let mut m = OverflowMeter::new(10.0, 1e-2);
        m.record(4.0);
        m.record(6.0);
        assert!((m.mean_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_constant_load() {
        let mut m = OverflowMeter::new(10.0, 1e-2);
        for _ in 0..100 {
            m.record(5.0);
        }
        assert_eq!(m.gaussian_tail_estimate(), 0.0);
        let mut m2 = OverflowMeter::new(10.0, 1e-2);
        for _ in 0..100 {
            m2.record(15.0);
        }
        assert_eq!(m2.gaussian_tail_estimate(), 1.0);
    }

    #[test]
    fn empty_meter_tail_is_the_nan_sentinel() {
        // No samples ⇒ no evidence: the documented sentinel is NaN, not
        // a fabricated probability.
        let m = OverflowMeter::new(10.0, 1e-2);
        assert!(m.gaussian_tail_estimate().is_nan());
        assert_eq!(m.samples(), 0);
        assert_eq!(m.mean_utilization(), 0.0);
        assert_eq!(m.should_stop(), None);
    }

    #[test]
    fn single_and_constant_samples_never_produce_nan() {
        // One sample: variance is 0 by convention ⇒ degenerate step.
        let mut m = OverflowMeter::new(10.0, 1e-2);
        m.record(5.0);
        assert_eq!(m.gaussian_tail_estimate(), 0.0);
        let mut m2 = OverflowMeter::new(10.0, 1e-2);
        m2.record(15.0);
        assert_eq!(m2.gaussian_tail_estimate(), 1.0);
        // Constant load exactly at capacity is not an overflow (strict
        // inequality) and the tail collapses to 0.
        let mut m3 = OverflowMeter::new(10.0, 1e-2);
        for _ in 0..10 {
            m3.record(10.0);
        }
        assert_eq!(m3.overflows(), 0);
        assert_eq!(m3.gaussian_tail_estimate(), 0.0);
        let est = m3.finalize(StopReason::BudgetExhausted);
        assert!(est.value.is_finite());
    }

    #[test]
    fn meter_exports_instrument_backed_state() {
        use mbac_metrics::MetricValue;
        let mut m = OverflowMeter::new(10.0, 1e-2);
        for &load in &[8.0, 11.0, 9.0, 12.0] {
            m.record(load);
        }
        let mut snap = mbac_metrics::MetricsSnapshot::new();
        m.export_into("sim.pf", &mut snap);
        match snap.get("sim.pf.samples") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 4),
            other => panic!("{other:?}"),
        }
        match snap.get("sim.pf.overflows") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 2),
            other => panic!("{other:?}"),
        }
        match snap.get("sim.pf.load") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 4);
                assert_eq!(h.min, 8.0);
                assert_eq!(h.max, 12.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
