//! A deterministic discrete-event queue.
//!
//! Minimal and fully owned (smoltcp-style): events are `(time, payload)`
//! pairs popped in time order, with FIFO tie-breaking via a monotone
//! sequence number so that simultaneous events replay identically across
//! runs — a prerequisite for seed-reproducible simulations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry (internal).
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time: the time of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or lies in the past.
    pub fn schedule_at(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` at `now + delay`.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (the clock is kept).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop().unwrap(), (1.0, "a"));
        assert_eq!(q.pop().unwrap(), (2.0, "b"));
        assert_eq!(q.pop().unwrap(), (3.0, "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "first");
        q.pop();
        q.schedule_in(5.0, "second");
        assert_eq!(q.pop().unwrap(), (15.0, "second"));
    }

    #[test]
    #[should_panic]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, ());
        q.pop();
        q.schedule_at(5.0, ());
    }

    #[test]
    #[should_panic]
    fn rejects_nan_time() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(f64::NAN, ());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(2.0, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(4.0, 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule_at(2.0, 2); // between popped 1.0 and pending 4.0
        q.schedule_at(3.0, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }
}
