//! Scenario-as-request-stream adapter: replays the simulator's traffic
//! models as a *decision-plane workload*.
//!
//! The serve crate needs realistic admission traffic — links whose
//! measured load evolves like the paper's RCBR/AR(1)/trace sources,
//! interleaved with admission requests. [`RequestLoad`] produces exactly
//! that by running one [`FlowTable`](crate::flows::FlowTable) per link
//! through the [`Scenario`] pipeline: each replication *is* one link,
//! evolving `flows_per_link` flows with exponential holding-time churn
//! and emitting, per measurement tick, one [`LinkEvent::Measure`]
//! snapshot followed by `requests_per_tick` [`LinkEvent::Request`]s.
//!
//! Because generation rides the Session pipeline, a workload is
//! **bit-identical for any worker count and either flow engine** (the
//! `rep_seed` determinism contract), so the serve invariance tests can
//! generate their streams in parallel without weakening the comparison.
//!
//! # Ordering contract
//!
//! The scientific content of a workload is **per-link order**: each
//! link's interleaving of measurements and requests is what the
//! controller's decision sequence depends on. Cross-link order is
//! deliberately unspecified — the decision plane is free to interleave
//! links arbitrarily (that is the whole point of sharding), and
//! [`ServeWorkload::canonical_events`] provides one fixed round-robin
//! merge as the serial-reference order.

use crate::session::{require_positive, ConfigError, RepContext, Scenario};
use crate::telemetry::MetricsSink;
use mbac_num::rng::exponential;
use mbac_traffic::process::SourceModel;

/// One event in a link's serve workload, in per-link order.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkEvent {
    /// A measurement snapshot: the per-flow instantaneous rates on the
    /// link at time `t` (the estimator input of eqn (23)).
    Measure {
        /// Absolute measurement time.
        t: f64,
        /// Per-flow rates; the length is the link's occupancy.
        rates: Box<[f64]>,
    },
    /// An admission request arriving at time `t`.
    Request {
        /// Absolute arrival time.
        t: f64,
    },
}

/// Configuration of the request-stream workload.
#[derive(Debug, Clone)]
pub struct RequestLoadConfig {
    /// Number of links (one replication — one RNG stream — per link).
    pub links: usize,
    /// Steady-state flow population per link (churned, then topped up,
    /// every tick).
    pub flows_per_link: usize,
    /// Measurement ticks per link.
    pub ticks: usize,
    /// Measurement period `τ` (absolute times are `step · τ`).
    pub tick: f64,
    /// Admission requests emitted after each measurement.
    pub requests_per_tick: usize,
    /// Mean exponential holding time of the churned flows.
    pub mean_holding: f64,
    /// Base seed (the builder may override it).
    pub seed: u64,
}

/// The generated workload: per-link event streams, link `l` at index
/// `l` (link ids are replication indices).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWorkload {
    per_link: Vec<Vec<LinkEvent>>,
}

impl ServeWorkload {
    /// Number of links.
    pub fn links(&self) -> usize {
        self.per_link.len()
    }

    /// Link `link`'s event stream, in per-link order.
    pub fn events(&self, link: usize) -> &[LinkEvent] {
        &self.per_link[link]
    }

    /// Total admission requests across all links.
    pub fn total_requests(&self) -> usize {
        self.per_link
            .iter()
            .map(|evs| {
                evs.iter()
                    .filter(|e| matches!(e, LinkEvent::Request { .. }))
                    .count()
            })
            .sum()
    }

    /// Total events across all links.
    pub fn total_events(&self) -> usize {
        self.per_link.iter().map(Vec::len).sum()
    }

    /// The canonical serial-reference order: a round-robin merge by
    /// event index (`link 0 event 0, link 1 event 0, …, link 0 event 1,
    /// …`). Any order that preserves each link's own sequence yields the
    /// same per-link decisions (the serve invariance suite proves this);
    /// this one is the fixed reference the sharded plane is compared
    /// against.
    pub fn canonical_events(&self) -> impl Iterator<Item = (u64, &LinkEvent)> {
        let longest = self.per_link.iter().map(Vec::len).max().unwrap_or(0);
        (0..longest).flat_map(move |i| {
            self.per_link
                .iter()
                .enumerate()
                .filter_map(move |(link, evs)| evs.get(i).map(|e| (link as u64, e)))
        })
    }
}

/// The request-stream scenario: replication `r` generates link `r`'s
/// event stream from the source model's traffic.
pub struct RequestLoad<'a> {
    /// The per-flow traffic model (RCBR, AR(1), trace, …).
    pub model: &'a dyn SourceModel,
    /// Workload shape.
    pub cfg: RequestLoadConfig,
}

impl Scenario for RequestLoad<'_> {
    type Rep = Vec<LinkEvent>;
    type Report = ServeWorkload;

    fn validate(&self) -> Result<(), ConfigError> {
        if self.cfg.links == 0 {
            // One replication per link: zero links is zero replications.
            return Err(ConfigError::ZeroReplications);
        }
        if self.cfg.flows_per_link < 2 {
            return Err(ConfigError::TooFewFlows {
                got: self.cfg.flows_per_link,
            });
        }
        require_positive("ticks", self.cfg.ticks as f64)?;
        require_positive("tick", self.cfg.tick)?;
        require_positive("mean holding time", self.cfg.mean_holding)?;
        Ok(())
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn replications(&self) -> usize {
        self.cfg.links
    }

    fn run_rep(&self, ctx: &RepContext, _sink: &mut MetricsSink) -> Vec<LinkEvent> {
        let cfg = &self.cfg;
        let mut rng = ctx.rng();
        let mut table = ctx.table();
        let mut snap = ctx.scratch_rates();
        // Seed population with exponential residual holding times.
        for _ in 0..cfg.flows_per_link {
            let hold = exponential(&mut rng, cfg.mean_holding);
            table.admit(self.model, hold, &mut rng);
        }
        let mut events = Vec::with_capacity(cfg.ticks * (1 + cfg.requests_per_tick));
        for step in 1..=cfg.ticks {
            let now = step as f64 * cfg.tick;
            table.advance_to(now, &mut rng);
            table.depart_until(now);
            // Churn: top the population back up, so the measured link
            // carries fresh flows but a stable occupancy.
            while table.len() < cfg.flows_per_link {
                let hold = exponential(&mut rng, cfg.mean_holding);
                table.admit(self.model, now + hold, &mut rng);
            }
            table.snapshot_into(&mut snap);
            events.push(LinkEvent::Measure {
                t: now,
                rates: snap.as_slice().into(),
            });
            for _ in 0..cfg.requests_per_tick {
                events.push(LinkEvent::Request { t: now });
            }
        }
        events
    }

    fn fold(&self, reps: Vec<Vec<LinkEvent>>) -> ServeWorkload {
        ServeWorkload { per_link: reps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn config() -> RequestLoadConfig {
        RequestLoadConfig {
            links: 3,
            flows_per_link: 8,
            ticks: 20,
            tick: 0.5,
            requests_per_tick: 2,
            mean_holding: 5.0,
            seed: 11,
        }
    }

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    #[test]
    fn workload_has_expected_shape() {
        let m = model();
        let load = RequestLoad {
            model: &m,
            cfg: config(),
        };
        let w = SessionBuilder::new().run(&load).unwrap();
        assert_eq!(w.links(), 3);
        assert_eq!(w.total_requests(), 3 * 20 * 2);
        assert_eq!(w.total_events(), 3 * 20 * 3);
        for link in 0..w.links() {
            let evs = w.events(link);
            // Per-link pattern: Measure, then requests_per_tick Requests.
            for (i, e) in evs.iter().enumerate() {
                match i % 3 {
                    0 => assert!(matches!(e, LinkEvent::Measure { .. })),
                    _ => assert!(matches!(e, LinkEvent::Request { .. })),
                }
            }
            // Occupancy is topped up to the target every tick.
            for e in evs {
                if let LinkEvent::Measure { rates, .. } = e {
                    assert_eq!(rates.len(), 8);
                }
            }
        }
    }

    #[test]
    fn workload_is_worker_and_engine_invariant() {
        let m = model();
        let load = RequestLoad {
            model: &m,
            cfg: config(),
        };
        let reference = SessionBuilder::new().workers(1).run(&load).unwrap();
        for workers in [2, 4] {
            let w = SessionBuilder::new().workers(workers).run(&load).unwrap();
            assert_eq!(w, reference, "diverged at {workers} workers");
        }
        let boxed = SessionBuilder::new()
            .engine(crate::session::Engine::Boxed)
            .run(&load)
            .unwrap();
        assert_eq!(boxed, reference, "boxed engine diverged");
    }

    #[test]
    fn canonical_order_is_round_robin_and_complete() {
        let m = model();
        let load = RequestLoad {
            model: &m,
            cfg: config(),
        };
        let w = SessionBuilder::new().run(&load).unwrap();
        let merged: Vec<(u64, &LinkEvent)> = w.canonical_events().collect();
        assert_eq!(merged.len(), w.total_events());
        // Per-link subsequence of the merge equals the link's own stream.
        for link in 0..w.links() {
            let sub: Vec<&LinkEvent> = merged
                .iter()
                .filter(|&&(l, _)| l == link as u64)
                .map(|&(_, e)| e)
                .collect();
            let own: Vec<&LinkEvent> = w.events(link).iter().collect();
            assert_eq!(sub, own);
        }
        assert_eq!(merged[0].0, 0);
        assert_eq!(merged[1].0, 1);
        assert_eq!(merged[2].0, 2);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let m = model();
        let mut cfg = config();
        cfg.links = 0;
        let err = RequestLoad {
            model: &m,
            cfg: cfg.clone(),
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroReplications);

        let mut cfg = config();
        cfg.flows_per_link = 1;
        assert!(matches!(
            RequestLoad {
                model: &m,
                cfg: cfg.clone()
            }
            .validate(),
            Err(ConfigError::TooFewFlows { got: 1 })
        ));

        let mut cfg = config();
        cfg.tick = 0.0;
        assert!(matches!(
            RequestLoad { model: &m, cfg }.validate(),
            Err(ConfigError::NonPositive { field: "tick", .. })
        ));
    }
}
