//! Scenario-as-request-stream adapter: replays the simulator's traffic
//! models as a *decision-plane workload*.
//!
//! The serve crate needs realistic admission traffic — links whose
//! measured load evolves like the paper's RCBR/AR(1)/trace sources,
//! interleaved with admission requests. [`RequestLoad`] produces exactly
//! that by running one [`FlowTable`](crate::flows::FlowTable) per link
//! through the [`Scenario`] pipeline: each replication *is* one link,
//! evolving `flows_per_link` flows with exponential holding-time churn
//! and emitting, per measurement tick, one [`LinkEvent::Measure`]
//! snapshot followed by `requests_per_tick` [`LinkEvent::Request`]s.
//!
//! [`RoutedLoad`] generalizes this to a [`Topology`]: one replication
//! per *route*, each evolving its own flow population, folded into
//! per-link event streams where a link's measurement is the
//! concatenation of every crossing route's flow snapshot (shared flows
//! ⇒ correlated load) perturbed by per-node measurement noise, and an
//! admission request on an `h`-hop route appears as one
//! [`RoutedEvent::Request`] occurrence on *each* hop link, all carrying
//! the same global sequence number for the plane's two-phase commit.
//!
//! Because generation rides the Session pipeline, a workload is
//! **bit-identical for any worker count and either flow engine** (the
//! `rep_seed` determinism contract), so the serve invariance tests can
//! generate their streams in parallel without weakening the comparison.
//!
//! # Ordering contract
//!
//! The scientific content of a workload is **per-link order**: each
//! link's interleaving of measurements and requests is what the
//! controller's decision sequence depends on. Cross-link order is
//! deliberately unspecified — the decision plane is free to interleave
//! links arbitrarily (that is the whole point of sharding), and
//! [`ServeWorkload::canonical_events`] provides one fixed round-robin
//! merge as the serial-reference order. Routed workloads add one more
//! guarantee the two-phase commit relies on: each link's `Request`
//! occurrences are strictly increasing in `seq`.

use crate::session::{require_non_negative, require_positive, ConfigError, RepContext, Scenario};
use crate::telemetry::MetricsSink;
use mbac_core::topology::{LinkId, RouteId, Topology};
use mbac_num::rng::{exponential, normal};
use mbac_traffic::process::SourceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One event in a link's serve workload, in per-link order.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkEvent {
    /// A measurement snapshot: the per-flow instantaneous rates on the
    /// link at time `t` (the estimator input of eqn (23)).
    Measure {
        /// Absolute measurement time.
        t: f64,
        /// Per-flow rates; the length is the link's occupancy.
        rates: Box<[f64]>,
    },
    /// An admission request arriving at time `t`.
    Request {
        /// Absolute arrival time.
        t: f64,
    },
}

/// Configuration of the request-stream workload.
#[derive(Debug, Clone)]
pub struct RequestLoadConfig {
    /// Number of links (one replication — one RNG stream — per link).
    pub links: usize,
    /// Steady-state flow population per link (churned, then topped up,
    /// every tick).
    pub flows_per_link: usize,
    /// Measurement ticks per link.
    pub ticks: usize,
    /// Measurement period `τ` (absolute times are `step · τ`).
    pub tick: f64,
    /// Admission requests emitted after each measurement.
    pub requests_per_tick: usize,
    /// Mean exponential holding time of the churned flows.
    pub mean_holding: f64,
    /// Base seed (the builder may override it).
    pub seed: u64,
}

/// The generated workload: per-link event streams, link `l` at index
/// `l` (link ids are replication indices).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWorkload {
    per_link: Vec<Vec<LinkEvent>>,
}

impl ServeWorkload {
    /// Number of links.
    pub fn links(&self) -> usize {
        self.per_link.len()
    }

    /// All link ids, in index order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.per_link.len()).map(|l| LinkId(l as u32))
    }

    /// Link `link`'s event stream, in per-link order.
    pub fn events(&self, link: LinkId) -> &[LinkEvent] {
        &self.per_link[link.index()]
    }

    /// Total admission requests across all links.
    pub fn total_requests(&self) -> usize {
        self.per_link
            .iter()
            .map(|evs| {
                evs.iter()
                    .filter(|e| matches!(e, LinkEvent::Request { .. }))
                    .count()
            })
            .sum()
    }

    /// Total events across all links.
    pub fn total_events(&self) -> usize {
        self.per_link.iter().map(Vec::len).sum()
    }

    /// The canonical serial-reference order: a round-robin merge by
    /// event index (`link 0 event 0, link 1 event 0, …, link 0 event 1,
    /// …`). Any order that preserves each link's own sequence yields the
    /// same per-link decisions (the serve invariance suite proves this);
    /// this one is the fixed reference the sharded plane is compared
    /// against.
    pub fn canonical_events(&self) -> impl Iterator<Item = (LinkId, &LinkEvent)> {
        let longest = self.per_link.iter().map(Vec::len).max().unwrap_or(0);
        (0..longest).flat_map(move |i| {
            self.per_link
                .iter()
                .enumerate()
                .filter_map(move |(link, evs)| evs.get(i).map(|e| (LinkId(link as u32), e)))
        })
    }
}

/// One per-tick churn step shared by [`RequestLoad`] and
/// [`RoutedLoad`]: the exact sequence of table/RNG operations is the
/// compatibility contract — a single-link routed workload must consume
/// the identical random stream and therefore produce bit-identical
/// rate snapshots.
fn evolve_rate_snapshots(
    model: &dyn SourceModel,
    flows: usize,
    ticks: usize,
    tick: f64,
    mean_holding: f64,
    ctx: &RepContext,
) -> Vec<Box<[f64]>> {
    let mut rng = ctx.rng();
    let mut table = ctx.table();
    let mut snap = ctx.scratch_rates();
    // Seed population with exponential residual holding times.
    for _ in 0..flows {
        let hold = exponential(&mut rng, mean_holding);
        table.admit(model, hold, &mut rng);
    }
    let mut out = Vec::with_capacity(ticks);
    for step in 1..=ticks {
        let now = step as f64 * tick;
        table.advance_to(now, &mut rng);
        table.depart_until(now);
        // Churn: top the population back up, so the measured link
        // carries fresh flows but a stable occupancy.
        while table.len() < flows {
            let hold = exponential(&mut rng, mean_holding);
            table.admit(model, now + hold, &mut rng);
        }
        table.snapshot_into(&mut snap);
        out.push(snap.as_slice().into());
    }
    out
}

/// The request-stream scenario: replication `r` generates link `r`'s
/// event stream from the source model's traffic.
pub struct RequestLoad<'a> {
    /// The per-flow traffic model (RCBR, AR(1), trace, …).
    pub model: &'a dyn SourceModel,
    /// Workload shape.
    pub cfg: RequestLoadConfig,
}

impl Scenario for RequestLoad<'_> {
    type Rep = Vec<LinkEvent>;
    type Report = ServeWorkload;

    fn validate(&self) -> Result<(), ConfigError> {
        if self.cfg.links == 0 {
            // One replication per link: zero links is zero replications.
            return Err(ConfigError::ZeroReplications);
        }
        if self.cfg.flows_per_link < 2 {
            return Err(ConfigError::TooFewFlows {
                got: self.cfg.flows_per_link,
            });
        }
        require_positive("ticks", self.cfg.ticks as f64)?;
        require_positive("tick", self.cfg.tick)?;
        require_positive("mean holding time", self.cfg.mean_holding)?;
        Ok(())
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn replications(&self) -> usize {
        self.cfg.links
    }

    fn run_rep(&self, ctx: &RepContext, _sink: &mut MetricsSink) -> Vec<LinkEvent> {
        let cfg = &self.cfg;
        let snapshots = evolve_rate_snapshots(
            self.model,
            cfg.flows_per_link,
            cfg.ticks,
            cfg.tick,
            cfg.mean_holding,
            ctx,
        );
        let mut events = Vec::with_capacity(cfg.ticks * (1 + cfg.requests_per_tick));
        for (step, rates) in snapshots.into_iter().enumerate() {
            let now = (step + 1) as f64 * cfg.tick;
            events.push(LinkEvent::Measure { t: now, rates });
            for _ in 0..cfg.requests_per_tick {
                events.push(LinkEvent::Request { t: now });
            }
        }
        events
    }

    fn fold(&self, reps: Vec<Vec<LinkEvent>>) -> ServeWorkload {
        ServeWorkload { per_link: reps }
    }
}

// ---------------------------------------------------------------------
// Routed workloads
// ---------------------------------------------------------------------

/// One event in a *routed* workload's per-link stream.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutedEvent {
    /// A measurement snapshot of the link: the concatenation of every
    /// crossing route's per-flow rates (route order), perturbed by this
    /// node's measurement noise. The length is the link's occupancy.
    Measure {
        /// Absolute measurement time.
        t: f64,
        /// Per-flow rates as measured at this node.
        rates: Box<[f64]>,
    },
    /// One hop's view of an admission request on `route`. A request on
    /// an `h`-hop route appears as `h` occurrences — one per hop link —
    /// all sharing the same `seq`; the decision plane joins them with
    /// its two-phase reserve/commit.
    Request {
        /// Absolute arrival time.
        t: f64,
        /// The route asking to admit one more flow.
        route: RouteId,
        /// Global request sequence number (strictly increasing within
        /// each link's stream — the deadlock-freedom invariant of the
        /// two-phase commit).
        seq: u64,
    },
}

/// Configuration of the routed request-stream workload.
#[derive(Debug, Clone)]
pub struct RoutedLoadConfig {
    /// The network: links with capacities, routes as hop lists. One
    /// replication — one RNG stream — per route.
    pub topology: Arc<Topology>,
    /// Steady-state flow population per route (churned, then topped
    /// up, every tick).
    pub flows_per_route: usize,
    /// Measurement ticks.
    pub ticks: usize,
    /// Measurement period `τ` (absolute times are `step · τ`).
    pub tick: f64,
    /// Admission requests emitted per route after each measurement.
    pub requests_per_tick: usize,
    /// Mean exponential holding time of the churned flows.
    pub mean_holding: f64,
    /// Standard deviation of the per-node measurement noise added to
    /// every rate sample independently at each link (0 disables noise
    /// — and consumes no random numbers, preserving single-link
    /// bit-compatibility with [`RequestLoad`]).
    pub noise_sd: f64,
    /// Base seed (the builder may override it).
    pub seed: u64,
}

impl RoutedLoadConfig {
    /// The one-link convenience: wraps a [`RequestLoadConfig`]-shaped
    /// workload (one link, one single-hop route, no measurement noise)
    /// in a [`Topology::single_link`]. The generated event stream is
    /// bit-identical to [`RequestLoad`]'s.
    pub fn single_link(capacity: f64, cfg: &RequestLoadConfig) -> Self {
        RoutedLoadConfig {
            topology: Arc::new(Topology::single_link(capacity)),
            flows_per_route: cfg.flows_per_link,
            ticks: cfg.ticks,
            tick: cfg.tick,
            requests_per_tick: cfg.requests_per_tick,
            mean_holding: cfg.mean_holding,
            noise_sd: 0.0,
            seed: cfg.seed,
        }
    }
}

/// The generated routed workload: per-link event streams over a shared
/// [`Topology`], plus the seq → route map the decision plane's route
/// table is built from.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedWorkload {
    topology: Arc<Topology>,
    per_link: Vec<Vec<RoutedEvent>>,
    request_routes: Vec<RouteId>,
}

impl RoutedWorkload {
    /// The topology the workload was generated over.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.per_link.len()
    }

    /// Link `link`'s event stream, in per-link order.
    pub fn events(&self, link: LinkId) -> &[RoutedEvent] {
        &self.per_link[link.index()]
    }

    /// The route of each request, indexed by `seq` — the total number
    /// of admission requests is this slice's length.
    pub fn request_routes(&self) -> &[RouteId] {
        &self.request_routes
    }

    /// Total admission requests (each counted once, not per hop).
    pub fn total_requests(&self) -> usize {
        self.request_routes.len()
    }

    /// Total per-link events (a multi-hop request counts once per hop).
    pub fn total_events(&self) -> usize {
        self.per_link.iter().map(Vec::len).sum()
    }

    /// The canonical serial-reference order: the same round-robin merge
    /// by event index as [`ServeWorkload::canonical_events`]. Each
    /// link's subsequence equals its own stream, which is all the
    /// routed plane's determinism argument needs.
    pub fn canonical_events(&self) -> impl Iterator<Item = (LinkId, &RoutedEvent)> {
        let longest = self.per_link.iter().map(Vec::len).max().unwrap_or(0);
        (0..longest).flat_map(move |i| {
            self.per_link
                .iter()
                .enumerate()
                .filter_map(move |(link, evs)| evs.get(i).map(|e| (LinkId(link as u32), e)))
        })
    }
}

/// Salt deriving the per-node noise streams from the workload seed
/// (disjoint from the per-route replication streams, which use the
/// session's `rep_seed` derivation).
const NOISE_STREAM_SALT: u64 = 0x6E65_745F_6C69_6E6B; // "net_link"

/// The routed request-stream scenario: replication `r` evolves route
/// `r`'s flow population; the fold assembles per-link streams with
/// correlated load and per-node noise.
pub struct RoutedLoad<'a> {
    /// The per-flow traffic model (RCBR, AR(1), trace, …).
    pub model: &'a dyn SourceModel,
    /// Workload shape.
    pub cfg: RoutedLoadConfig,
}

impl Scenario for RoutedLoad<'_> {
    type Rep = Vec<Box<[f64]>>;
    type Report = RoutedWorkload;

    fn validate(&self) -> Result<(), ConfigError> {
        self.cfg.topology.validate()?;
        if self.cfg.flows_per_route < 2 {
            return Err(ConfigError::TooFewFlows {
                got: self.cfg.flows_per_route,
            });
        }
        require_positive("ticks", self.cfg.ticks as f64)?;
        require_positive("tick", self.cfg.tick)?;
        require_positive("mean holding time", self.cfg.mean_holding)?;
        require_non_negative("noise standard deviation", self.cfg.noise_sd)?;
        Ok(())
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn replications(&self) -> usize {
        self.cfg.topology.routes()
    }

    fn run_rep(&self, ctx: &RepContext, _sink: &mut MetricsSink) -> Vec<Box<[f64]>> {
        let cfg = &self.cfg;
        evolve_rate_snapshots(
            self.model,
            cfg.flows_per_route,
            cfg.ticks,
            cfg.tick,
            cfg.mean_holding,
            ctx,
        )
    }

    fn fold(&self, reps: Vec<Vec<Box<[f64]>>>) -> RoutedWorkload {
        let cfg = &self.cfg;
        let topo = &cfg.topology;
        // One independent noise stream per link: the same flow measured
        // at two nodes sees different noise (per-node measurement
        // error), deterministically derived from the workload seed.
        let mut noise: Vec<StdRng> = topo
            .link_ids()
            .map(|l| {
                StdRng::seed_from_u64(crate::session::rep_seed(
                    cfg.seed ^ NOISE_STREAM_SALT,
                    l.as_u64(),
                ))
            })
            .collect();
        let mut per_link: Vec<Vec<RoutedEvent>> = (0..topo.links())
            .map(|_| Vec::with_capacity(cfg.ticks * (1 + cfg.requests_per_tick)))
            .collect();
        let mut request_routes =
            Vec::with_capacity(cfg.ticks * cfg.requests_per_tick * topo.routes());
        let mut seq = 0u64;
        for step in 1..=cfg.ticks {
            let now = step as f64 * cfg.tick;
            // Measurements: each link sees the union of its crossing
            // routes' flows (correlated load), through its own noise.
            for link in topo.link_ids() {
                let mut rates: Vec<f64> = Vec::new();
                for route in topo.routes_crossing(link) {
                    rates.extend_from_slice(&reps[route.index()][step - 1]);
                }
                if cfg.noise_sd > 0.0 {
                    let rng = &mut noise[link.index()];
                    for r in &mut rates {
                        *r = (*r + normal(rng, 0.0, cfg.noise_sd)).max(0.0);
                    }
                }
                per_link[link.index()].push(RoutedEvent::Measure {
                    t: now,
                    rates: rates.into(),
                });
            }
            // Requests: one occurrence per hop, shared seq, emitted in
            // seq order on every link (the two-phase commit's
            // monotonicity invariant).
            for route in topo.route_ids() {
                for _ in 0..cfg.requests_per_tick {
                    for &hop in topo.route(route) {
                        per_link[hop.index()].push(RoutedEvent::Request { t: now, route, seq });
                    }
                    request_routes.push(route);
                    seq += 1;
                }
            }
        }
        RoutedWorkload {
            topology: Arc::clone(topo),
            per_link,
            request_routes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn config() -> RequestLoadConfig {
        RequestLoadConfig {
            links: 3,
            flows_per_link: 8,
            ticks: 20,
            tick: 0.5,
            requests_per_tick: 2,
            mean_holding: 5.0,
            seed: 11,
        }
    }

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    #[test]
    fn workload_has_expected_shape() {
        let m = model();
        let load = RequestLoad {
            model: &m,
            cfg: config(),
        };
        let w = SessionBuilder::new().run(&load).unwrap();
        assert_eq!(w.links(), 3);
        assert_eq!(w.total_requests(), 3 * 20 * 2);
        assert_eq!(w.total_events(), 3 * 20 * 3);
        for link in w.link_ids() {
            let evs = w.events(link);
            // Per-link pattern: Measure, then requests_per_tick Requests.
            for (i, e) in evs.iter().enumerate() {
                match i % 3 {
                    0 => assert!(matches!(e, LinkEvent::Measure { .. })),
                    _ => assert!(matches!(e, LinkEvent::Request { .. })),
                }
            }
            // Occupancy is topped up to the target every tick.
            for e in evs {
                if let LinkEvent::Measure { rates, .. } = e {
                    assert_eq!(rates.len(), 8);
                }
            }
        }
    }

    #[test]
    fn workload_is_worker_and_engine_invariant() {
        let m = model();
        let load = RequestLoad {
            model: &m,
            cfg: config(),
        };
        let reference = SessionBuilder::new().workers(1).run(&load).unwrap();
        for workers in [2, 4] {
            let w = SessionBuilder::new().workers(workers).run(&load).unwrap();
            assert_eq!(w, reference, "diverged at {workers} workers");
        }
        let boxed = SessionBuilder::new()
            .engine(crate::session::Engine::Boxed)
            .run(&load)
            .unwrap();
        assert_eq!(boxed, reference, "boxed engine diverged");
    }

    #[test]
    fn canonical_order_is_round_robin_and_complete() {
        let m = model();
        let load = RequestLoad {
            model: &m,
            cfg: config(),
        };
        let w = SessionBuilder::new().run(&load).unwrap();
        let merged: Vec<(LinkId, &LinkEvent)> = w.canonical_events().collect();
        assert_eq!(merged.len(), w.total_events());
        // Per-link subsequence of the merge equals the link's own stream.
        for link in w.link_ids() {
            let sub: Vec<&LinkEvent> = merged
                .iter()
                .filter(|&&(l, _)| l == link)
                .map(|&(_, e)| e)
                .collect();
            let own: Vec<&LinkEvent> = w.events(link).iter().collect();
            assert_eq!(sub, own);
        }
        assert_eq!(merged[0].0, LinkId(0));
        assert_eq!(merged[1].0, LinkId(1));
        assert_eq!(merged[2].0, LinkId(2));
    }

    #[test]
    fn bad_configs_are_rejected() {
        let m = model();
        let mut cfg = config();
        cfg.links = 0;
        let err = RequestLoad {
            model: &m,
            cfg: cfg.clone(),
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroReplications);

        let mut cfg = config();
        cfg.flows_per_link = 1;
        assert!(matches!(
            RequestLoad {
                model: &m,
                cfg: cfg.clone()
            }
            .validate(),
            Err(ConfigError::TooFewFlows { got: 1 })
        ));

        let mut cfg = config();
        cfg.tick = 0.0;
        assert!(matches!(
            RequestLoad { model: &m, cfg }.validate(),
            Err(ConfigError::NonPositive { field: "tick", .. })
        ));
    }

    // -- routed workloads ------------------------------------------------

    fn routed_config(topology: Topology) -> RoutedLoadConfig {
        RoutedLoadConfig {
            topology: Arc::new(topology),
            flows_per_route: 6,
            ticks: 12,
            tick: 0.5,
            requests_per_tick: 2,
            mean_holding: 5.0,
            noise_sd: 0.05,
            seed: 11,
        }
    }

    #[test]
    fn routed_workload_has_expected_shape() {
        let m = model();
        let topo = Topology::parking_lot(3, 8.0);
        let load = RoutedLoad {
            model: &m,
            cfg: routed_config(topo.clone()),
        };
        let w = SessionBuilder::new().run(&load).unwrap();
        assert_eq!(w.links(), 3);
        // 4 routes × 12 ticks × 2 requests.
        assert_eq!(w.total_requests(), 4 * 12 * 2);
        for link in topo.link_ids() {
            let evs = w.events(link);
            // Each link carries the long route + its own cross traffic.
            let measures = evs
                .iter()
                .filter(|e| matches!(e, RoutedEvent::Measure { .. }))
                .count();
            assert_eq!(measures, 12);
            for e in evs {
                if let RoutedEvent::Measure { rates, .. } = e {
                    assert_eq!(rates.len(), 2 * 6, "two crossing routes of 6 flows");
                }
            }
            // Seq monotonicity: the two-phase commit's invariant.
            let seqs: Vec<u64> = evs
                .iter()
                .filter_map(|e| match e {
                    RoutedEvent::Request { seq, .. } => Some(*seq),
                    _ => None,
                })
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq must increase");
        }
        // Every multi-hop request appears once per hop.
        let occurrences: usize = w.total_events()
            - topo.links() * 12 // measures
            ;
        let expected: usize = w
            .request_routes()
            .iter()
            .map(|&r| topo.route(r).len())
            .sum();
        assert_eq!(occurrences, expected);
    }

    #[test]
    fn routed_workload_is_worker_and_engine_invariant() {
        let m = model();
        let load = RoutedLoad {
            model: &m,
            cfg: routed_config(Topology::star(4, 8.0)),
        };
        let reference = SessionBuilder::new().workers(1).run(&load).unwrap();
        for workers in [2, 4] {
            let w = SessionBuilder::new().workers(workers).run(&load).unwrap();
            assert_eq!(w, reference, "diverged at {workers} workers");
        }
        let boxed = SessionBuilder::new()
            .engine(crate::session::Engine::Boxed)
            .run(&load)
            .unwrap();
        assert_eq!(boxed, reference, "boxed engine diverged");
    }

    /// The compatibility contract satellite-tested end-to-end in the
    /// serve crate: a single-link routed workload reproduces
    /// [`RequestLoad`]'s measurement bits exactly.
    #[test]
    fn single_link_routed_matches_request_load_bits() {
        let m = model();
        let mut legacy_cfg = config();
        legacy_cfg.links = 1;
        let legacy = SessionBuilder::new()
            .run(&RequestLoad {
                model: &m,
                cfg: legacy_cfg.clone(),
            })
            .unwrap();
        let routed = SessionBuilder::new()
            .run(&RoutedLoad {
                model: &m,
                cfg: RoutedLoadConfig::single_link(8.0, &legacy_cfg),
            })
            .unwrap();
        let legacy_evs = legacy.events(LinkId(0));
        let routed_evs = routed.events(LinkId(0));
        assert_eq!(legacy_evs.len(), routed_evs.len());
        for (l, r) in legacy_evs.iter().zip(routed_evs) {
            match (l, r) {
                (
                    LinkEvent::Measure { t: lt, rates: lr },
                    RoutedEvent::Measure { t: rt, rates: rr },
                ) => {
                    assert_eq!(lt.to_bits(), rt.to_bits());
                    assert_eq!(lr.len(), rr.len());
                    for (a, b) in lr.iter().zip(rr.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "rate bits diverged");
                    }
                }
                (LinkEvent::Request { t: lt }, RoutedEvent::Request { t: rt, route, .. }) => {
                    assert_eq!(lt.to_bits(), rt.to_bits());
                    assert_eq!(*route, RouteId(0));
                }
                other => panic!("event kind mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn routed_bad_configs_are_rejected() {
        let m = model();
        let mut cfg = routed_config(Topology::single_link(8.0));
        cfg.noise_sd = -0.1;
        assert!(matches!(
            RoutedLoad { model: &m, cfg }.validate(),
            Err(ConfigError::Negative { .. })
        ));
        let mut cfg = routed_config(Topology::single_link(8.0));
        cfg.flows_per_route = 1;
        assert!(matches!(
            RoutedLoad { model: &m, cfg }.validate(),
            Err(ConfigError::TooFewFlows { got: 1 })
        ));
    }

    /// Per-node noise decorrelates the measurements two links take of
    /// the same shared flow.
    #[test]
    fn per_node_noise_differs_across_links() {
        let m = model();
        let topo = Topology::new(vec![8.0, 8.0], vec![vec![LinkId(0), LinkId(1)]]).unwrap();
        let mut cfg = routed_config(topo);
        cfg.noise_sd = 0.1;
        let w = SessionBuilder::new()
            .run(&RoutedLoad { model: &m, cfg })
            .unwrap();
        // Same route crosses both links: identical underlying rates,
        // different measured values.
        let (a, b) = (w.events(LinkId(0)), w.events(LinkId(1)));
        let mut any_diff = false;
        for (ea, eb) in a.iter().zip(b) {
            if let (
                RoutedEvent::Measure { rates: ra, .. },
                RoutedEvent::Measure { rates: rb, .. },
            ) = (ea, eb)
            {
                assert_eq!(ra.len(), rb.len());
                if ra.iter().zip(rb.iter()).any(|(x, y)| x != y) {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff, "independent per-node noise must decorrelate");
    }
}
