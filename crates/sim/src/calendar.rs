//! A hierarchical timing wheel over departure times — the flow table's
//! departure calendar.
//!
//! The legacy lifecycle kept one cached minimum per group and, on any
//! tick with a departure, rescanned every slot to apply expiries and
//! recompute the minimum — O(flows in system) per departing tick. At
//! 10⁶ concurrent flows with Poisson churn essentially *every* tick has
//! departures, so the simulator was O(N·ticks) again through the back
//! door. The calendar makes the lifecycle O(departures popped):
//!
//! * [`DepartureCalendar::schedule`] is O(1): quantize the absolute
//!   departure time to a bucket index and push a `(handle, time)` entry
//!   into the bucket at the level the index selects;
//! * [`DepartureCalendar::pop_until`] visits only the buckets whose
//!   time range has expired (plus cascades), never the live population;
//! * [`DepartureCalendar::peek_min`] reads the earliest non-empty
//!   bucket (found through per-level occupancy bitmasks) and folds the
//!   exact `f64` minimum over just that bucket's entries.
//!
//! ## Structure
//!
//! Times are quantized to `u64` units of `bucket_width` seconds. Level
//! `l` has 64 slots of width `64^l` units; an entry lives at the level
//! of the highest bit in which its quantized time differs from the
//! cursor (the classic hashed-wheel placement), so at any moment the
//! per-level slot ranges partition the future and the slot holding the
//! earliest entry is found by scanning levels bottom-up. With 11
//! levels the wheel covers the entire `u64` range — the hashed-wheel
//! "overflow" level is simply the top levels, and quantization
//! saturates there, so arbitrarily far-future *finite* times need no
//! side table. `INFINITY` (a flow that never departs, e.g. the
//! impulsive harness's persistent sources) is counted but never stored:
//! it cannot expire, and [`DepartureCalendar::peek_min`] reports
//! `INFINITY` when only such entries remain — exactly the legacy
//! cached-minimum semantics.
//!
//! When the cursor crosses a higher-level slot, that slot's entries
//! cascade down toward level 0; each entry cascades at most
//! `LEVELS` times over its lifetime, so scheduling stays amortized
//! O(1).
//!
//! ## Correctness does not depend on quantization
//!
//! Floating-point bucket math only *places* entries; expiry always
//! compares the exact stored `f64` against the exact query time. A
//! level-0 bucket reached by the cursor is filtered entry by entry:
//! whatever has `t ≤ now` pops, the rest is re-filed (clamped to the
//! cursor) and re-examined on a later call. Quantization monotonicity
//! (`t₁ ≤ t₂ ⇒ q(t₁) ≤ q(t₂)`, which `floor` of a monotone map
//! guarantees) is what makes the earliest-bucket minimum the *global*
//! minimum; nothing else is assumed about the mapping.

/// One scheduled departure: a stable flow handle (slot-map index owned
/// by the flow table) plus the exact absolute departure time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalendarEntry {
    /// Stable handle resolved through the owner's slot map.
    pub handle: u32,
    /// Exact absolute departure time (finite).
    pub departs_at: f64,
}

/// Slots per level (fixed at 64 so occupancy is one `u64` bitmask).
const SLOTS: usize = 64;
const SLOT_BITS: u32 = 6;
/// ceil(64 / 6): enough levels to cover the full `u64` index range.
const LEVELS: usize = 11;

/// Default level-0 bucket width in simulated seconds — a quarter time
/// unit, matching the canonical tick of the paper-scale simulations so
/// a level-0 bucket drains in about one tick. The width only shapes
/// constant factors (bucket occupancy vs cascade depth), never results.
pub const DEFAULT_BUCKET_WIDTH: f64 = 0.25;

/// Hierarchical timing wheel keyed on absolute departure times.
pub struct DepartureCalendar {
    /// `buckets[level][slot]`; entries are unordered within a bucket.
    buckets: Vec<Vec<Vec<CalendarEntry>>>,
    /// Per-level occupancy bitmask (bit `s` set ⇔ `buckets[l][s]` is
    /// non-empty) for O(1) earliest-slot lookup.
    occupied: [u64; LEVELS],
    /// Quantized current time; only ever advances.
    cursor: u64,
    /// Inverse bucket width, precomputed for the quantization divide.
    inv_width: f64,
    /// Finite entries currently scheduled.
    len: usize,
    /// Scratch for level-0 entries that outlive their popped bucket.
    leftovers: Vec<CalendarEntry>,
}

impl DepartureCalendar {
    /// An empty calendar with [`DEFAULT_BUCKET_WIDTH`].
    pub fn new() -> Self {
        Self::with_bucket_width(DEFAULT_BUCKET_WIDTH)
    }

    /// An empty calendar with level-0 buckets of `width` seconds.
    pub fn with_bucket_width(width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be positive and finite, got {width}"
        );
        DepartureCalendar {
            buckets: vec![vec![Vec::new(); SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            cursor: 0,
            inv_width: width.recip(),
            len: 0,
            leftovers: Vec::new(),
        }
    }

    /// Finite entries currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no finite entry is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Quantizes an absolute time, clamped so entries never land behind
    /// the cursor (`as` saturates at `u64::MAX` for far-future times,
    /// which simply parks them in the top level).
    #[inline]
    fn quantize(&self, t: f64) -> u64 {
        ((t * self.inv_width) as u64).max(self.cursor)
    }

    /// The level an index belongs to, relative to the cursor: the
    /// highest differing slot digit (level 0 when equal).
    #[inline]
    fn level_for(&self, q: u64) -> usize {
        let differing = self.cursor ^ q;
        if differing == 0 {
            0
        } else {
            (63 - differing.leading_zeros() as usize) / SLOT_BITS as usize
        }
    }

    #[inline]
    fn slot_of(q: u64, level: usize) -> usize {
        ((q >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    #[inline]
    fn file(&mut self, entry: CalendarEntry) {
        let q = self.quantize(entry.departs_at);
        let level = self.level_for(q);
        let slot = Self::slot_of(q, level);
        self.buckets[level][slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Schedules a departure at exact absolute time `departs_at`
    /// (finite; the caller keeps `INFINITY` flows out of the calendar —
    /// they cannot expire). O(1).
    pub fn schedule(&mut self, handle: u32, departs_at: f64) {
        debug_assert!(
            departs_at.is_finite(),
            "INFINITY never expires and must not be scheduled"
        );
        self.len += 1;
        self.file(CalendarEntry { handle, departs_at });
    }

    /// The earliest occupied bucket as `(level, slot, start_index)`, or
    /// `None` when the wheel is empty. Levels partition the future into
    /// disjoint, ascending ranges (see module docs), so the bottom-most
    /// occupied level's first occupied slot is globally earliest.
    fn earliest_bucket(&self) -> Option<(usize, usize, u64)> {
        for level in 0..LEVELS {
            let shift = SLOT_BITS as usize * level;
            let cursor_slot = Self::slot_of(self.cursor, level);
            // Entries at this level are never behind the cursor's slot;
            // the current slot itself is live only at level 0 (higher
            // levels would have cascaded it).
            let mask = if level == 0 {
                u64::MAX << cursor_slot
            } else {
                u64::MAX << cursor_slot << 1
            };
            let hits = self.occupied[level] & mask;
            if hits != 0 {
                let slot = hits.trailing_zeros() as usize;
                let above = SLOT_BITS as usize * (level + 1);
                let base = if above >= 64 {
                    0
                } else {
                    (self.cursor >> above) << above
                };
                return Some((level, slot, base + ((slot as u64) << shift)));
            }
        }
        None
    }

    /// The exact minimum scheduled departure time, or `INFINITY` when
    /// the calendar is empty. O(levels + entries in the earliest
    /// bucket).
    pub fn peek_min(&self) -> f64 {
        match self.earliest_bucket() {
            None => f64::INFINITY,
            Some((level, slot, _)) => self.buckets[level][slot]
                .iter()
                .map(|e| e.departs_at)
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Pops every entry with `departs_at ≤ t` into `expired` (in
    /// unspecified order — the flow table canonicalizes), advancing the
    /// cursor. O(entries popped + buckets cascaded), independent of the
    /// live population.
    pub fn pop_until(&mut self, t: f64, expired: &mut Vec<CalendarEntry>) {
        let target = self.quantize(t);
        debug_assert!(self.leftovers.is_empty());
        while let Some((level, slot, start)) = self.earliest_bucket() {
            if start > target {
                break;
            }
            // Advance to the bucket before redistributing so cascaded
            // entries re-file *below* this level and terminate.
            self.cursor = self.cursor.max(start);
            let mut bucket = std::mem::take(&mut self.buckets[level][slot]);
            self.occupied[level] &= !(1 << slot);
            if level == 0 {
                for entry in bucket.drain(..) {
                    if entry.departs_at <= t {
                        self.len -= 1;
                        expired.push(entry);
                    } else {
                        // Not yet due (same bucket as `t`, or a time
                        // whose quantization rounded down): survives,
                        // re-filed after the sweep so this loop cannot
                        // revisit it.
                        self.leftovers.push(entry);
                    }
                }
            } else {
                for entry in bucket.drain(..) {
                    self.file(entry);
                }
            }
            self.buckets[level][slot] = bucket;
        }
        self.cursor = self.cursor.max(target);
        while let Some(entry) = self.leftovers.pop() {
            self.file(entry);
        }
    }
}

impl Default for DepartureCalendar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cal: &mut DepartureCalendar, t: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        cal.pop_until(t, &mut out);
        let mut pairs: Vec<(u32, f64)> = out.iter().map(|e| (e.handle, e.departs_at)).collect();
        pairs.sort_by_key(|p| p.0);
        pairs
    }

    #[test]
    fn schedules_and_pops_in_time_windows() {
        let mut cal = DepartureCalendar::new();
        cal.schedule(0, 1.0);
        cal.schedule(1, 2.5);
        cal.schedule(2, 0.25);
        cal.schedule(3, 700.0);
        assert_eq!(cal.len(), 4);
        assert_eq!(cal.peek_min(), 0.25);
        assert_eq!(drain(&mut cal, 1.0), vec![(0, 1.0), (2, 0.25)]);
        assert_eq!(cal.peek_min(), 2.5);
        assert_eq!(drain(&mut cal, 2.0), vec![]);
        assert_eq!(drain(&mut cal, 1000.0), vec![(1, 2.5), (3, 700.0)]);
        assert!(cal.is_empty());
        assert_eq!(cal.peek_min(), f64::INFINITY);
    }

    #[test]
    fn expiry_is_inclusive_and_exact() {
        let mut cal = DepartureCalendar::new();
        cal.schedule(7, 3.0);
        // Just below the departure time: nothing pops, min intact.
        assert_eq!(drain(&mut cal, 3.0 - 1e-12), vec![]);
        assert_eq!(cal.peek_min(), 3.0);
        // Exactly at it: pops (the table's `departs_at <= t` contract).
        assert_eq!(drain(&mut cal, 3.0), vec![(7, 3.0)]);
    }

    #[test]
    fn duplicate_times_all_pop_together() {
        let mut cal = DepartureCalendar::new();
        for h in 0..5 {
            cal.schedule(h, 2.5);
        }
        assert_eq!(cal.peek_min(), 2.5);
        assert_eq!(drain(&mut cal, 2.5).len(), 5);
    }

    #[test]
    fn far_future_times_cascade_down_correctly() {
        let mut cal = DepartureCalendar::new();
        // Spread across every level, including a time that saturates
        // quantization into the top level.
        let times = [0.3, 17.0, 1_000.0, 65_000.0, 4.2e6, 2.7e8, 1.0e18, 9.0];
        for (h, &t) in times.iter().enumerate() {
            cal.schedule(h as u32, t);
        }
        let mut sorted = times;
        sorted.sort_by(f64::total_cmp);
        assert_eq!(cal.peek_min(), sorted[0]);
        // Pop strictly between each pair of consecutive times.
        let mut popped = Vec::new();
        for &t in &sorted {
            let got = drain(&mut cal, t);
            assert_eq!(got.len(), 1, "at t = {t}: {got:?}");
            assert_eq!(got[0].1, t);
            popped.push(got[0].1);
        }
        assert_eq!(popped, sorted);
        assert!(cal.is_empty());
    }

    #[test]
    fn peek_min_sees_near_term_entry_after_cursor_advance() {
        let mut cal = DepartureCalendar::new();
        cal.schedule(0, 100.0);
        drain(&mut cal, 50.0);
        // Scheduling "behind" coarse bucket boundaries after the cursor
        // moved must still be found first.
        cal.schedule(1, 51.0);
        assert_eq!(cal.peek_min(), 51.0);
        assert_eq!(drain(&mut cal, 60.0), vec![(1, 51.0)]);
        assert_eq!(cal.peek_min(), 100.0);
    }

    #[test]
    fn mixed_bucket_survivors_are_refiled_not_lost() {
        let mut cal = DepartureCalendar::with_bucket_width(1.0);
        // Same level-0 bucket, either side of the query time.
        cal.schedule(0, 5.2);
        cal.schedule(1, 5.8);
        assert_eq!(drain(&mut cal, 5.5), vec![(0, 5.2)]);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.peek_min(), 5.8);
        assert_eq!(drain(&mut cal, 5.8), vec![(1, 5.8)]);
    }

    #[test]
    fn brute_force_equivalence_on_an_irregular_schedule() {
        // Deterministic pseudo-random schedule vs a sorted-vec oracle.
        let mut cal = DepartureCalendar::new();
        let mut oracle: Vec<(u32, f64)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut now = 0.0;
        let mut next_handle = 0u32;
        for step in 0..2000 {
            if step % 3 != 2 {
                // Admit with an irregular holding time; occasionally
                // far-future, occasionally duplicate-at-now.
                let hold = match step % 7 {
                    0 => 0.0,
                    1 => 1e6 * rand(),
                    _ => 20.0 * rand(),
                };
                cal.schedule(next_handle, now + hold);
                oracle.push((next_handle, now + hold));
                next_handle += 1;
            } else {
                now += 2.0 * rand();
                let mut got = drain(&mut cal, now);
                got.sort_by_key(|p| p.0);
                let mut want: Vec<(u32, f64)> =
                    oracle.iter().copied().filter(|&(_, t)| t <= now).collect();
                want.sort_by_key(|p| p.0);
                oracle.retain(|&(_, t)| t > now);
                assert_eq!(got, want, "step {step}, now {now}");
            }
            let want_min = oracle.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
            assert_eq!(cal.peek_min(), want_min, "step {step}");
            assert_eq!(cal.len(), oracle.len());
        }
    }
}
