//! # mbac-sim — discrete-event simulator for MBAC on a bufferless link
//!
//! Implements the paper's three load models as [`session::Scenario`]
//! impls driven by one generic [`session::Session`] pipeline, with the
//! §5.2 measurement methodology built in:
//!
//! * [`runner::ImpulsiveLoad`] — impulsive load with infinite or
//!   exponential holding times (§3);
//! * [`runner::ContinuousLoad`] — continuous (infinite-arrival-rate)
//!   load, the paper's most stringent test (§4);
//! * [`arrivals::PoissonLoad`] — finite Poisson arrivals, the realistic
//!   relaxation;
//! * [`requests::RoutedLoad`] / [`network::RoutedNetworkLoad`] — routed
//!   multi-hop topologies: open-loop per-link event streams for the
//!   decision plane, and the closed-loop network simulation where
//!   admission composes across every hop of a [`Topology`] route;
//!
//! all run through a [`session::SessionBuilder`] that owns worker
//! fan-out, per-replication RNG stream derivation, deterministic
//! merging, and optional metrics collection. The substrate underneath:
//! a deterministic [`events::EventQueue`], the [`flows::FlowTable`]
//! lifecycle manager, the [`controller::MbacController`]
//! estimator/policy bundle, and [`metrics::OverflowMeter`] implementing
//! the paper's termination criteria (±20% CI at 95%, or the
//! Gaussian-tail fallback when the overflow probability is ≥ 2 orders
//! below target).
//!
//! Everything is seed-deterministic: identical configurations with
//! identical seeds reproduce bit-identical reports, for any worker
//! count and either flow engine.

#![warn(missing_docs)]

pub mod arrivals;
pub mod calendar;
pub mod controller;
pub mod events;
pub mod flows;
pub mod metrics;
pub mod network;
#[cfg(any(test, feature = "reference-table"))]
pub mod reference;
pub mod requests;
pub mod runner;
pub mod session;
pub mod telemetry;

pub use arrivals::{PoissonConfig, PoissonLoad, PoissonReport};
pub use calendar::DepartureCalendar;
pub use controller::{AdmissionEngine, MbacController, MeasuredSumController};
pub use events::EventQueue;
pub use flows::FlowTable;
pub use metrics::{OverflowMeter, PfEstimate, PfMethod, StopReason, UtilityMeter};
pub use network::{
    LinkStats, RouteStats, RoutedNetworkConfig, RoutedNetworkLoad, RoutedNetworkReport,
};
#[cfg(any(test, feature = "reference-table"))]
pub use reference::ReferenceFlowTable;
pub use requests::{
    LinkEvent, RequestLoad, RequestLoadConfig, RoutedEvent, RoutedLoad, RoutedLoadConfig,
    RoutedWorkload, ServeWorkload,
};
pub use runner::{
    ContinuousConfig, ContinuousLoad, ContinuousReport, ImpulsiveConfig, ImpulsiveLoad,
    ImpulsiveReport, PhaseReport, PhasedLoad,
};
pub use session::{
    rep_seed, ConfigError, Engine, MetricsMode, RepContext, Scenario, ScratchVec, Session,
    SessionBuilder,
};
pub use telemetry::{EntryGuard, MetricsSink, SimMetrics, TickEntry};

pub use mbac_core::topology::{LinkId, PathAdmission, RouteId, Topology};

#[allow(deprecated)]
pub use arrivals::run_poisson;
#[allow(deprecated)]
pub use runner::{
    run_continuous, run_continuous_in, run_continuous_metered, run_continuous_phased,
    run_impulsive, run_impulsive_metered, run_impulsive_with_workers,
};
