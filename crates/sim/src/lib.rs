//! # mbac-sim — discrete-event simulator for MBAC on a bufferless link
//!
//! Implements the paper's three load models as runnable harnesses with
//! the §5.2 measurement methodology built in:
//!
//! * [`runner::run_impulsive`] — impulsive load with infinite or
//!   exponential holding times (§3);
//! * [`runner::run_continuous`] — continuous (infinite-arrival-rate)
//!   load, the paper's most stringent test (§4);
//! * [`arrivals::run_poisson`] — finite Poisson arrivals, the realistic
//!   relaxation;
//!
//! plus the substrate: a deterministic [`events::EventQueue`], the
//! [`flows::FlowTable`] lifecycle manager, the
//! [`controller::MbacController`] estimator/policy bundle, and
//! [`metrics::OverflowMeter`] implementing the paper's termination
//! criteria (±20% CI at 95%, or the Gaussian-tail fallback when the
//! overflow probability is ≥ 2 orders below target).
//!
//! Everything is seed-deterministic: identical configurations with
//! identical seeds reproduce bit-identical reports.

#![warn(missing_docs)]

pub mod arrivals;
pub mod controller;
pub mod events;
pub mod flows;
pub mod metrics;
pub mod runner;
pub mod telemetry;

pub use arrivals::{run_poisson, PoissonConfig, PoissonReport};
pub use controller::{AdmissionEngine, MbacController, MeasuredSumController};
pub use events::EventQueue;
pub use flows::FlowTable;
pub use metrics::{OverflowMeter, PfEstimate, PfMethod, StopReason, UtilityMeter};
pub use runner::{
    run_continuous, run_continuous_in, run_continuous_metered, run_continuous_phased,
    run_impulsive, run_impulsive_metered, run_impulsive_with_workers, ContinuousConfig,
    ContinuousReport, ImpulsiveConfig, ImpulsiveReport, PhaseReport,
};
pub use telemetry::{MetricsSink, SimMetrics};
