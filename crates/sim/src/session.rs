//! The composable Scenario/Session pipeline: one orchestration layer
//! for every load model.
//!
//! A [`Scenario`] describes **one replication** of a simulation
//! (setup → evolve → observe) plus how per-replication outcomes fold
//! into a report. A [`Session`] — configured through [`SessionBuilder`]
//! — owns everything that used to be re-implemented per harness:
//!
//! * worker fan-out over replications ([`mbac_num::parallel`]),
//! * per-replication RNG stream derivation ([`rep_seed`], a SplitMix64
//!   mix of `(seed, rep)`),
//! * deterministic input-order merging of outcomes and metric
//!   snapshots,
//! * optional [`MetricsSink`] collection with the zero-cost disabled
//!   default,
//! * typed configuration validation ([`ConfigError`] instead of
//!   panicking `assert!`s).
//!
//! The three load models of the paper are `Scenario` impls —
//! [`crate::runner::ImpulsiveLoad`], [`crate::runner::ContinuousLoad`],
//! [`crate::arrivals::PoissonLoad`] — and new scenario types (trace
//! replay, multi-link, …) plug in without new `run_*` entry points.
//!
//! # Determinism contract
//!
//! For a fixed builder seed the session derives replication `rep`'s RNG
//! stream as `rep_seed(seed, rep)` and merges outcomes in replication
//! input order, so reports and merged metric snapshots are
//! **bit-identical for any worker count and either flow engine** —
//! parallelism and engine choice are implementation details, never a
//! change in scientific results. [`Session::run`] (parallel) and
//! [`Session::run_local`] (sequential, for scenarios that borrow
//! external mutable state) follow the same derivation and merge order
//! and therefore agree bit-for-bit.
//!
//! # Writing a new scenario
//!
//! ```
//! use mbac_sim::{ConfigError, MetricsSink, RepContext, Scenario, SessionBuilder};
//! use rand::Rng;
//!
//! /// Estimate the mean of `Uniform(0, width)` by Monte Carlo.
//! struct UniformMean {
//!     width: f64,
//!     draws_per_rep: usize,
//!     replications: usize,
//! }
//!
//! impl Scenario for UniformMean {
//!     type Rep = f64;
//!     type Report = f64;
//!
//!     fn validate(&self) -> Result<(), ConfigError> {
//!         if !(self.width > 0.0) {
//!             return Err(ConfigError::NonPositive { field: "width", value: self.width });
//!         }
//!         Ok(())
//!     }
//!
//!     fn replications(&self) -> usize {
//!         self.replications
//!     }
//!
//!     fn run_rep(&self, ctx: &RepContext, _sink: &mut MetricsSink) -> f64 {
//!         let mut rng = ctx.rng(); // stream derived from (seed, rep)
//!         (0..self.draws_per_rep)
//!             .map(|_| rng.gen::<f64>() * self.width)
//!             .sum::<f64>()
//!             / self.draws_per_rep as f64
//!     }
//!
//!     fn fold(&self, reps: Vec<f64>) -> f64 {
//!         reps.iter().sum::<f64>() / reps.len() as f64
//!     }
//! }
//!
//! let scenario = UniformMean { width: 2.0, draws_per_rep: 500, replications: 64 };
//! let mean = SessionBuilder::new().seed(7).run(&scenario).unwrap();
//! assert!((mean - 1.0).abs() < 0.05);
//! ```

use crate::flows::FlowTable;
use crate::telemetry::MetricsSink;
use mbac_metrics::MetricsSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Typed configuration errors
// ---------------------------------------------------------------------

/// A rejected simulation configuration.
///
/// Every harness used to `assert!` on user-supplied parameters; the
/// session layer validates instead and returns one of these, which the
/// CLI renders as a friendly message (exit code 1, no panic).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A field that must be strictly positive was zero, negative or NaN.
    NonPositive {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A field that must be non-negative was negative or NaN.
    Negative {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Fewer than two estimation flows: a variance needs two samples.
    TooFewFlows {
        /// The rejected flow count.
        got: usize,
    },
    /// An impulsive scenario with no observation times records nothing.
    EmptyObserveTimes,
    /// An observation time was negative or NaN.
    BadObserveTime {
        /// The rejected value.
        value: f64,
    },
    /// Zero replications requested.
    ZeroReplications,
    /// Zero workers requested.
    ZeroWorkers,
    /// An engine name that is neither `batched` nor `boxed`.
    UnknownEngine {
        /// The rejected name.
        name: String,
    },
    /// A phase schedule that is empty, unsorted, or does not start at 0.
    BadPhases {
        /// What is wrong with the schedule.
        reason: &'static str,
    },
    /// A malformed topology (routed scenarios re-validate the
    /// [`mbac_core::topology::Topology`] they were handed).
    Topology(mbac_core::topology::TopologyError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be non-negative, got {value}")
            }
            ConfigError::TooFewFlows { got } => write!(
                f,
                "at least 2 estimation flows are needed to estimate a variance, got {got}"
            ),
            ConfigError::EmptyObserveTimes => {
                write!(
                    f,
                    "observe times must not be empty: nothing would be recorded"
                )
            }
            ConfigError::BadObserveTime { value } => {
                write!(f, "observe times must be non-negative numbers, got {value}")
            }
            ConfigError::ZeroReplications => write!(f, "replications must be at least 1"),
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::UnknownEngine { name } => {
                write!(f, "engine must be batched or boxed, got {name}")
            }
            ConfigError::BadPhases { reason } => write!(f, "invalid phase schedule: {reason}"),
            ConfigError::Topology(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<mbac_core::topology::TopologyError> for ConfigError {
    fn from(e: mbac_core::topology::TopologyError) -> Self {
        ConfigError::Topology(e)
    }
}

/// Checks that `value` is strictly positive (rejects NaN).
pub(crate) fn require_positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::NonPositive { field, value })
    }
}

/// Checks that `value` is non-negative (rejects NaN).
pub(crate) fn require_non_negative(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value >= 0.0 {
        Ok(())
    } else {
        Err(ConfigError::Negative { field, value })
    }
}

// ---------------------------------------------------------------------
// Flow-engine selection
// ---------------------------------------------------------------------

/// Which flow-table engine a session's replications run on.
///
/// Both engines consume the RNG identically and produce bit-identical
/// simulations for the same seed (the equivalence tests in
/// [`crate::flows`] and `tests/statistical.rs` assert this); `Batched`
/// is the fast struct-of-arrays default, `Boxed` the one-heap-process-
/// per-flow reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Struct-of-arrays kernels grouped by batch key (the default).
    #[default]
    Batched,
    /// One boxed rate process per flow — the reference implementation.
    Boxed,
}

impl Engine {
    /// An empty flow table using this engine. Both engines share the
    /// timing-wheel departure calendar (see [`crate::calendar`]), so
    /// the engine choice affects only how rate processes are advanced,
    /// never lifecycle semantics or cost.
    pub fn table(self) -> FlowTable {
        match self {
            Engine::Batched => FlowTable::new(),
            Engine::Boxed => FlowTable::new_unbatched(),
        }
    }

    /// Parses an engine name (`batched` / `boxed`), as the CLI accepts.
    pub fn from_name(name: &str) -> Result<Engine, ConfigError> {
        match name {
            "batched" => Ok(Engine::Batched),
            "boxed" => Ok(Engine::Boxed),
            other => Err(ConfigError::UnknownEngine {
                name: other.to_string(),
            }),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Batched => "batched",
            Engine::Boxed => "boxed",
        })
    }
}

// ---------------------------------------------------------------------
// Per-replication RNG stream derivation
// ---------------------------------------------------------------------

/// The SplitMix64 finalizer: a bijective avalanche mix on `u64`.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives replication `rep`'s RNG seed from the session seed.
///
/// The naive `seed ^ rep` collides across nearby seeds — `(seed=2,
/// rep=1)` and `(seed=3, rep=0)` share a stream, so two experiments run
/// at adjacent seeds silently reuse replications. Passing both inputs
/// through SplitMix64 finalizers decorrelates the streams: `rep` is
/// avalanched before it touches `seed`, and the combined word is
/// avalanched again, so low-bit structure in either input cannot
/// produce related streams.
#[inline]
pub fn rep_seed(seed: u64, rep: u64) -> u64 {
    splitmix64(seed ^ splitmix64(rep))
}

/// Everything one replication needs from the session: its index, its
/// derived RNG seed, and the engine choice.
#[derive(Debug, Clone, Copy)]
pub struct RepContext {
    /// Replication index within the session, `0..replications`.
    pub rep: u64,
    /// The derived RNG seed for this replication ([`rep_seed`]).
    pub seed: u64,
    /// The flow engine the session was built with.
    pub engine: Engine,
}

impl RepContext {
    /// A fresh RNG on this replication's stream.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// An empty flow table on the session's engine.
    pub fn table(&self) -> FlowTable {
        self.engine.table()
    }

    /// An empty `f64` scratch buffer from this thread's arena.
    ///
    /// The buffer keeps whatever capacity its previous user grew it to
    /// and returns to the arena when dropped, so a scenario that takes
    /// its snapshot/rate buffers here performs its steady-state ticks
    /// allocation-free — and because the session's worker threads are
    /// persistent (see [`mbac_num::parallel`]), the capacity survives
    /// across replications *and across sessions* on the same thread.
    pub fn scratch_rates(&self) -> ScratchVec {
        ScratchVec::take()
    }
}

// ---------------------------------------------------------------------
// Per-thread scratch arena
// ---------------------------------------------------------------------

thread_local! {
    /// Pool of retired scratch buffers, per worker thread.
    static SCRATCH_F64: std::cell::RefCell<Vec<Vec<f64>>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// An `f64` buffer on loan from the thread's scratch arena: cleared on
/// take, capacity preserved, returned to the arena on drop. Derefs to
/// `Vec<f64>`, so it drops into any `&mut Vec<f64>` / `&[f64]` API.
#[derive(Debug)]
pub struct ScratchVec {
    buf: Vec<f64>,
}

impl ScratchVec {
    fn take() -> Self {
        let buf = SCRATCH_F64
            .with(|pool| match pool.try_borrow_mut() {
                Ok(mut pool) => pool.pop(),
                // Defensive: a re-entrant borrow (only possible from a
                // Drop running inside `take`) just allocates fresh.
                Err(_) => None,
            })
            .map(|mut v| {
                v.clear();
                v
            })
            .unwrap_or_default();
        ScratchVec { buf }
    }
}

impl Drop for ScratchVec {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        SCRATCH_F64.with(|pool| {
            if let Ok(mut pool) = pool.try_borrow_mut() {
                pool.push(buf);
            }
        });
    }
}

impl std::ops::Deref for ScratchVec {
    type Target = Vec<f64>;
    fn deref(&self) -> &Vec<f64> {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchVec {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.buf
    }
}

// ---------------------------------------------------------------------
// The Scenario trait
// ---------------------------------------------------------------------

/// One replication of a simulation experiment, plus how replications
/// fold into a report.
///
/// Implementations hold the experiment's configuration and borrowed
/// collaborators (source model, admission policy/engine). The session
/// calls [`validate`](Scenario::validate) exactly once before any work,
/// then [`run_rep`](Scenario::run_rep) once per replication (possibly
/// concurrently — see [`Session::run`] vs [`Session::run_local`]), then
/// [`fold`](Scenario::fold) with the outcomes in replication input
/// order.
pub trait Scenario {
    /// What one replication produces.
    type Rep: Send;
    /// The merged result across replications.
    type Report;

    /// Checks the configuration, returning the first problem found.
    fn validate(&self) -> Result<(), ConfigError> {
        Ok(())
    }

    /// The scenario's intrinsic base seed, used when the builder does
    /// not override it.
    fn seed(&self) -> u64 {
        0
    }

    /// Number of independent replications (default: a single run).
    fn replications(&self) -> usize {
        1
    }

    /// Runs one replication on its derived RNG stream, recording
    /// telemetry into `sink` (disabled unless the session enables
    /// collection).
    fn run_rep(&self, ctx: &RepContext, sink: &mut MetricsSink) -> Self::Rep;

    /// Folds per-replication outcomes — always in replication input
    /// order — into the report.
    fn fold(&self, reps: Vec<Self::Rep>) -> Self::Report;
}

// ---------------------------------------------------------------------
// Session driver
// ---------------------------------------------------------------------

/// Metrics collection mode of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// No collection; every record site costs one `Option` branch.
    #[default]
    Disabled,
    /// Collect the full instrument bundle (deterministic snapshots).
    Enabled,
    /// Collect including wall-clock timings (machine-dependent
    /// snapshots; see [`crate::telemetry::SimMetrics::with_timing`]).
    EnabledWithTiming,
    /// Collect like [`MetricsMode::Enabled`] *and* emit through the
    /// session's bounded streaming handle ([`SessionBuilder::stream`]):
    /// sampled raw entries plus cumulative interval flushes per
    /// replication. Aggregation is unchanged — snapshots stay
    /// bit-identical to `Enabled` — only the emission path differs.
    /// Without an attached handle this degrades to `Enabled`.
    Streaming,
}

/// A configured simulation driver: workers, seed policy, engine and
/// metrics mode. Built by [`SessionBuilder`]; immutable once built.
#[derive(Debug, Clone)]
pub struct Session {
    seed: Option<u64>,
    workers: usize,
    engine: Engine,
    metrics: MetricsMode,
    stream: Option<mbac_metrics::StreamHandle>,
}

impl Session {
    /// Runs the scenario's replications across the session's workers
    /// and folds the outcomes in input order. Requires `S: Sync`
    /// because replications may run concurrently; scenarios that borrow
    /// external mutable state use [`Session::run_local`] instead.
    pub fn run<S: Scenario + Sync>(&self, scenario: &S) -> Result<S::Report, ConfigError> {
        self.run_metered(scenario).map(|(report, _)| report)
    }

    /// [`Session::run`] plus the merged metrics snapshot (empty unless
    /// the session enables collection).
    ///
    /// In the timing-enabled mode the snapshot also carries the
    /// replication pool's per-worker accounting (items, own-deque
    /// chunks, steals, busy time, utilization — see
    /// [`crate::telemetry::pool_stats_snapshot`]). Like per-tick
    /// timings, pool accounting is machine- and worker-count-dependent,
    /// so the default deterministic snapshot excludes it.
    pub fn run_metered<S: Scenario + Sync>(
        &self,
        scenario: &S,
    ) -> Result<(S::Report, MetricsSnapshot), ConfigError> {
        let (seed, reps) = self.prepare(scenario)?;
        let (outcomes, pool) = mbac_num::parallel::parallel_map_with_stats(
            reps,
            |&rep| self.one_rep(scenario, seed, rep),
            self.workers,
        );
        let (report, mut merged) = self.finish(scenario, outcomes);
        if self.metrics == MetricsMode::EnabledWithTiming {
            merged.merge(&crate::telemetry::pool_stats_snapshot(&pool));
        }
        Ok((report, merged))
    }

    /// Runs every replication sequentially on the calling thread — for
    /// scenarios that borrow external mutable state (e.g. a caller's
    /// `&mut dyn AdmissionEngine`) and therefore cannot be `Sync`.
    /// Seed derivation and merge order match [`Session::run`] exactly,
    /// so the two paths produce bit-identical results.
    pub fn run_local<S: Scenario>(&self, scenario: &S) -> Result<S::Report, ConfigError> {
        self.run_local_metered(scenario).map(|(report, _)| report)
    }

    /// [`Session::run_local`] plus the merged metrics snapshot.
    pub fn run_local_metered<S: Scenario>(
        &self,
        scenario: &S,
    ) -> Result<(S::Report, MetricsSnapshot), ConfigError> {
        let (seed, reps) = self.prepare(scenario)?;
        let outcomes: Vec<_> = reps
            .iter()
            .map(|&rep| self.one_rep(scenario, seed, rep))
            .collect();
        Ok(self.finish(scenario, outcomes))
    }

    /// Validates the session and scenario; resolves the base seed and
    /// the replication index list.
    fn prepare<S: Scenario>(&self, scenario: &S) -> Result<(u64, Vec<u64>), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        scenario.validate()?;
        if scenario.replications() == 0 {
            return Err(ConfigError::ZeroReplications);
        }
        let seed = self.seed.unwrap_or_else(|| scenario.seed());
        Ok((seed, (0..scenario.replications() as u64).collect()))
    }

    /// Runs one replication on its derived stream with a fresh sink.
    fn one_rep<S: Scenario>(
        &self,
        scenario: &S,
        seed: u64,
        rep: u64,
    ) -> (S::Rep, Option<MetricsSnapshot>) {
        let ctx = RepContext {
            rep,
            seed: rep_seed(seed, rep),
            engine: self.engine,
        };
        let mut sink = match self.metrics {
            MetricsMode::Disabled => MetricsSink::disabled(),
            MetricsMode::Enabled => MetricsSink::enabled(),
            MetricsMode::EnabledWithTiming => MetricsSink::enabled_with_timing(),
            MetricsMode::Streaming => match &self.stream {
                Some(handle) => MetricsSink::streaming(handle.clone(), rep),
                None => MetricsSink::enabled(),
            },
        };
        let outcome = scenario.run_rep(&ctx, &mut sink);
        // Streaming sinks flush their final cumulative interval here,
        // after the scenario attached any end-of-rep extras.
        sink.finish_rep();
        let snapshot = sink.is_enabled().then(|| sink.snapshot());
        (outcome, snapshot)
    }

    /// Merges outcomes and snapshots in replication input order.
    fn finish<S: Scenario>(
        &self,
        scenario: &S,
        outcomes: Vec<(S::Rep, Option<MetricsSnapshot>)>,
    ) -> (S::Report, MetricsSnapshot) {
        let mut merged = MetricsSnapshot::new();
        let mut reps = Vec::with_capacity(outcomes.len());
        for (outcome, snapshot) in outcomes {
            if let Some(snapshot) = snapshot {
                merged.merge(&snapshot);
            }
            reps.push(outcome);
        }
        (scenario.fold(reps), merged)
    }
}

/// Fluent configuration for a [`Session`]: seed, workers, engine and
/// metrics mode. `capacity` and the other scientific parameters stay in
/// the scenario's own config — the builder only carries the
/// orchestration knobs.
///
/// ```
/// use mbac_sim::{Engine, SessionBuilder};
/// let session = SessionBuilder::new()
///     .seed(42)
///     .workers(4)
///     .engine(Engine::Batched)
///     .build();
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    seed: Option<u64>,
    workers: Option<usize>,
    engine: Engine,
    metrics: MetricsMode,
    stream: Option<mbac_metrics::StreamHandle>,
}

impl SessionBuilder {
    /// A builder with the defaults: the scenario's intrinsic seed, all
    /// available workers, the batched engine, metrics off.
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Overrides the scenario's intrinsic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Worker-thread count for parallel replication fan-out (default:
    /// [`mbac_num::parallel::default_workers`]). The report is
    /// bit-identical for any count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Flow-engine choice (default: [`Engine::Batched`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Metrics collection mode (default: [`MetricsMode::Disabled`]).
    pub fn metrics(mut self, mode: MetricsMode) -> Self {
        self.metrics = mode;
        self
    }

    /// Attaches a streaming emission handle (see
    /// [`mbac_metrics::StreamSink::handle`]) and selects
    /// [`MetricsMode::Streaming`]. Each replication becomes one
    /// producer stream, keyed by its index, so sampling decisions are
    /// invariant under worker count and engine choice.
    pub fn stream(mut self, handle: mbac_metrics::StreamHandle) -> Self {
        self.stream = Some(handle);
        self.metrics = MetricsMode::Streaming;
        self
    }

    /// Freezes the configuration into a [`Session`].
    pub fn build(&self) -> Session {
        Session {
            seed: self.seed,
            workers: self
                .workers
                .unwrap_or_else(mbac_num::parallel::default_workers),
            engine: self.engine,
            metrics: self.metrics,
            stream: self.stream.clone(),
        }
    }

    /// Builds and [`Session::run`]s in one call.
    pub fn run<S: Scenario + Sync>(&self, scenario: &S) -> Result<S::Report, ConfigError> {
        self.build().run(scenario)
    }

    /// Builds and [`Session::run_metered`]s in one call.
    pub fn run_metered<S: Scenario + Sync>(
        &self,
        scenario: &S,
    ) -> Result<(S::Report, MetricsSnapshot), ConfigError> {
        self.build().run_metered(scenario)
    }

    /// Builds and [`Session::run_local`]s in one call.
    pub fn run_local<S: Scenario>(&self, scenario: &S) -> Result<S::Report, ConfigError> {
        self.build().run_local(scenario)
    }

    /// Builds and [`Session::run_local_metered`]s in one call.
    pub fn run_local_metered<S: Scenario>(
        &self,
        scenario: &S,
    ) -> Result<(S::Report, MetricsSnapshot), ConfigError> {
        self.build().run_local_metered(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Sums `draws` uniform variates per replication; folds to the mean.
    struct Toy {
        draws: usize,
        replications: usize,
        base_seed: u64,
    }

    impl Scenario for Toy {
        type Rep = f64;
        type Report = Vec<f64>;

        fn seed(&self) -> u64 {
            self.base_seed
        }

        fn replications(&self) -> usize {
            self.replications
        }

        fn run_rep(&self, ctx: &RepContext, sink: &mut MetricsSink) -> f64 {
            let mut rng = ctx.rng();
            if let Some(m) = sink.get_mut() {
                m.ticks.inc();
            }
            (0..self.draws).map(|_| rng.gen::<f64>()).sum()
        }

        fn fold(&self, reps: Vec<f64>) -> Vec<f64> {
            reps
        }
    }

    #[test]
    fn rep_seed_avoids_xor_collisions() {
        // The seed^rep scheme collides for (2,1)/(3,0); the mix must not.
        assert_ne!(rep_seed(2, 1), rep_seed(3, 0));
        // Distinct reps under one seed get distinct streams.
        let streams: Vec<u64> = (0..1000).map(|rep| rep_seed(42, rep)).collect();
        let mut sorted = streams.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), streams.len());
    }

    #[test]
    fn parallel_and_local_paths_agree_exactly() {
        let toy = Toy {
            draws: 100,
            replications: 37,
            base_seed: 9,
        };
        let local = SessionBuilder::new().run_local(&toy).unwrap();
        for workers in [1, 2, 3, 8] {
            let par = SessionBuilder::new().workers(workers).run(&toy).unwrap();
            assert_eq!(par, local, "{workers} workers");
        }
    }

    #[test]
    fn builder_seed_overrides_scenario_seed() {
        let toy = Toy {
            draws: 10,
            replications: 4,
            base_seed: 1,
        };
        let intrinsic = SessionBuilder::new().run(&toy).unwrap();
        let same = SessionBuilder::new().seed(1).run(&toy).unwrap();
        let different = SessionBuilder::new().seed(2).run(&toy).unwrap();
        assert_eq!(intrinsic, same);
        assert_ne!(intrinsic, different);
    }

    #[test]
    fn metrics_merge_in_replication_order() {
        let toy = Toy {
            draws: 1,
            replications: 8,
            base_seed: 3,
        };
        let (_, snap) = SessionBuilder::new()
            .metrics(MetricsMode::Enabled)
            .run_metered(&toy)
            .unwrap();
        match snap.get("sim.ticks") {
            Some(mbac_metrics::MetricValue::Counter(c)) => assert_eq!(c.count, 8),
            other => panic!("{other:?}"),
        }
        // Disabled mode yields an empty snapshot.
        let (_, empty) = SessionBuilder::new().run_metered(&toy).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn pool_accounting_is_timing_gated() {
        let toy = Toy {
            draws: 1,
            replications: 6,
            base_seed: 5,
        };
        // Deterministic mode: no machine-dependent pool entries.
        let (_, plain) = SessionBuilder::new()
            .metrics(MetricsMode::Enabled)
            .workers(2)
            .run_metered(&toy)
            .unwrap();
        assert!(plain.get("pool.calls").is_none());
        // Timing mode: pool accounting rides along and covers all reps.
        let (_, timed) = SessionBuilder::new()
            .metrics(MetricsMode::EnabledWithTiming)
            .workers(2)
            .run_metered(&toy)
            .unwrap();
        match timed.get("pool.calls") {
            Some(mbac_metrics::MetricValue::Counter(c)) => assert_eq!(c.count, 1),
            other => panic!("{other:?}"),
        }
        let items: u64 = (0..2)
            .map(|s| match timed.get(&format!("pool.worker{s}.items")) {
                Some(mbac_metrics::MetricValue::Counter(c)) => c.count,
                other => panic!("{other:?}"),
            })
            .sum();
        assert_eq!(items, 6, "every replication accounted to a worker");
    }

    #[test]
    fn zero_workers_and_zero_replications_are_config_errors() {
        let toy = Toy {
            draws: 1,
            replications: 0,
            base_seed: 0,
        };
        assert_eq!(
            SessionBuilder::new().run(&toy).unwrap_err(),
            ConfigError::ZeroReplications
        );
        let toy = Toy {
            draws: 1,
            replications: 1,
            base_seed: 0,
        };
        assert_eq!(
            SessionBuilder::new().workers(0).run(&toy).unwrap_err(),
            ConfigError::ZeroWorkers
        );
    }

    #[test]
    fn scratch_buffers_keep_their_capacity() {
        let ctx = RepContext {
            rep: 0,
            seed: 0,
            engine: Engine::Batched,
        };
        {
            let mut v = ctx.scratch_rates();
            assert!(v.is_empty());
            v.extend(std::iter::repeat_n(1.0, 4096));
        } // drop returns the buffer to this thread's arena
        let v = ctx.scratch_rates();
        assert!(v.is_empty(), "scratch buffers are handed out cleared");
        assert!(
            v.capacity() >= 4096,
            "capacity must survive the round-trip, got {}",
            v.capacity()
        );
    }

    #[test]
    fn engine_parsing_and_display() {
        assert_eq!(Engine::from_name("batched").unwrap(), Engine::Batched);
        assert_eq!(Engine::from_name("boxed").unwrap(), Engine::Boxed);
        assert_eq!(
            Engine::from_name("quantum").unwrap_err(),
            ConfigError::UnknownEngine {
                name: "quantum".into()
            }
        );
        assert_eq!(Engine::Batched.to_string(), "batched");
        assert_eq!(Engine::Boxed.to_string(), "boxed");
    }

    #[test]
    fn config_error_messages_are_friendly() {
        let msg = ConfigError::NonPositive {
            field: "capacity",
            value: -4.0,
        }
        .to_string();
        assert!(
            msg.contains("capacity") && msg.contains("positive"),
            "{msg}"
        );
        let msg = ConfigError::TooFewFlows { got: 1 }.to_string();
        assert!(msg.contains("2") && msg.contains("flows"), "{msg}");
        let msg = ConfigError::EmptyObserveTimes.to_string();
        assert!(msg.contains("observe"), "{msg}");
    }
}
