//! The impulsive and continuous load models of the paper, as
//! [`Scenario`] impls for the [`crate::session`] pipeline.
//!
//! * [`ImpulsiveLoad`] — §3: a burst of flows at `t = 0`, admission from
//!   the initial bandwidths, then (optionally) exponential departures;
//!   measures the overflow probability at caller-chosen times across
//!   replications.
//! * [`ContinuousLoad`] — §4: infinite arrival pressure; the system is
//!   kept filled to the controller's current admissible count, flows
//!   depart with exponential holding times, and the steady-state
//!   overflow probability is sampled per §5.2.
//! * [`PhasedLoad`] — the non-stationary extension: the source model
//!   switches on a schedule.
//!
//! (The finite-arrival-rate Poisson scenario lives in
//! [`crate::arrivals`].)
//!
//! The legacy `run_*` free functions remain as deprecated shims that
//! delegate to a [`SessionBuilder`]; new code should build a scenario
//! and run it through the builder directly.

use crate::controller::AdmissionEngine;
use crate::flows::FlowTable;
use crate::metrics::{OverflowMeter, PfEstimate, StopReason};
use crate::session::{
    require_non_negative, require_positive, ConfigError, Engine, MetricsMode, RepContext, Scenario,
    SessionBuilder,
};
use crate::telemetry::MetricsSink;
use mbac_core::admission::AdmissionPolicy;
use mbac_core::estimators::snapshot_stats;
use mbac_metrics::MetricsSnapshot;
use mbac_num::rng::exponential;
use mbac_num::RunningStats;
use mbac_traffic::process::SourceModel;
use std::cell::RefCell;

// ---------------------------------------------------------------------
// Impulsive load (§3)
// ---------------------------------------------------------------------

/// Configuration of the impulsive-load experiment.
#[derive(Debug, Clone)]
pub struct ImpulsiveConfig {
    /// Link capacity `c`.
    pub capacity: f64,
    /// Number of flows whose initial bandwidths feed the estimator
    /// (the paper uses `n = c/μ`).
    pub estimation_flows: usize,
    /// Mean holding time; `None` = infinite (flows never depart).
    pub mean_holding: Option<f64>,
    /// Times (after 0) at which to record the overflow indicator.
    pub observe_times: Vec<f64>,
    /// Number of independent replications.
    pub replications: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Aggregated results of the impulsive-load experiment.
#[derive(Debug, Clone)]
pub struct ImpulsiveReport {
    /// Distribution of the admitted count `M₀` across replications.
    pub m0: RunningStats,
    /// Per observation time: `(t, overflow count, mean load)`.
    pub observations: Vec<ImpulsiveObservation>,
    /// Number of replications performed.
    pub replications: usize,
}

/// Overflow statistics at one observation time.
#[derive(Debug, Clone, Copy)]
pub struct ImpulsiveObservation {
    /// Observation time.
    pub t: f64,
    /// Number of replications in which `S_t > c`.
    pub overflows: u64,
    /// Aggregate-load statistics across replications.
    pub load: RunningStats,
    /// Flows remaining in the system (mean across replications).
    pub mean_flows: f64,
}

impl ImpulsiveReport {
    /// Overflow probability estimate at observation index `i`.
    pub fn pf_at(&self, i: usize) -> f64 {
        let obs = &self.observations[i];
        obs.overflows as f64 / self.replications as f64
    }
}

/// What one impulsive replication produces; opaque — the session folds
/// these into an [`ImpulsiveReport`] in replication input order.
#[derive(Debug, Clone)]
pub struct ImpulsiveRep {
    m0: f64,
    /// Per observation time: `(load, flows in system)`.
    at: Vec<(f64, usize)>,
}

/// The impulsive-load model (§3) as a [`Scenario`]: per replication,
/// estimate `(μ̂, σ̂)` from the initial bandwidths of
/// `estimation_flows` flows (eqn (7)), admit `⌊M₀⌋` flows per the
/// policy (eqn (6)), then let the system evolve and record the overflow
/// indicator at each observation time.
///
/// The scenario is `Sync` (it borrows the model and policy immutably),
/// so replications fan out across the session's workers.
pub struct ImpulsiveLoad<'a> {
    cfg: ImpulsiveConfig,
    model: &'a dyn SourceModel,
    policy: &'a dyn AdmissionPolicy,
}

impl<'a> ImpulsiveLoad<'a> {
    /// Builds the scenario; observation times are kept sorted.
    pub fn new(
        cfg: &ImpulsiveConfig,
        model: &'a dyn SourceModel,
        policy: &'a dyn AdmissionPolicy,
    ) -> Self {
        let mut cfg = cfg.clone();
        cfg.observe_times.sort_by(f64::total_cmp);
        ImpulsiveLoad { cfg, model, policy }
    }
}

impl Scenario for ImpulsiveLoad<'_> {
    type Rep = ImpulsiveRep;
    type Report = ImpulsiveReport;

    fn validate(&self) -> Result<(), ConfigError> {
        require_positive("capacity", self.cfg.capacity)?;
        if self.cfg.estimation_flows < 2 {
            return Err(ConfigError::TooFewFlows {
                got: self.cfg.estimation_flows,
            });
        }
        if let Some(th) = self.cfg.mean_holding {
            require_positive("mean holding time", th)?;
        }
        // An empty observation list is valid: the report still carries
        // the M₀ distribution (Prop 3.1 studies use exactly that).
        for &t in &self.cfg.observe_times {
            if t.is_nan() || t < 0.0 {
                return Err(ConfigError::BadObserveTime { value: t });
            }
        }
        if self.cfg.replications == 0 {
            return Err(ConfigError::ZeroReplications);
        }
        Ok(())
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn replications(&self) -> usize {
        self.cfg.replications
    }

    fn run_rep(&self, ctx: &RepContext, sink: &mut MetricsSink) -> ImpulsiveRep {
        let cfg = &self.cfg;
        let mut rng = ctx.rng();

        // Measure the initial bandwidths of the candidate burst.
        let candidates: Vec<Box<dyn mbac_traffic::process::RateProcess>> = (0..cfg
            .estimation_flows)
            .map(|_| self.model.spawn(&mut rng))
            .collect();
        let mut rates = ctx.scratch_rates();
        rates.extend(candidates.iter().map(|c| c.rate()));
        let est = snapshot_stats(&rates).expect("non-empty candidate burst");
        let m0 = self.policy.admissible_count(est, cfg.capacity);
        let admit = m0.floor().max(0.0) as usize;

        // Admit: reuse the measured candidates first (their *measured*
        // bandwidths are the admitted flows' bandwidths — essential for
        // the Y₀ correlation the theory predicts), spawn extras if
        // M₀ > n.
        let mut table = ctx.table();
        let mut iter = candidates.into_iter();
        for _ in 0..admit {
            let mut drew = 0u64;
            let departs_at = match cfg.mean_holding {
                Some(th) => {
                    drew = 1;
                    exponential(&mut rng, th)
                }
                None => f64::INFINITY,
            };
            match iter.next() {
                Some(proc_) => {
                    table.admit_process(proc_, departs_at);
                }
                None => {
                    table.admit(self.model, departs_at, &mut rng);
                }
            }
            if sink.is_enabled() {
                // One unit-of-work entry per admitted flow: the record
                // the streaming sampler sees at 10⁶-flow scale.
                let mut e = sink.entry(0.0);
                e.admitted = 1;
                e.exp_draws = drew;
            }
        }
        if sink.is_enabled() {
            let mut e = sink.entry(0.0);
            e.admissible = m0;
        }

        // Evolve and observe.
        let at = cfg
            .observe_times
            .iter()
            .map(|&t| {
                table.advance_to(t, &mut rng);
                table.depart_until(t);
                // Deliberately NOT the fused advance_depart_measure +
                // `RateMoments::sum` path: this table mixes two groups
                // (measured candidates enter boxed via `admit_process`,
                // extras via the keyed `admit`), and the grouped
                // `aggregate_rate` fold differs bitwise from the
                // moments' flat flow-order fold once a second group
                // exists. Observations here are sparse, so the second
                // pass is cheap; bit-stability of the goldens wins.
                let (load, flows) = (table.aggregate_rate(), table.len());
                if sink.is_enabled() {
                    let mut e = sink.entry(t);
                    e.ticks = 1;
                    e.load = load;
                    e.occupancy = flows as f64;
                }
                (load, flows)
            })
            .collect();
        if sink.is_enabled() {
            let t_last = cfg.observe_times.last().copied().unwrap_or(0.0);
            let mut e = sink.entry(t_last);
            e.departed = table.departed_total();
        }
        ImpulsiveRep { m0, at }
    }

    fn fold(&self, reps: Vec<ImpulsiveRep>) -> ImpulsiveReport {
        let mut m0_stats = RunningStats::new();
        let mut obs: Vec<ImpulsiveObservation> = self
            .cfg
            .observe_times
            .iter()
            .map(|&t| ImpulsiveObservation {
                t,
                overflows: 0,
                load: RunningStats::new(),
                mean_flows: 0.0,
            })
            .collect();
        for outcome in reps {
            m0_stats.push(outcome.m0);
            for (o, &(load, flows)) in obs.iter_mut().zip(&outcome.at) {
                o.load.push(load);
                o.mean_flows += flows as f64 / self.cfg.replications as f64;
                if load > self.cfg.capacity {
                    o.overflows += 1;
                }
            }
        }
        ImpulsiveReport {
            m0: m0_stats,
            observations: obs,
            replications: self.cfg.replications,
        }
    }
}

/// Shared implementation of the deprecated impulsive entry points.
fn impulsive_compat(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
    workers: usize,
    collect: bool,
) -> (ImpulsiveReport, MetricsSnapshot) {
    let scenario = ImpulsiveLoad::new(cfg, model, policy);
    let mode = if collect {
        MetricsMode::Enabled
    } else {
        MetricsMode::Disabled
    };
    SessionBuilder::new()
        .workers(workers)
        .metrics(mode)
        .run_metered(&scenario)
        .unwrap_or_else(|e| panic!("invalid impulsive config: {e}"))
}

/// Runs the impulsive-load model across
/// [`mbac_num::parallel::default_workers`] threads.
#[deprecated(note = "build an `ImpulsiveLoad` and run it through `SessionBuilder`")]
pub fn run_impulsive(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
) -> ImpulsiveReport {
    impulsive_compat(
        cfg,
        model,
        policy,
        mbac_num::parallel::default_workers(),
        false,
    )
    .0
}

/// [`run_impulsive`] with an explicit worker count. The report is
/// bit-identical for any count (see [`crate::session`]).
#[deprecated(note = "build an `ImpulsiveLoad` and run it through `SessionBuilder::workers`")]
pub fn run_impulsive_with_workers(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
    workers: usize,
) -> ImpulsiveReport {
    impulsive_compat(cfg, model, policy, workers, false).0
}

/// [`run_impulsive_with_workers`] plus telemetry: when `collect` is
/// true, every replication records into its own bundle and the
/// snapshots fold in replication input order.
#[deprecated(note = "build an `ImpulsiveLoad` and run it through `SessionBuilder::metrics`")]
pub fn run_impulsive_metered(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
    workers: usize,
    collect: bool,
) -> (ImpulsiveReport, MetricsSnapshot) {
    impulsive_compat(cfg, model, policy, workers, collect)
}

// ---------------------------------------------------------------------
// Continuous load (§4)
// ---------------------------------------------------------------------

/// Configuration of the continuous-load simulation.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Link capacity `c`.
    pub capacity: f64,
    /// Mean flow holding time `T_h`.
    pub mean_holding: f64,
    /// Measurement/admission tick (should be ≲ `T_c/4`).
    pub tick: f64,
    /// Warm-up period discarded before sampling starts.
    pub warmup: f64,
    /// Spacing between overflow samples (paper: `2·max(T̃_h, T_m, T_c)`).
    pub sample_spacing: f64,
    /// QoS target `p_q`, used by termination criterion (b).
    pub target: f64,
    /// Maximum spaced samples before giving up (budget).
    pub max_samples: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ContinuousConfig {
    /// The paper's sample spacing rule: `2·max(T̃_h, T_m, T_c)`.
    pub fn paper_spacing(t_h_tilde: f64, t_m: f64, t_c: f64) -> f64 {
        2.0 * t_h_tilde.max(t_m).max(t_c)
    }

    /// Checks the timing/capacity fields shared by the continuous-load
    /// scenarios.
    fn validate(&self) -> Result<(), ConfigError> {
        require_positive("capacity", self.capacity)?;
        require_positive("mean holding time", self.mean_holding)?;
        require_positive("tick", self.tick)?;
        require_positive("sample spacing", self.sample_spacing)?;
        require_non_negative("warmup", self.warmup)
    }
}

/// Results of a continuous-load run.
#[derive(Debug, Clone)]
pub struct ContinuousReport {
    /// The overflow-probability estimate with CI and method.
    pub pf: PfEstimate,
    /// Mean link utilization over the sampled period.
    pub mean_utilization: f64,
    /// Mean number of flows in the system at sample epochs.
    pub mean_flows: f64,
    /// Flows admitted over the whole run.
    pub admitted: u64,
    /// Flows departed over the whole run.
    pub departed: u64,
    /// Total simulated time.
    pub sim_time: f64,
}

/// The continuous-load model (§4) as a [`Scenario`]: at every tick the
/// flow processes advance, departures are applied, the controller
/// observes a snapshot, and the system is topped up to the controller's
/// current admissible count (infinite arrival pressure — the paper's
/// most stringent test). Overflow is sampled at spaced epochs per §5.2
/// until a termination criterion fires or the sample budget is
/// exhausted.
///
/// Each tick takes **one** per-flow snapshot after advancing and
/// applying departures; the controller's `observe` and the overflow
/// meter both consume that same rate vector (the meter through its
/// sum), so measurement and metering can never disagree about the load.
///
/// The scenario borrows the caller's controller mutably, so it is *not*
/// `Sync`: run it with [`SessionBuilder::run_local`] (it is a single
/// replication — nothing is lost by staying on the calling thread).
pub struct ContinuousLoad<'a> {
    cfg: ContinuousConfig,
    model: &'a dyn SourceModel,
    ctl: RefCell<&'a mut dyn AdmissionEngine>,
}

impl<'a> ContinuousLoad<'a> {
    /// Builds the scenario around the caller's controller.
    pub fn new(
        cfg: &ContinuousConfig,
        model: &'a dyn SourceModel,
        ctl: &'a mut dyn AdmissionEngine,
    ) -> Self {
        ContinuousLoad {
            cfg: cfg.clone(),
            model,
            ctl: RefCell::new(ctl),
        }
    }
}

impl Scenario for ContinuousLoad<'_> {
    type Rep = ContinuousReport;
    type Report = ContinuousReport;

    fn validate(&self) -> Result<(), ConfigError> {
        self.cfg.validate()
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_rep(&self, ctx: &RepContext, sink: &mut MetricsSink) -> ContinuousReport {
        let cfg = &self.cfg;
        let mut guard = self.ctl.borrow_mut();
        let ctl: &mut dyn AdmissionEngine = &mut **guard;
        let mut rng = ctx.rng();
        let mut table = ctx.table();
        let mut meter = OverflowMeter::new(cfg.capacity, cfg.target);
        // Arena-backed snapshot buffer: steady-state ticks allocate
        // nothing (the capacity survives across replications/sessions).
        let mut snapshot = ctx.scratch_rates();
        let mut flow_count = RunningStats::new();
        let mut prev_mean: Option<f64> = None;

        // Fused tick path: when the engine consumes sufficient
        // statistics, a measurement tick is one sweep over the flow
        // state (evolve + reduce) instead of an advance sweep plus a
        // snapshot sweep plus a per-flow rescan inside the estimator.
        // Chosen once — the engine's support cannot change mid-run.
        let fused = ctl.supports_moments();

        let mut t = 0.0f64;
        let mut next_sample = cfg.warmup.max(cfg.tick);
        let stop_reason;
        let enabled = sink.is_enabled();
        let timing = sink.timing_enabled();
        loop {
            let tick_started = timing.then(std::time::Instant::now);
            t += cfg.tick;

            // Measure once; the controller and the meter share the
            // measurement (the moment sum is the identical flat fold of
            // the snapshot, so both paths report bit-equal loads).
            let load = if fused {
                let mom = table.advance_depart_measure(t, &mut rng, ctl.moment_pivot());
                ctl.observe_moments(t, &mom);
                mom.sum()
            } else {
                table.advance_to(t, &mut rng);
                table.depart_until(t);
                table.snapshot_into(&mut snapshot);
                ctl.observe(t, &snapshot);
                snapshot.iter().sum()
            };

            // The tick's unit-of-work entry: filled through the tick,
            // folded exactly once when the guard drops — including on
            // the `break` paths below, which end the tick after the
            // measurement but before admission (matching the old
            // record order).
            let mut entry = sink.entry(t);
            if enabled {
                entry.ticks = 1;
                entry.load = load;
                entry.occupancy = table.len() as f64;
                if let Some((mean, _)) = ctl.estimate_stats() {
                    if let Some(prev) = prev_mean {
                        entry.innovation = mean - prev;
                    }
                    prev_mean = Some(mean);
                }
            }

            // Spaced overflow sampling after warm-up (before admissions:
            // a flow admitted this tick enters the measured load next tick).
            if t >= next_sample {
                next_sample += cfg.sample_spacing;
                meter.record(load);
                flow_count.push(table.len() as f64);
                if let Some(reason) = meter.should_stop() {
                    stop_reason = reason;
                    break;
                }
                if meter.samples() >= cfg.max_samples {
                    stop_reason = StopReason::BudgetExhausted;
                    break;
                }
            }

            // Fill to the admissible limit.
            match ctl.admissible_count(cfg.capacity, table.len()) {
                Some(m) => {
                    let limit = m.floor().max(0.0) as usize;
                    // Ramp cap: at most max(1, 10% of current occupancy)
                    // admissions per tick. Signaling is never infinitely
                    // fast in practice, and the cap prevents a cold-start
                    // estimate built from a handful of flows (σ̂ ≈ 0,
                    // noisy μ̂) from instantly over-filling the link by a
                    // factor of several — an artifact that would otherwise
                    // take ~T_h to drain. The cap still reaches any target
                    // occupancy exponentially within ~60 ticks, far inside
                    // the warm-up, and steady-state M fluctuations are
                    // O(√n), far below 10% of N.
                    let cap = (table.len() / 10).max(1);
                    let mut admitted_now = 0usize;
                    while table.len() < limit && admitted_now < cap {
                        let departs = t + exponential(&mut rng, cfg.mean_holding);
                        table.admit(self.model, departs, &mut rng);
                        admitted_now += 1;
                    }
                    entry.admissible = m;
                    entry.admitted = admitted_now as u64;
                    entry.exp_draws = admitted_now as u64;
                    entry.denied = limit.saturating_sub(table.len()) as u64;
                }
                None => {
                    // Cold start: nothing measured yet — admit a seed flow.
                    if table.is_empty() {
                        let departs = t + exponential(&mut rng, cfg.mean_holding);
                        table.admit(self.model, departs, &mut rng);
                        entry.admitted = 1;
                        entry.exp_draws = 1;
                    }
                }
            }

            if let Some(started) = tick_started {
                entry.tick_ns = started.elapsed().as_nanos() as f64;
            }
        }

        if sink.is_enabled() {
            let mut e = sink.entry(t);
            e.departed = table.departed_total();
        }
        if sink.is_enabled() {
            // Fold the meter's instrument state into the sink's bundle via
            // the caller-visible snapshot path.
            let mut extra = MetricsSnapshot::new();
            meter.export_into("sim.pf", &mut extra);
            sink.attach(extra);
        }

        ContinuousReport {
            pf: meter.finalize(stop_reason),
            mean_utilization: meter.mean_utilization(),
            mean_flows: flow_count.mean(),
            admitted: table.admitted_total(),
            departed: table.departed_total(),
            sim_time: t,
        }
    }

    fn fold(&self, mut reps: Vec<ContinuousReport>) -> ContinuousReport {
        reps.pop().expect("exactly one continuous replication")
    }
}

/// Shared implementation of the deprecated continuous entry points.
fn continuous_compat(
    cfg: &ContinuousConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
    engine: Engine,
    mode: MetricsMode,
) -> (ContinuousReport, MetricsSnapshot) {
    let scenario = ContinuousLoad::new(cfg, model, ctl);
    SessionBuilder::new()
        .engine(engine)
        .metrics(mode)
        .run_local_metered(&scenario)
        .unwrap_or_else(|e| panic!("invalid continuous config: {e}"))
}

/// Runs the continuous-load model on the default (batched) engine.
#[deprecated(note = "build a `ContinuousLoad` and run it through `SessionBuilder::run_local`")]
pub fn run_continuous(
    cfg: &ContinuousConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
) -> ContinuousReport {
    continuous_compat(cfg, model, ctl, Engine::Batched, MetricsMode::Disabled).0
}

/// [`run_continuous`] against a caller-provided (empty) flow table —
/// the table selects the engine ([`FlowTable::new`] vs
/// [`FlowTable::new_unbatched`]); the session builds its own fresh
/// table on that engine. Both engines consume the RNG identically, so
/// the two reports are bit-equal for a fixed seed.
#[deprecated(note = "use `SessionBuilder::engine` with a `ContinuousLoad` instead")]
pub fn run_continuous_in(
    cfg: &ContinuousConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
    table: FlowTable,
) -> ContinuousReport {
    assert!(table.is_empty(), "run_continuous_in needs a fresh table");
    let engine = if table.is_batched() {
        Engine::Batched
    } else {
        Engine::Boxed
    };
    continuous_compat(cfg, model, ctl, engine, MetricsMode::Disabled).0
}

/// [`run_continuous_in`] plus telemetry into the given sink: the run's
/// merged snapshot is attached to the caller's sink (a disabled sink
/// keeps the zero-cost path).
#[deprecated(note = "use `SessionBuilder::metrics` with a `ContinuousLoad` instead")]
pub fn run_continuous_metered(
    cfg: &ContinuousConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
    table: FlowTable,
    sink: &mut MetricsSink,
) -> ContinuousReport {
    assert!(
        table.is_empty(),
        "run_continuous_metered needs a fresh table"
    );
    let engine = if table.is_batched() {
        Engine::Batched
    } else {
        Engine::Boxed
    };
    let mode = match sink.get() {
        None => MetricsMode::Disabled,
        Some(m) if m.timing_enabled() => MetricsMode::EnabledWithTiming,
        Some(_) => MetricsMode::Enabled,
    };
    let (report, snapshot) = continuous_compat(cfg, model, ctl, engine, mode);
    sink.attach(snapshot);
    report
}

// ---------------------------------------------------------------------
// Non-stationary (phased) continuous load — extension
// ---------------------------------------------------------------------

/// Per-phase results of a [`PhasedLoad`] simulation.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Index into the phase schedule.
    pub phase: usize,
    /// Start time of the phase.
    pub from: f64,
    /// Overflow estimate over the phase's samples.
    pub pf: PfEstimate,
    /// Mean utilization over the phase's samples.
    pub mean_utilization: f64,
}

/// Continuous-load simulation with a *non-stationary* workload: the
/// source model changes at scheduled times, and flows admitted after a
/// switch are spawned from the new model (think: the content mix
/// changes at prime time). Existing flows keep their old statistics
/// until they depart, so the population mix drifts across the critical
/// time-scale — exactly the adaptivity scenario §2 of the paper defers:
/// "the results are valid if the traffic statistics are stationary
/// within the memory time-scale."
///
/// The phase schedule must be sorted by start time and begin at `0.0`.
/// Sampling runs to `cfg.max_samples` total (no early termination — the
/// phases are compared against each other), attributing each spaced
/// sample to the phase active at its epoch.
///
/// Like [`ContinuousLoad`], borrows the controller mutably and must run
/// through [`SessionBuilder::run_local`].
pub struct PhasedLoad<'a> {
    cfg: ContinuousConfig,
    phases: Vec<(f64, &'a dyn SourceModel)>,
    ctl: RefCell<&'a mut dyn AdmissionEngine>,
}

impl<'a> PhasedLoad<'a> {
    /// Builds the scenario over the given phase schedule.
    pub fn new(
        cfg: &ContinuousConfig,
        phases: &[(f64, &'a dyn SourceModel)],
        ctl: &'a mut dyn AdmissionEngine,
    ) -> Self {
        PhasedLoad {
            cfg: cfg.clone(),
            phases: phases.to_vec(),
            ctl: RefCell::new(ctl),
        }
    }
}

impl Scenario for PhasedLoad<'_> {
    type Rep = Vec<PhaseReport>;
    type Report = Vec<PhaseReport>;

    fn validate(&self) -> Result<(), ConfigError> {
        if self.phases.is_empty() {
            return Err(ConfigError::BadPhases {
                reason: "need at least one phase",
            });
        }
        if self.phases[0].0 != 0.0 {
            return Err(ConfigError::BadPhases {
                reason: "first phase must start at t = 0",
            });
        }
        if !self.phases.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(ConfigError::BadPhases {
                reason: "phases must be sorted by start time",
            });
        }
        self.cfg.validate()
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_rep(&self, ctx: &RepContext, _sink: &mut MetricsSink) -> Vec<PhaseReport> {
        let cfg = &self.cfg;
        let phases = &self.phases;
        let mut guard = self.ctl.borrow_mut();
        let ctl: &mut dyn AdmissionEngine = &mut **guard;
        let mut rng = ctx.rng();
        let mut table = ctx.table();
        let mut meters: Vec<OverflowMeter> = phases
            .iter()
            .map(|_| OverflowMeter::new(cfg.capacity, cfg.target).with_min_samples(u64::MAX))
            .collect();
        let mut snapshot = ctx.scratch_rates();
        let active_phase =
            |t: f64| -> usize { phases.iter().rposition(|&(from, _)| t >= from).unwrap_or(0) };

        // Fused tick path, chosen once — see `ContinuousLoad::run_rep`.
        let fused = ctl.supports_moments();

        let mut t = 0.0f64;
        let mut next_sample = cfg.warmup.max(cfg.tick);
        let mut total_samples = 0u64;
        while total_samples < cfg.max_samples {
            t += cfg.tick;
            // One measurement per tick, shared by controller and meter
            // (the sampling runs before admissions, as in
            // `ContinuousLoad`).
            let load = if fused {
                let mom = table.advance_depart_measure(t, &mut rng, ctl.moment_pivot());
                ctl.observe_moments(t, &mom);
                mom.sum()
            } else {
                table.advance_to(t, &mut rng);
                table.depart_until(t);
                table.snapshot_into(&mut snapshot);
                ctl.observe(t, &snapshot);
                snapshot.iter().sum()
            };
            if t >= next_sample {
                next_sample += cfg.sample_spacing;
                meters[active_phase(t)].record(load);
                total_samples += 1;
            }
            let model = phases[active_phase(t)].1;
            match ctl.admissible_count(cfg.capacity, table.len()) {
                Some(m) => {
                    let limit = m.floor().max(0.0) as usize;
                    // Ramp cap, as in `ContinuousLoad`: at most
                    // max(1, 10% of occupancy) admissions per tick.
                    let cap = (table.len() / 10).max(1);
                    let mut admitted_now = 0;
                    while table.len() < limit && admitted_now < cap {
                        let departs = t + exponential(&mut rng, cfg.mean_holding);
                        table.admit(model, departs, &mut rng);
                        admitted_now += 1;
                    }
                }
                None => {
                    if table.is_empty() {
                        let departs = t + exponential(&mut rng, cfg.mean_holding);
                        table.admit(model, departs, &mut rng);
                    }
                }
            }
        }

        phases
            .iter()
            .enumerate()
            .filter(|(i, _)| meters[*i].samples() > 0)
            .map(|(i, &(from, _))| PhaseReport {
                phase: i,
                from,
                pf: meters[i].finalize(StopReason::BudgetExhausted),
                mean_utilization: meters[i].mean_utilization(),
            })
            .collect()
    }

    fn fold(&self, mut reps: Vec<Vec<PhaseReport>>) -> Vec<PhaseReport> {
        reps.pop().expect("exactly one phased replication")
    }
}

/// Runs the non-stationary phased continuous-load model.
#[deprecated(note = "build a `PhasedLoad` and run it through `SessionBuilder::run_local`")]
pub fn run_continuous_phased(
    cfg: &ContinuousConfig,
    phases: &[(f64, &dyn SourceModel)],
    ctl: &mut dyn AdmissionEngine,
) -> Vec<PhaseReport> {
    let scenario = PhasedLoad::new(cfg, phases, ctl);
    SessionBuilder::new()
        .run_local(&scenario)
        .unwrap_or_else(|e| panic!("invalid phased config: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MbacController;
    use mbac_core::admission::{CertaintyEquivalent, PerfectKnowledge};
    use mbac_core::estimators::{FilteredEstimator, MemorylessEstimator};
    use mbac_core::params::{FlowStats, QosTarget};
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    fn impulsive(
        cfg: &ImpulsiveConfig,
        m: &dyn SourceModel,
        p: &dyn AdmissionPolicy,
    ) -> ImpulsiveReport {
        SessionBuilder::new()
            .run(&ImpulsiveLoad::new(cfg, m, p))
            .unwrap()
    }

    fn continuous(
        cfg: &ContinuousConfig,
        m: &dyn SourceModel,
        ctl: &mut dyn AdmissionEngine,
    ) -> ContinuousReport {
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(cfg, m, ctl))
            .unwrap()
    }

    #[test]
    fn impulsive_with_perfect_knowledge_meets_target() {
        // Prop 3.3 baseline: the perfect-knowledge controller admits m*
        // and the steady-state overflow probability is ≈ p_q.
        let p_q = 0.05; // large target keeps the test cheap
        let m = model();
        let pk = PerfectKnowledge::new(FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(p_q));
        let cfg = ImpulsiveConfig {
            capacity: 400.0,
            estimation_flows: 400,
            mean_holding: None,
            observe_times: vec![50.0], // ≫ T_c = 1: steady state
            replications: 3000,
            seed: 42,
        };
        let rep = impulsive(&cfg, &m, &pk);
        let pf = rep.pf_at(0);
        assert!(
            (pf - p_q).abs() < 0.015,
            "perfect knowledge: pf {pf} should be ≈ {p_q}"
        );
        // M₀ is deterministic for perfect knowledge.
        assert!(rep.m0.std_dev() < 1e-9);
    }

    #[test]
    fn impulsive_certainty_equivalent_shows_sqrt2_penalty() {
        // The memoryless MBAC overshoots the target per Prop. 3.3:
        // p_f ≈ Q(α_q/√2) > p_q.
        let p_q = 0.02;
        let m = model();
        let ce = CertaintyEquivalent::from_probability(p_q);
        let cfg = ImpulsiveConfig {
            capacity: 400.0,
            estimation_flows: 400,
            mean_holding: None,
            observe_times: vec![50.0],
            replications: 4000,
            seed: 7,
        };
        let rep = impulsive(&cfg, &m, &ce);
        let pf = rep.pf_at(0);
        let predicted = mbac_num::q(mbac_num::inv_q(p_q) / std::f64::consts::SQRT_2);
        assert!(
            pf > 1.5 * p_q,
            "penalty must be visible: pf {pf} vs target {p_q}"
        );
        assert!(
            (pf - predicted).abs() < 0.03,
            "pf {pf} should be near the √2 prediction {predicted}"
        );
        // And M₀ fluctuates like (σ/μ)√n (Prop. 3.1): sd ≈ 0.3·20 = 6.
        assert!(
            (rep.m0.std_dev() - 6.0).abs() < 1.0,
            "M₀ sd = {}",
            rep.m0.std_dev()
        );
    }

    #[test]
    fn impulsive_departures_drain_the_system() {
        let m = model();
        let pk = PerfectKnowledge::new(FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(0.05));
        let cfg = ImpulsiveConfig {
            capacity: 100.0,
            estimation_flows: 100,
            mean_holding: Some(10.0),
            observe_times: vec![5.0, 10.0, 20.0, 40.0],
            replications: 200,
            seed: 11,
        };
        let rep = impulsive(&cfg, &m, &pk);
        // Mean flows must decay ≈ e^{-t/T_h}.
        let m0 = rep.m0.mean();
        for o in &rep.observations {
            let want = m0 * (-o.t / 10.0).exp();
            assert!(
                (o.mean_flows - want).abs() < 0.15 * m0,
                "t={}: flows {} vs expected {want}",
                o.t,
                o.mean_flows
            );
        }
        // Overflow probability at late times is ~0 (system drained).
        assert_eq!(rep.observations.last().unwrap().overflows, 0);
    }

    #[test]
    fn continuous_run_reaches_high_utilization() {
        let m = model();
        let mut ctl = MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let cfg = ContinuousConfig {
            capacity: 100.0,
            mean_holding: 100.0,
            tick: 0.25,
            warmup: 200.0,
            sample_spacing: 20.0,
            target: 1e-2,
            max_samples: 300,
            seed: 13,
        };
        let rep = continuous(&cfg, &m, &mut ctl);
        assert!(
            rep.mean_utilization > 0.8 && rep.mean_utilization <= 1.05,
            "utilization {}",
            rep.mean_utilization
        );
        assert!(
            rep.mean_flows > 80.0 && rep.mean_flows < 105.0,
            "flows {}",
            rep.mean_flows
        );
        assert!(rep.admitted > rep.departed);
        assert!(rep.pf.samples > 0);
    }

    #[test]
    fn continuous_memory_improves_overflow() {
        // The paper's central claim, in miniature: with everything else
        // fixed, an estimator with T_m ≈ T̃_h beats the memoryless one.
        let m = model();
        let run = |t_m: f64, seed: u64| {
            let mut ctl = MbacController::new(
                Box::new(FilteredEstimator::new(t_m)),
                Box::new(CertaintyEquivalent::from_probability(1e-2)),
            );
            let cfg = ContinuousConfig {
                capacity: 100.0,
                mean_holding: 100.0, // T̃_h = 10
                tick: 0.25,
                warmup: 300.0,
                sample_spacing: 20.0,
                target: 1e-2,
                max_samples: 1500,
                seed,
            };
            continuous(&cfg, &m, &mut ctl).pf.value
        };
        let memoryless = (run(0.0, 17) + run(0.0, 18) + run(0.0, 19)) / 3.0;
        let with_memory = (run(10.0, 17) + run(10.0, 18) + run(10.0, 19)) / 3.0;
        assert!(
            with_memory < memoryless,
            "memory must reduce pf: {with_memory} vs {memoryless}"
        );
    }

    #[test]
    fn continuous_conservation_invariant() {
        let m = model();
        let mut ctl = MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let cfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 100,
            seed: 23,
        };
        let rep = continuous(&cfg, &m, &mut ctl);
        // admitted − departed = flows still in the system ≥ 0.
        assert!(rep.admitted >= rep.departed);
        let in_system = rep.admitted - rep.departed;
        assert!(in_system > 0 && in_system < 80, "in-system {in_system}");
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let m = model();
        let mk = || {
            MbacController::new(
                Box::new(FilteredEstimator::new(5.0)),
                Box::new(CertaintyEquivalent::from_probability(1e-2)),
            )
        };
        let cfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 50,
            seed: 29,
        };
        let a = continuous(&cfg, &m, &mut mk());
        let b = continuous(&cfg, &m, &mut mk());
        assert_eq!(a.pf.value, b.pf.value);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.mean_utilization, b.mean_utilization);
    }

    #[test]
    fn impulsive_is_deterministic_for_any_worker_count() {
        let m = model();
        let ce = CertaintyEquivalent::from_probability(0.05);
        let cfg = ImpulsiveConfig {
            capacity: 60.0,
            estimation_flows: 60,
            mean_holding: Some(20.0),
            observe_times: vec![1.0, 5.0, 25.0],
            replications: 64,
            seed: 99,
        };
        let scenario = ImpulsiveLoad::new(&cfg, &m, &ce);
        let reference = SessionBuilder::new().workers(1).run(&scenario).unwrap();
        for workers in [2, 3, 4, 8] {
            let rep = SessionBuilder::new()
                .workers(workers)
                .run(&scenario)
                .unwrap();
            assert_eq!(rep.m0.mean(), reference.m0.mean(), "{workers} workers");
            assert_eq!(rep.m0.variance(), reference.m0.variance());
            for (a, b) in rep.observations.iter().zip(&reference.observations) {
                assert_eq!(a.overflows, b.overflows, "{workers} workers at t={}", a.t);
                assert_eq!(a.load.mean(), b.load.mean());
                assert_eq!(a.load.variance(), b.load.variance());
                assert_eq!(a.mean_flows, b.mean_flows);
            }
        }
    }

    #[test]
    fn continuous_batched_and_boxed_engines_are_bit_equal() {
        let m = model();
        let mk = || {
            MbacController::new(
                Box::new(FilteredEstimator::new(5.0)),
                Box::new(CertaintyEquivalent::from_probability(1e-2)),
            )
        };
        let cfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 50,
            seed: 31,
        };
        let run_on = |engine: Engine| {
            let mut ctl = mk();
            SessionBuilder::new()
                .engine(engine)
                .run_local(&ContinuousLoad::new(&cfg, &m, &mut ctl))
                .unwrap()
        };
        let batched = run_on(Engine::Batched);
        let boxed = run_on(Engine::Boxed);
        assert_eq!(batched.pf.value, boxed.pf.value);
        assert_eq!(batched.mean_utilization, boxed.mean_utilization);
        assert_eq!(batched.mean_flows, boxed.mean_flows);
        assert_eq!(batched.admitted, boxed.admitted);
        assert_eq!(batched.departed, boxed.departed);
    }

    #[test]
    fn paper_spacing_rule() {
        assert_eq!(ContinuousConfig::paper_spacing(10.0, 3.0, 1.0), 20.0);
        assert_eq!(ContinuousConfig::paper_spacing(1.0, 30.0, 1.0), 60.0);
        assert_eq!(ContinuousConfig::paper_spacing(1.0, 3.0, 50.0), 100.0);
    }

    #[test]
    fn impulsive_validation_rejects_bad_configs() {
        let m = model();
        let ce = CertaintyEquivalent::from_probability(0.05);
        let base = ImpulsiveConfig {
            capacity: 10.0,
            estimation_flows: 10,
            mean_holding: None,
            observe_times: vec![1.0],
            replications: 2,
            seed: 0,
        };
        let check = |cfg: &ImpulsiveConfig| {
            SessionBuilder::new()
                .run(&ImpulsiveLoad::new(cfg, &m, &ce))
                .err()
        };
        let mut cfg = base.clone();
        cfg.capacity = 0.0;
        assert!(matches!(
            check(&cfg),
            Some(ConfigError::NonPositive {
                field: "capacity",
                ..
            })
        ));
        let mut cfg = base.clone();
        cfg.estimation_flows = 1;
        assert_eq!(check(&cfg), Some(ConfigError::TooFewFlows { got: 1 }));
        let mut cfg = base.clone();
        cfg.observe_times.clear();
        assert!(check(&cfg).is_none(), "M0-only runs are valid");
        let mut cfg = base.clone();
        cfg.observe_times = vec![f64::NAN];
        assert!(matches!(
            check(&cfg),
            Some(ConfigError::BadObserveTime { .. })
        ));
        let mut cfg = base.clone();
        cfg.replications = 0;
        assert_eq!(check(&cfg), Some(ConfigError::ZeroReplications));
        assert!(check(&base).is_none());
    }

    #[test]
    fn continuous_validation_rejects_bad_configs() {
        let m = model();
        let cfg = ContinuousConfig {
            capacity: -1.0,
            mean_holding: 10.0,
            tick: 0.5,
            warmup: 1.0,
            sample_spacing: 5.0,
            target: 1e-2,
            max_samples: 10,
            seed: 0,
        };
        let mut ctl = MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let err = SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &m, &mut ctl))
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NonPositive {
                field: "capacity",
                ..
            }
        ));
    }

    #[test]
    fn phased_validation_rejects_bad_schedules() {
        let m = model();
        let cfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 10,
            seed: 0,
        };
        let mut ctl = MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let phases: [(f64, &dyn SourceModel); 2] = [(1.0, &m), (2.0, &m)];
        let err = SessionBuilder::new()
            .run_local(&PhasedLoad::new(&cfg, &phases, &mut ctl))
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadPhases { .. }));
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shims_delegate_to_the_session() {
        // The deprecated free functions must produce byte-identical
        // results to the builder path they wrap.
        let m = model();
        let ce = CertaintyEquivalent::from_probability(0.05);
        let cfg = ImpulsiveConfig {
            capacity: 40.0,
            estimation_flows: 40,
            mean_holding: Some(15.0),
            observe_times: vec![2.0, 8.0],
            replications: 32,
            seed: 123,
        };
        let via_shim = run_impulsive(&cfg, &m, &ce);
        let via_builder = SessionBuilder::new()
            .run(&ImpulsiveLoad::new(&cfg, &m, &ce))
            .unwrap();
        assert_eq!(via_shim.m0.mean(), via_builder.m0.mean());
        assert_eq!(via_shim.m0.variance(), via_builder.m0.variance());
        for (a, b) in via_shim.observations.iter().zip(&via_builder.observations) {
            assert_eq!(a.overflows, b.overflows);
            assert_eq!(a.load.mean(), b.load.mean());
            assert_eq!(a.mean_flows, b.mean_flows);
        }

        let ccfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 40,
            seed: 321,
        };
        let mk = || {
            MbacController::new(
                Box::new(MemorylessEstimator::new()),
                Box::new(CertaintyEquivalent::from_probability(1e-2)),
            )
        };
        let shim = run_continuous(&ccfg, &m, &mut mk());
        let builder = SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&ccfg, &m, &mut mk()))
            .unwrap();
        assert_eq!(shim.pf.value, builder.pf.value);
        assert_eq!(shim.admitted, builder.admitted);
        assert_eq!(shim.sim_time, builder.sim_time);
    }
}
