//! The three load-model harnesses of the paper.
//!
//! * [`run_impulsive`] — §3: a burst of flows at `t = 0`, admission from
//!   the initial bandwidths, then (optionally) exponential departures;
//!   measures the overflow probability at caller-chosen times across
//!   replications.
//! * [`run_continuous`] — §4: infinite arrival pressure; the system is
//!   kept filled to the controller's current admissible count, flows
//!   depart with exponential holding times, and the steady-state
//!   overflow probability is sampled per §5.2.
//!
//! (The finite-arrival-rate Poisson harness lives in
//! [`crate::arrivals`].)

use crate::controller::AdmissionEngine;
use crate::flows::FlowTable;
use crate::metrics::{OverflowMeter, PfEstimate, StopReason};
use crate::telemetry::MetricsSink;
use mbac_core::admission::AdmissionPolicy;
use mbac_core::estimators::snapshot_stats;
use mbac_metrics::MetricsSnapshot;
use mbac_num::rng::exponential;
use mbac_num::RunningStats;
use mbac_traffic::process::SourceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Impulsive load (§3)
// ---------------------------------------------------------------------

/// Configuration of the impulsive-load experiment.
#[derive(Debug, Clone)]
pub struct ImpulsiveConfig {
    /// Link capacity `c`.
    pub capacity: f64,
    /// Number of flows whose initial bandwidths feed the estimator
    /// (the paper uses `n = c/μ`).
    pub estimation_flows: usize,
    /// Mean holding time; `None` = infinite (flows never depart).
    pub mean_holding: Option<f64>,
    /// Times (after 0) at which to record the overflow indicator.
    pub observe_times: Vec<f64>,
    /// Number of independent replications.
    pub replications: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Aggregated results of the impulsive-load experiment.
#[derive(Debug, Clone)]
pub struct ImpulsiveReport {
    /// Distribution of the admitted count `M₀` across replications.
    pub m0: RunningStats,
    /// Per observation time: `(t, overflow count, mean load)`.
    pub observations: Vec<ImpulsiveObservation>,
    /// Number of replications performed.
    pub replications: usize,
}

/// Overflow statistics at one observation time.
#[derive(Debug, Clone, Copy)]
pub struct ImpulsiveObservation {
    /// Observation time.
    pub t: f64,
    /// Number of replications in which `S_t > c`.
    pub overflows: u64,
    /// Aggregate-load statistics across replications.
    pub load: RunningStats,
    /// Flows remaining in the system (mean across replications).
    pub mean_flows: f64,
}

impl ImpulsiveReport {
    /// Overflow probability estimate at observation index `i`.
    pub fn pf_at(&self, i: usize) -> f64 {
        let obs = &self.observations[i];
        obs.overflows as f64 / self.replications as f64
    }
}

/// What one replication of the impulsive experiment produces; merged
/// into the report in input (replication) order.
struct RepOutcome {
    m0: f64,
    /// Per observation time: `(load, flows in system)`.
    at: Vec<(f64, usize)>,
    /// Per-replication telemetry, when collection is on.
    metrics: Option<MetricsSnapshot>,
}

/// Runs the impulsive-load model: per replication, estimate `(μ̂, σ̂)`
/// from the initial bandwidths of `estimation_flows` flows (eqn (7)),
/// admit `⌊M₀⌋` flows per the policy (eqn (6)), then let the system
/// evolve and record the overflow indicator at each observation time.
///
/// Replications run in parallel over [`mbac_num::parallel::default_workers`]
/// threads; see [`run_impulsive_with_workers`] for the determinism
/// guarantees.
pub fn run_impulsive(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
) -> ImpulsiveReport {
    run_impulsive_with_workers(cfg, model, policy, mbac_num::parallel::default_workers())
}

/// [`run_impulsive`] with an explicit worker count.
///
/// Each replication `rep` draws from its own RNG stream seeded
/// `cfg.seed ^ rep`, and outcomes are merged in replication order, so
/// the report is **bit-identical for any worker count** (and across
/// machines): parallelism is an implementation detail, never a change
/// in scientific results.
pub fn run_impulsive_with_workers(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
    workers: usize,
) -> ImpulsiveReport {
    run_impulsive_metered(cfg, model, policy, workers, false).0
}

/// [`run_impulsive_with_workers`] plus telemetry: when `collect` is
/// true, every replication records into its own
/// [`crate::telemetry::SimMetrics`] bundle and the per-replication snapshots are folded
/// in replication input order, so the merged snapshot — like the report
/// — is bit-identical for any worker count. When `collect` is false the
/// snapshot is empty and the run costs nothing extra.
pub fn run_impulsive_metered(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
    workers: usize,
    collect: bool,
) -> (ImpulsiveReport, MetricsSnapshot) {
    assert!(cfg.capacity > 0.0);
    assert!(
        cfg.estimation_flows >= 2,
        "need ≥ 2 flows to estimate a variance"
    );
    assert!(cfg.replications > 0);
    let mut times = cfg.observe_times.clone();
    times.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation time"));
    assert!(times.first().is_none_or(|&t| t >= 0.0));

    let reps: Vec<u64> = (0..cfg.replications as u64).collect();
    let times_ref = &times;
    let outcomes = mbac_num::parallel::parallel_map_with(
        reps,
        |&rep| run_one_impulsive_rep(cfg, model, policy, times_ref, cfg.seed ^ rep, collect),
        workers,
    );

    let mut m0_stats = RunningStats::new();
    let mut obs: Vec<ImpulsiveObservation> = times
        .iter()
        .map(|&t| ImpulsiveObservation {
            t,
            overflows: 0,
            load: RunningStats::new(),
            mean_flows: 0.0,
        })
        .collect();
    let mut merged = MetricsSnapshot::new();
    for outcome in outcomes {
        m0_stats.push(outcome.m0);
        for (o, &(load, flows)) in obs.iter_mut().zip(&outcome.at) {
            o.load.push(load);
            o.mean_flows += flows as f64 / cfg.replications as f64;
            if load > cfg.capacity {
                o.overflows += 1;
            }
        }
        if let Some(snap) = &outcome.metrics {
            merged.merge(snap);
        }
    }

    (
        ImpulsiveReport {
            m0: m0_stats,
            observations: obs,
            replications: cfg.replications,
        },
        merged,
    )
}

fn run_one_impulsive_rep(
    cfg: &ImpulsiveConfig,
    model: &dyn SourceModel,
    policy: &dyn AdmissionPolicy,
    times: &[f64],
    seed: u64,
    collect: bool,
) -> RepOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sink = if collect {
        MetricsSink::enabled()
    } else {
        MetricsSink::disabled()
    };

    // Measure the initial bandwidths of the candidate burst.
    let candidates: Vec<Box<dyn mbac_traffic::process::RateProcess>> = (0..cfg.estimation_flows)
        .map(|_| model.spawn(&mut rng))
        .collect();
    let rates: Vec<f64> = candidates.iter().map(|c| c.rate()).collect();
    let est = snapshot_stats(&rates).expect("non-empty candidate burst");
    let m0 = policy.admissible_count(est, cfg.capacity);
    let admit = m0.floor().max(0.0) as usize;

    // Admit: reuse the measured candidates first (their *measured*
    // bandwidths are the admitted flows' bandwidths — essential for
    // the Y₀ correlation the theory predicts), spawn extras if
    // M₀ > n.
    let mut table = FlowTable::new();
    let mut iter = candidates.into_iter();
    for _ in 0..admit {
        let departs_at = match cfg.mean_holding {
            Some(th) => {
                if let Some(m) = sink.get_mut() {
                    m.rng_exp_draws.inc();
                }
                exponential(&mut rng, th)
            }
            None => f64::INFINITY,
        };
        match iter.next() {
            Some(proc_) => {
                table.admit_process(proc_, departs_at);
            }
            None => {
                table.admit(model, departs_at, &mut rng);
            }
        }
    }
    if let Some(m) = sink.get_mut() {
        m.admitted.add(admit as u64);
        m.admissible.set(m0);
    }

    // Evolve and observe.
    let at = times
        .iter()
        .map(|&t| {
            table.advance_to(t, &mut rng);
            table.depart_until(t);
            let (load, flows) = (table.aggregate_rate(), table.len());
            if let Some(m) = sink.get_mut() {
                m.ticks.inc();
                m.load.record(load);
                m.load_series.record(t, load);
                m.occupancy.record(flows as f64);
            }
            (load, flows)
        })
        .collect();
    if let Some(m) = sink.get_mut() {
        m.departed.add(table.departed_total());
    }
    RepOutcome {
        m0,
        at,
        metrics: sink.is_enabled().then(|| sink.snapshot()),
    }
}

// ---------------------------------------------------------------------
// Continuous load (§4)
// ---------------------------------------------------------------------

/// Configuration of the continuous-load simulation.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Link capacity `c`.
    pub capacity: f64,
    /// Mean flow holding time `T_h`.
    pub mean_holding: f64,
    /// Measurement/admission tick (should be ≲ `T_c/4`).
    pub tick: f64,
    /// Warm-up period discarded before sampling starts.
    pub warmup: f64,
    /// Spacing between overflow samples (paper: `2·max(T̃_h, T_m, T_c)`).
    pub sample_spacing: f64,
    /// QoS target `p_q`, used by termination criterion (b).
    pub target: f64,
    /// Maximum spaced samples before giving up (budget).
    pub max_samples: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ContinuousConfig {
    /// The paper's sample spacing rule: `2·max(T̃_h, T_m, T_c)`.
    pub fn paper_spacing(t_h_tilde: f64, t_m: f64, t_c: f64) -> f64 {
        2.0 * t_h_tilde.max(t_m).max(t_c)
    }
}

/// Results of a continuous-load run.
#[derive(Debug, Clone)]
pub struct ContinuousReport {
    /// The overflow-probability estimate with CI and method.
    pub pf: PfEstimate,
    /// Mean link utilization over the sampled period.
    pub mean_utilization: f64,
    /// Mean number of flows in the system at sample epochs.
    pub mean_flows: f64,
    /// Flows admitted over the whole run.
    pub admitted: u64,
    /// Flows departed over the whole run.
    pub departed: u64,
    /// Total simulated time.
    pub sim_time: f64,
}

/// Runs the continuous-load model: at every tick the flow processes
/// advance, departures are applied, the controller observes a snapshot,
/// and the system is topped up to the controller's current admissible
/// count (infinite arrival pressure — the paper's most stringent test).
/// Overflow is sampled at spaced epochs per §5.2 until a termination
/// criterion fires or the sample budget is exhausted.
pub fn run_continuous(
    cfg: &ContinuousConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
) -> ContinuousReport {
    run_continuous_in(cfg, model, ctl, FlowTable::new())
}

/// [`run_continuous`] against a caller-provided (empty) flow table —
/// the hook that lets benchmarks and the CLI A/B the batched engine
/// ([`FlowTable::new`]) against the boxed reference
/// ([`FlowTable::new_unbatched`]). Both engines consume the RNG
/// identically, so the two reports are bit-equal for a fixed seed.
///
/// Each tick takes **one** per-flow snapshot after advancing and
/// applying departures; the controller's `observe` and the overflow
/// meter both consume that same rate vector (the meter through its
/// sum), so measurement and metering can never disagree about the load.
pub fn run_continuous_in(
    cfg: &ContinuousConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
    table: FlowTable,
) -> ContinuousReport {
    run_continuous_metered(cfg, model, ctl, table, &mut MetricsSink::disabled())
}

/// [`run_continuous_in`] plus telemetry into the given sink. With a
/// [`MetricsSink::disabled`] sink every record site reduces to one
/// branch on an `Option` — the zero-cost mode all non-observability
/// callers get. With an enabled sink the run records the full
/// instrument bundle (see [`crate::telemetry::SimMetrics`]) and the
/// overflow meter's state is exported under `sim.pf.*`.
///
/// Wall-clock timing (`engine.tick_ns`) is only recorded when the sink
/// was built with timing on; default snapshots are deterministic, so
/// the batched and boxed engines yield **identical** snapshots for the
/// same seed.
pub fn run_continuous_metered(
    cfg: &ContinuousConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
    mut table: FlowTable,
    sink: &mut MetricsSink,
) -> ContinuousReport {
    assert!(cfg.capacity > 0.0 && cfg.mean_holding > 0.0);
    assert!(cfg.tick > 0.0 && cfg.sample_spacing > 0.0);
    assert!(cfg.warmup >= 0.0);
    assert!(table.is_empty(), "run_continuous_in needs a fresh table");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut meter = OverflowMeter::new(cfg.capacity, cfg.target);
    let mut snapshot = Vec::new();
    let mut flow_count = RunningStats::new();
    let mut prev_mean: Option<f64> = None;

    let mut t = 0.0f64;
    let mut next_sample = cfg.warmup.max(cfg.tick);
    let stop_reason;
    loop {
        let tick_started = sink
            .get_mut()
            .filter(|m| m.timing_enabled())
            .map(|_| std::time::Instant::now());
        t += cfg.tick;
        table.advance_to(t, &mut rng);
        table.depart_until(t);

        // Measure once; the controller and the meter share the vector.
        table.snapshot_into(&mut snapshot);
        ctl.observe(t, &snapshot);

        if let Some(m) = sink.get_mut() {
            let load: f64 = snapshot.iter().sum();
            m.ticks.inc();
            m.load.record(load);
            m.load_series.record(t, load);
            m.occupancy.record(table.len() as f64);
            if let Some((mean, _)) = ctl.estimate_stats() {
                if let Some(prev) = prev_mean {
                    m.innovation.record(mean - prev);
                }
                prev_mean = Some(mean);
            }
        }

        // Spaced overflow sampling after warm-up (before admissions:
        // a flow admitted this tick enters the measured load next tick).
        if t >= next_sample {
            next_sample += cfg.sample_spacing;
            meter.record(snapshot.iter().sum());
            flow_count.push(table.len() as f64);
            if let Some(reason) = meter.should_stop() {
                stop_reason = reason;
                break;
            }
            if meter.samples() >= cfg.max_samples {
                stop_reason = StopReason::BudgetExhausted;
                break;
            }
        }

        // Fill to the admissible limit.
        match ctl.admissible_count(cfg.capacity, table.len()) {
            Some(m) => {
                let limit = m.floor().max(0.0) as usize;
                // Ramp cap: at most max(1, 10% of current occupancy)
                // admissions per tick. Signaling is never infinitely
                // fast in practice, and the cap prevents a cold-start
                // estimate built from a handful of flows (σ̂ ≈ 0,
                // noisy μ̂) from instantly over-filling the link by a
                // factor of several — an artifact that would otherwise
                // take ~T_h to drain. The cap still reaches any target
                // occupancy exponentially within ~60 ticks, far inside
                // the warm-up, and steady-state M fluctuations are
                // O(√n), far below 10% of N.
                let cap = (table.len() / 10).max(1);
                let mut admitted_now = 0usize;
                while table.len() < limit && admitted_now < cap {
                    let departs = t + exponential(&mut rng, cfg.mean_holding);
                    table.admit(model, departs, &mut rng);
                    admitted_now += 1;
                }
                if let Some(sm) = sink.get_mut() {
                    sm.admissible.set(m);
                    sm.admitted.add(admitted_now as u64);
                    sm.rng_exp_draws.add(admitted_now as u64);
                    sm.denied.add(limit.saturating_sub(table.len()) as u64);
                }
            }
            None => {
                // Cold start: nothing measured yet — admit a seed flow.
                if table.is_empty() {
                    let departs = t + exponential(&mut rng, cfg.mean_holding);
                    table.admit(model, departs, &mut rng);
                    if let Some(sm) = sink.get_mut() {
                        sm.admitted.inc();
                        sm.rng_exp_draws.inc();
                    }
                }
            }
        }

        if let Some(started) = tick_started {
            let ns = started.elapsed().as_nanos() as f64;
            if let Some(m) = sink.get_mut() {
                m.tick_ns.record(ns);
            }
        }
    }

    if let Some(m) = sink.get_mut() {
        m.departed.add(table.departed_total());
    }
    if sink.is_enabled() {
        // Fold the meter's instrument state into the sink's bundle via
        // the caller-visible snapshot path.
        let mut extra = MetricsSnapshot::new();
        meter.export_into("sim.pf", &mut extra);
        sink.attach(extra);
    }

    ContinuousReport {
        pf: meter.finalize(stop_reason),
        mean_utilization: meter.mean_utilization(),
        mean_flows: flow_count.mean(),
        admitted: table.admitted_total(),
        departed: table.departed_total(),
        sim_time: t,
    }
}

// ---------------------------------------------------------------------
// Non-stationary (phased) continuous load — extension
// ---------------------------------------------------------------------

/// Per-phase results of a [`run_continuous_phased`] simulation.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Index into the phase schedule.
    pub phase: usize,
    /// Start time of the phase.
    pub from: f64,
    /// Overflow estimate over the phase's samples.
    pub pf: PfEstimate,
    /// Mean utilization over the phase's samples.
    pub mean_utilization: f64,
}

/// Continuous-load simulation with a *non-stationary* workload: the
/// source model changes at scheduled times, and flows admitted after a
/// switch are spawned from the new model (think: the content mix
/// changes at prime time). Existing flows keep their old statistics
/// until they depart, so the population mix drifts across the critical
/// time-scale — exactly the adaptivity scenario §2 of the paper defers:
/// "the results are valid if the traffic statistics are stationary
/// within the memory time-scale."
///
/// `phases` must be sorted by start time and begin at `0.0`. Sampling
/// runs to `cfg.max_samples` total (no early termination — the phases
/// are compared against each other), attributing each spaced sample to
/// the phase active at its epoch.
pub fn run_continuous_phased(
    cfg: &ContinuousConfig,
    phases: &[(f64, &dyn SourceModel)],
    ctl: &mut dyn AdmissionEngine,
) -> Vec<PhaseReport> {
    assert!(!phases.is_empty(), "need at least one phase");
    assert!(phases[0].0 == 0.0, "first phase must start at t = 0");
    assert!(
        phases.windows(2).all(|w| w[0].0 < w[1].0),
        "phases must be sorted by start time"
    );
    assert!(cfg.capacity > 0.0 && cfg.mean_holding > 0.0);
    assert!(cfg.tick > 0.0 && cfg.sample_spacing > 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut table = FlowTable::new();
    let mut meters: Vec<OverflowMeter> = phases
        .iter()
        .map(|_| OverflowMeter::new(cfg.capacity, cfg.target).with_min_samples(u64::MAX))
        .collect();
    let mut snapshot = Vec::new();
    let active_phase =
        |t: f64| -> usize { phases.iter().rposition(|&(from, _)| t >= from).unwrap_or(0) };

    let mut t = 0.0f64;
    let mut next_sample = cfg.warmup.max(cfg.tick);
    let mut total_samples = 0u64;
    while total_samples < cfg.max_samples {
        t += cfg.tick;
        table.advance_to(t, &mut rng);
        table.depart_until(t);
        // One snapshot per tick, shared by controller and meter (the
        // sampling runs before admissions, as in `run_continuous_in`).
        table.snapshot_into(&mut snapshot);
        ctl.observe(t, &snapshot);
        if t >= next_sample {
            next_sample += cfg.sample_spacing;
            meters[active_phase(t)].record(snapshot.iter().sum());
            total_samples += 1;
        }
        let model = phases[active_phase(t)].1;
        match ctl.admissible_count(cfg.capacity, table.len()) {
            Some(m) => {
                let limit = m.floor().max(0.0) as usize;
                // Ramp cap: at most max(1, 10% of current occupancy)
                // admissions per tick. Signaling is never infinitely
                // fast in practice, and the cap prevents a cold-start
                // estimate built from a handful of flows (σ̂ ≈ 0,
                // noisy μ̂) from instantly over-filling the link by a
                // factor of several — an artifact that would otherwise
                // take ~T_h to drain. The cap still reaches any target
                // occupancy exponentially within ~60 ticks, far inside
                // the warm-up, and steady-state M fluctuations are
                // O(√n), far below 10% of N.
                let cap = (table.len() / 10).max(1);
                let mut admitted_now = 0;
                while table.len() < limit && admitted_now < cap {
                    let departs = t + exponential(&mut rng, cfg.mean_holding);
                    table.admit(model, departs, &mut rng);
                    admitted_now += 1;
                }
            }
            None => {
                if table.is_empty() {
                    let departs = t + exponential(&mut rng, cfg.mean_holding);
                    table.admit(model, departs, &mut rng);
                }
            }
        }
    }

    phases
        .iter()
        .enumerate()
        .filter(|(i, _)| meters[*i].samples() > 0)
        .map(|(i, &(from, _))| PhaseReport {
            phase: i,
            from,
            pf: meters[i].finalize(StopReason::BudgetExhausted),
            mean_utilization: meters[i].mean_utilization(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MbacController;
    use mbac_core::admission::{CertaintyEquivalent, PerfectKnowledge};
    use mbac_core::estimators::{FilteredEstimator, MemorylessEstimator};
    use mbac_core::params::{FlowStats, QosTarget};
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    #[test]
    fn impulsive_with_perfect_knowledge_meets_target() {
        // Prop 3.3 baseline: the perfect-knowledge controller admits m*
        // and the steady-state overflow probability is ≈ p_q.
        let p_q = 0.05; // large target keeps the test cheap
        let m = model();
        let pk = PerfectKnowledge::new(FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(p_q));
        let cfg = ImpulsiveConfig {
            capacity: 400.0,
            estimation_flows: 400,
            mean_holding: None,
            observe_times: vec![50.0], // ≫ T_c = 1: steady state
            replications: 3000,
            seed: 42,
        };
        let rep = run_impulsive(&cfg, &m, &pk);
        let pf = rep.pf_at(0);
        assert!(
            (pf - p_q).abs() < 0.015,
            "perfect knowledge: pf {pf} should be ≈ {p_q}"
        );
        // M₀ is deterministic for perfect knowledge.
        assert!(rep.m0.std_dev() < 1e-9);
    }

    #[test]
    fn impulsive_certainty_equivalent_shows_sqrt2_penalty() {
        // The memoryless MBAC overshoots the target per Prop. 3.3:
        // p_f ≈ Q(α_q/√2) > p_q.
        let p_q = 0.02;
        let m = model();
        let ce = CertaintyEquivalent::from_probability(p_q);
        let cfg = ImpulsiveConfig {
            capacity: 400.0,
            estimation_flows: 400,
            mean_holding: None,
            observe_times: vec![50.0],
            replications: 4000,
            seed: 7,
        };
        let rep = run_impulsive(&cfg, &m, &ce);
        let pf = rep.pf_at(0);
        let predicted = mbac_num::q(mbac_num::inv_q(p_q) / std::f64::consts::SQRT_2);
        assert!(
            pf > 1.5 * p_q,
            "penalty must be visible: pf {pf} vs target {p_q}"
        );
        assert!(
            (pf - predicted).abs() < 0.03,
            "pf {pf} should be near the √2 prediction {predicted}"
        );
        // And M₀ fluctuates like (σ/μ)√n (Prop. 3.1): sd ≈ 0.3·20 = 6.
        assert!(
            (rep.m0.std_dev() - 6.0).abs() < 1.0,
            "M₀ sd = {}",
            rep.m0.std_dev()
        );
    }

    #[test]
    fn impulsive_departures_drain_the_system() {
        let m = model();
        let pk = PerfectKnowledge::new(FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(0.05));
        let cfg = ImpulsiveConfig {
            capacity: 100.0,
            estimation_flows: 100,
            mean_holding: Some(10.0),
            observe_times: vec![5.0, 10.0, 20.0, 40.0],
            replications: 200,
            seed: 11,
        };
        let rep = run_impulsive(&cfg, &m, &pk);
        // Mean flows must decay ≈ e^{-t/T_h}.
        let m0 = rep.m0.mean();
        for o in &rep.observations {
            let want = m0 * (-o.t / 10.0).exp();
            assert!(
                (o.mean_flows - want).abs() < 0.15 * m0,
                "t={}: flows {} vs expected {want}",
                o.t,
                o.mean_flows
            );
        }
        // Overflow probability at late times is ~0 (system drained).
        assert_eq!(rep.observations.last().unwrap().overflows, 0);
    }

    #[test]
    fn continuous_run_reaches_high_utilization() {
        let m = model();
        let mut ctl = MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let cfg = ContinuousConfig {
            capacity: 100.0,
            mean_holding: 100.0,
            tick: 0.25,
            warmup: 200.0,
            sample_spacing: 20.0,
            target: 1e-2,
            max_samples: 300,
            seed: 13,
        };
        let rep = run_continuous(&cfg, &m, &mut ctl);
        assert!(
            rep.mean_utilization > 0.8 && rep.mean_utilization <= 1.05,
            "utilization {}",
            rep.mean_utilization
        );
        assert!(
            rep.mean_flows > 80.0 && rep.mean_flows < 105.0,
            "flows {}",
            rep.mean_flows
        );
        assert!(rep.admitted > rep.departed);
        assert!(rep.pf.samples > 0);
    }

    #[test]
    fn continuous_memory_improves_overflow() {
        // The paper's central claim, in miniature: with everything else
        // fixed, an estimator with T_m ≈ T̃_h beats the memoryless one.
        let m = model();
        let run = |t_m: f64, seed: u64| {
            let mut ctl = MbacController::new(
                Box::new(FilteredEstimator::new(t_m)),
                Box::new(CertaintyEquivalent::from_probability(1e-2)),
            );
            let cfg = ContinuousConfig {
                capacity: 100.0,
                mean_holding: 100.0, // T̃_h = 10
                tick: 0.25,
                warmup: 300.0,
                sample_spacing: 20.0,
                target: 1e-2,
                max_samples: 1500,
                seed,
            };
            run_continuous(&cfg, &m, &mut ctl).pf.value
        };
        let memoryless = (run(0.0, 17) + run(0.0, 18) + run(0.0, 19)) / 3.0;
        let with_memory = (run(10.0, 17) + run(10.0, 18) + run(10.0, 19)) / 3.0;
        assert!(
            with_memory < memoryless,
            "memory must reduce pf: {with_memory} vs {memoryless}"
        );
    }

    #[test]
    fn continuous_conservation_invariant() {
        let m = model();
        let mut ctl = MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        );
        let cfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 100,
            seed: 23,
        };
        let rep = run_continuous(&cfg, &m, &mut ctl);
        // admitted − departed = flows still in the system ≥ 0.
        assert!(rep.admitted >= rep.departed);
        let in_system = rep.admitted - rep.departed;
        assert!(in_system > 0 && in_system < 80, "in-system {in_system}");
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let m = model();
        let mk = || {
            MbacController::new(
                Box::new(FilteredEstimator::new(5.0)),
                Box::new(CertaintyEquivalent::from_probability(1e-2)),
            )
        };
        let cfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 50,
            seed: 29,
        };
        let a = run_continuous(&cfg, &m, &mut mk());
        let b = run_continuous(&cfg, &m, &mut mk());
        assert_eq!(a.pf.value, b.pf.value);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.mean_utilization, b.mean_utilization);
    }

    #[test]
    fn impulsive_is_deterministic_for_any_worker_count() {
        let m = model();
        let ce = CertaintyEquivalent::from_probability(0.05);
        let cfg = ImpulsiveConfig {
            capacity: 60.0,
            estimation_flows: 60,
            mean_holding: Some(20.0),
            observe_times: vec![1.0, 5.0, 25.0],
            replications: 64,
            seed: 99,
        };
        let reference = run_impulsive_with_workers(&cfg, &m, &ce, 1);
        for workers in [2, 3, 4, 8] {
            let rep = run_impulsive_with_workers(&cfg, &m, &ce, workers);
            assert_eq!(rep.m0.mean(), reference.m0.mean(), "{workers} workers");
            assert_eq!(rep.m0.variance(), reference.m0.variance());
            for (a, b) in rep.observations.iter().zip(&reference.observations) {
                assert_eq!(a.overflows, b.overflows, "{workers} workers at t={}", a.t);
                assert_eq!(a.load.mean(), b.load.mean());
                assert_eq!(a.load.variance(), b.load.variance());
                assert_eq!(a.mean_flows, b.mean_flows);
            }
        }
    }

    #[test]
    fn continuous_batched_and_boxed_engines_are_bit_equal() {
        let m = model();
        let mk = || {
            MbacController::new(
                Box::new(FilteredEstimator::new(5.0)),
                Box::new(CertaintyEquivalent::from_probability(1e-2)),
            )
        };
        let cfg = ContinuousConfig {
            capacity: 50.0,
            mean_holding: 20.0,
            tick: 0.5,
            warmup: 10.0,
            sample_spacing: 10.0,
            target: 1e-2,
            max_samples: 50,
            seed: 31,
        };
        let batched = run_continuous_in(&cfg, &m, &mut mk(), FlowTable::new());
        let boxed = run_continuous_in(&cfg, &m, &mut mk(), FlowTable::new_unbatched());
        assert_eq!(batched.pf.value, boxed.pf.value);
        assert_eq!(batched.mean_utilization, boxed.mean_utilization);
        assert_eq!(batched.mean_flows, boxed.mean_flows);
        assert_eq!(batched.admitted, boxed.admitted);
        assert_eq!(batched.departed, boxed.departed);
    }

    #[test]
    fn paper_spacing_rule() {
        assert_eq!(ContinuousConfig::paper_spacing(10.0, 3.0, 1.0), 20.0);
        assert_eq!(ContinuousConfig::paper_spacing(1.0, 30.0, 1.0), 60.0);
        assert_eq!(ContinuousConfig::paper_spacing(1.0, 3.0, 50.0), 100.0);
    }
}
