//! Finite-arrival-rate (Poisson) load — the relaxation of the paper's
//! continuous-load worst case.
//!
//! §4 argues that "the performance of any admission control algorithm
//! under finite arrival rate will be no worse than its performance in
//! this [continuous-load] model". This scenario lets us check that claim
//! empirically and lets the examples model realistic call arrivals: flows
//! arrive as a Poisson process of rate `λ`, are admitted iff the
//! controller's criterion passes, and blocked otherwise (blocked flows
//! leave, they do not queue).

use crate::controller::AdmissionEngine;
use crate::events::EventQueue;
use crate::metrics::{OverflowMeter, PfEstimate, StopReason};
use crate::session::{
    require_non_negative, require_positive, ConfigError, RepContext, Scenario, SessionBuilder,
};
use crate::telemetry::MetricsSink;
use mbac_num::rng::exponential;
use mbac_num::RunningStats;
use mbac_traffic::process::SourceModel;
use std::cell::RefCell;

/// Configuration of the Poisson-arrival simulation.
#[derive(Debug, Clone)]
pub struct PoissonConfig {
    /// Link capacity `c`.
    pub capacity: f64,
    /// Flow arrival rate `λ`.
    pub arrival_rate: f64,
    /// Mean flow holding time `T_h`.
    pub mean_holding: f64,
    /// Measurement tick.
    pub tick: f64,
    /// Warm-up period.
    pub warmup: f64,
    /// Overflow sample spacing.
    pub sample_spacing: f64,
    /// QoS target (termination criterion (b)).
    pub target: f64,
    /// Sample budget.
    pub max_samples: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Results of a Poisson-arrival run.
#[derive(Debug, Clone)]
pub struct PoissonReport {
    /// Overflow-probability estimate.
    pub pf: PfEstimate,
    /// Fraction of arrivals that were blocked.
    pub blocking_probability: f64,
    /// Mean utilization at sample epochs.
    pub mean_utilization: f64,
    /// Mean flows in system at sample epochs.
    pub mean_flows: f64,
    /// Total arrivals offered.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
}

/// Events in the Poisson scenario.
enum Ev {
    Arrival,
    Tick,
    Sample,
}

/// The Poisson-arrival model as a [`Scenario`]: a single event-driven
/// replication in which flows arrive at rate `λ`, are admitted iff the
/// measured criterion allows one more flow, and blocked otherwise.
///
/// Like [`crate::runner::ContinuousLoad`], borrows the caller's
/// controller mutably and therefore runs through
/// [`SessionBuilder::run_local`].
pub struct PoissonLoad<'a> {
    cfg: PoissonConfig,
    model: &'a dyn SourceModel,
    ctl: RefCell<&'a mut dyn AdmissionEngine>,
}

impl<'a> PoissonLoad<'a> {
    /// Builds the scenario around the caller's controller.
    pub fn new(
        cfg: &PoissonConfig,
        model: &'a dyn SourceModel,
        ctl: &'a mut dyn AdmissionEngine,
    ) -> Self {
        PoissonLoad {
            cfg: cfg.clone(),
            model,
            ctl: RefCell::new(ctl),
        }
    }
}

impl Scenario for PoissonLoad<'_> {
    type Rep = PoissonReport;
    type Report = PoissonReport;

    fn validate(&self) -> Result<(), ConfigError> {
        require_positive("capacity", self.cfg.capacity)?;
        require_positive("arrival rate", self.cfg.arrival_rate)?;
        require_positive("mean holding time", self.cfg.mean_holding)?;
        require_positive("tick", self.cfg.tick)?;
        require_positive("sample spacing", self.cfg.sample_spacing)?;
        require_non_negative("warmup", self.cfg.warmup)
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_rep(&self, ctx: &RepContext, sink: &mut MetricsSink) -> PoissonReport {
        let cfg = &self.cfg;
        let mut guard = self.ctl.borrow_mut();
        let ctl: &mut dyn AdmissionEngine = &mut **guard;
        let mut rng = ctx.rng();
        let mut table = ctx.table();
        let mut meter = OverflowMeter::new(cfg.capacity, cfg.target);
        let mut q = EventQueue::new();
        let mut snapshot = ctx.scratch_rates();
        let mut flow_count = RunningStats::new();
        let mut offered = 0u64;
        let mut admitted = 0u64;

        q.schedule_at(exponential(&mut rng, 1.0 / cfg.arrival_rate), Ev::Arrival);
        q.schedule_at(cfg.tick, Ev::Tick);
        q.schedule_at(cfg.warmup.max(cfg.tick), Ev::Sample);

        // Fused tick path, chosen once — see `ContinuousLoad::run_rep`.
        let fused = ctl.supports_moments();

        let stop_reason = loop {
            let (t, ev) = q.pop().expect("event queue never drains");
            if fused && matches!(ev, Ev::Tick) {
                // Measurement tick: evolve, depart, and reduce in one
                // sweep (same advance→depart order as below, identical
                // RNG stream, the moment sum is the same flat fold the
                // slice path reports).
                let mom = table.advance_depart_measure(t, &mut rng, ctl.moment_pivot());
                ctl.observe_moments(t, &mom);
                if sink.is_enabled() {
                    let mut e = sink.entry(t);
                    e.ticks = 1;
                    e.load = mom.sum();
                    e.occupancy = table.len() as f64;
                }
                q.schedule_in(cfg.tick, Ev::Tick);
                continue;
            }
            if matches!(ev, Ev::Sample) {
                // Sample: evolve, depart, and fold the aggregate in the
                // same sweep instead of a second full pass through
                // `aggregate_rate`. PoissonLoad admits through exactly
                // one source model, so the table holds a single batch
                // group and the grouped `aggregate_rate` fold this
                // replaces is bit-identical to the moments' flat
                // flow-order sum (unlike the impulsive harness, which
                // mixes groups — see `FlowTable::aggregate_rate`). The
                // pivot only centers s₁/s₂, never the raw sum.
                let mom = table.advance_depart_measure(t, &mut rng, 0.0);
                meter.record(mom.sum());
                flow_count.push(table.len() as f64);
                if let Some(reason) = meter.should_stop() {
                    break reason;
                }
                if meter.samples() >= cfg.max_samples {
                    break StopReason::BudgetExhausted;
                }
                q.schedule_in(cfg.sample_spacing, Ev::Sample);
                continue;
            }
            table.advance_to(t, &mut rng);
            table.depart_until(t);
            match ev {
                Ev::Arrival => {
                    offered += 1;
                    // Admit iff the measured criterion allows one more flow.
                    let ok = match ctl.admissible_count(cfg.capacity, table.len()) {
                        Some(m) => ((table.len() + 1) as f64) <= m,
                        None => table.is_empty(), // cold start: seed flow
                    };
                    let mut holding_draw = 0u64;
                    if ok {
                        admitted += 1;
                        let departs = t + exponential(&mut rng, cfg.mean_holding);
                        table.admit(self.model, departs, &mut rng);
                        holding_draw = 1;
                    }
                    q.schedule_in(exponential(&mut rng, 1.0 / cfg.arrival_rate), Ev::Arrival);
                    if sink.is_enabled() {
                        // One unit-of-work entry per arrival: admitted
                        // or denied, plus the holding-time draw and the
                        // next-arrival scheduling draw.
                        let mut e = sink.entry(t);
                        e.admitted = holding_draw;
                        e.denied = 1 - holding_draw;
                        e.exp_draws = 1 + holding_draw;
                    }
                }
                Ev::Tick => {
                    table.snapshot_into(&mut snapshot);
                    ctl.observe(t, &snapshot);
                    if sink.is_enabled() {
                        let mut e = sink.entry(t);
                        e.ticks = 1;
                        e.load = snapshot.iter().sum();
                        e.occupancy = table.len() as f64;
                    }
                    q.schedule_in(cfg.tick, Ev::Tick);
                }
                Ev::Sample => unreachable!("samples take the fused path above"),
            }
        };

        if sink.is_enabled() {
            let mut e = sink.entry(q.now());
            e.departed = table.departed_total();
        }

        PoissonReport {
            pf: meter.finalize(stop_reason),
            blocking_probability: if offered == 0 {
                0.0
            } else {
                1.0 - admitted as f64 / offered as f64
            },
            mean_utilization: meter.mean_utilization(),
            mean_flows: flow_count.mean(),
            offered,
            admitted,
        }
    }

    fn fold(&self, mut reps: Vec<PoissonReport>) -> PoissonReport {
        reps.pop().expect("exactly one poisson replication")
    }
}

/// Runs the Poisson-arrival model with the given source and controller.
#[deprecated(note = "build a `PoissonLoad` and run it through `SessionBuilder::run_local`")]
pub fn run_poisson(
    cfg: &PoissonConfig,
    model: &dyn SourceModel,
    ctl: &mut dyn AdmissionEngine,
) -> PoissonReport {
    let scenario = PoissonLoad::new(cfg, model, ctl);
    SessionBuilder::new()
        .run_local(&scenario)
        .unwrap_or_else(|e| panic!("invalid poisson config: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MbacController;
    use mbac_core::admission::CertaintyEquivalent;
    use mbac_core::estimators::MemorylessEstimator;
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn controller(p: f64) -> MbacController {
        MbacController::new(
            Box::new(MemorylessEstimator::new()),
            Box::new(CertaintyEquivalent::from_probability(p)),
        )
    }

    fn config(arrival_rate: f64, seed: u64) -> PoissonConfig {
        PoissonConfig {
            capacity: 100.0,
            arrival_rate,
            mean_holding: 50.0,
            tick: 0.25,
            warmup: 150.0,
            sample_spacing: 15.0,
            target: 1e-2,
            max_samples: 400,
            seed,
        }
    }

    fn poisson(
        cfg: &PoissonConfig,
        m: &dyn SourceModel,
        ctl: &mut dyn AdmissionEngine,
    ) -> PoissonReport {
        SessionBuilder::new()
            .run_local(&PoissonLoad::new(cfg, m, ctl))
            .unwrap()
    }

    #[test]
    fn light_load_admits_everyone() {
        // Offered load λ·T_h = 0.2·50 = 10 flows ≪ capacity 100.
        let m = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let mut ctl = controller(1e-2);
        let rep = poisson(&config(0.2, 31), &m, &mut ctl);
        assert!(
            rep.blocking_probability < 0.02,
            "blocking {} under light load",
            rep.blocking_probability
        );
        assert!(
            rep.mean_flows > 5.0 && rep.mean_flows < 15.0,
            "flows {}",
            rep.mean_flows
        );
    }

    #[test]
    fn heavy_load_blocks_excess() {
        // Offered load 10·50 = 500 flows ≫ capacity 100: most blocked.
        let m = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let mut ctl = controller(1e-2);
        let rep = poisson(&config(10.0, 32), &m, &mut ctl);
        assert!(
            rep.blocking_probability > 0.6,
            "blocking {} under 5x overload",
            rep.blocking_probability
        );
        // But the link is well used.
        assert!(
            rep.mean_utilization > 0.7,
            "utilization {}",
            rep.mean_utilization
        );
    }

    #[test]
    fn finite_load_no_worse_than_continuous() {
        // §4's claim: overflow under finite λ is bounded by the
        // continuous-load overflow at the same parameters.
        use crate::runner::{ContinuousConfig, ContinuousLoad};
        let m = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let mut ctl_p = controller(1e-2);
        let pois = poisson(&config(4.0, 33), &m, &mut ctl_p);
        let mut ctl_c = controller(1e-2);
        let ccfg = ContinuousConfig {
            capacity: 100.0,
            mean_holding: 50.0,
            tick: 0.25,
            warmup: 150.0,
            sample_spacing: 15.0,
            target: 1e-2,
            max_samples: 400,
            seed: 33,
        };
        let cont = SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&ccfg, &m, &mut ctl_c))
            .unwrap();
        assert!(
            pois.pf.value <= cont.pf.value * 1.5 + 5e-3,
            "poisson pf {} should not exceed continuous pf {}",
            pois.pf.value,
            cont.pf.value
        );
    }

    #[test]
    fn offered_equals_admitted_plus_blocked() {
        let m = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let mut ctl = controller(1e-2);
        let rep = poisson(&config(2.0, 34), &m, &mut ctl);
        let blocked = (rep.blocking_probability * rep.offered as f64).round() as u64;
        assert_eq!(rep.offered, rep.admitted + blocked);
    }

    #[test]
    fn validation_rejects_bad_arrival_rate() {
        let m = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let mut ctl = controller(1e-2);
        let mut cfg = config(1.0, 1);
        cfg.arrival_rate = 0.0;
        let err = SessionBuilder::new()
            .run_local(&PoissonLoad::new(&cfg, &m, &mut ctl))
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NonPositive {
                field: "arrival rate",
                ..
            }
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shim_delegates_to_the_session() {
        let m = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let cfg = config(1.0, 55);
        let mut ctl_a = controller(1e-2);
        let shim = run_poisson(&cfg, &m, &mut ctl_a);
        let mut ctl_b = controller(1e-2);
        let builder = poisson(&cfg, &m, &mut ctl_b);
        assert_eq!(shim.pf.value, builder.pf.value);
        assert_eq!(shim.offered, builder.offered);
        assert_eq!(shim.admitted, builder.admitted);
    }
}
