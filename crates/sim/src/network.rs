//! The closed-loop routed network simulator: MBAC over a
//! [`Topology`], with admission feedback.
//!
//! Where [`crate::requests::RoutedLoad`] generates an *open-loop*
//! workload (occupancy scripted, decisions not fed back),
//! [`RoutedNetworkLoad`] closes the loop: each link runs its own
//! [`MbacController`] (a [`FilteredEstimator`] with memory `T_m`
//! feeding a certainty-equivalent criterion), each route holds a flow
//! population with exponential holding times, and a new flow enters
//! only when [`PathAdmission`] accepts it at *every* hop. Admitted
//! flows load every link on their route — the multi-hop composition
//! the paper's single-link design rule `T_m = T̃_h` is tested against
//! in the topology experiment.
//!
//! One replication is one realization of the whole network (the links
//! are correlated through shared flows, so they cannot be independent
//! replications); the Session pipeline runs replications in parallel
//! with the usual bit-determinism for any worker count and either
//! engine.

use crate::controller::MbacController;
use crate::flows::FlowTable;
use crate::session::{require_non_negative, require_positive, ConfigError, RepContext, Scenario};
use crate::telemetry::MetricsSink;
use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_core::topology::{LinkId, PathAdmission, RouteId, Topology};
use mbac_metrics::{Aggregated, Gauge, MetricValue, MetricsSnapshot};
use mbac_num::rng::{exponential, normal};
use mbac_traffic::process::SourceModel;
use std::sync::Arc;

/// Configuration of the closed-loop routed network simulation.
#[derive(Debug, Clone)]
pub struct RoutedNetworkConfig {
    /// The network: links with capacities, routes as hop lists.
    pub topology: Arc<Topology>,
    /// Measurement ticks per replication.
    pub ticks: usize,
    /// Measurement period `τ`.
    pub tick: f64,
    /// Ticks excluded from the overflow/utilization statistics while
    /// estimators and populations warm up.
    pub warmup_ticks: usize,
    /// Initial flows seeded on each route (warm estimator start; at
    /// least 2 so a variance exists).
    pub initial_flows_per_route: usize,
    /// Mean exponential holding time of admitted flows.
    pub mean_holding: f64,
    /// Admission attempts per route per tick; attempts stop at the
    /// first rejection (continuous pressure up to the acceptance
    /// boundary).
    pub attempts_per_tick: usize,
    /// Per-node measurement noise standard deviation (0 disables).
    pub noise_sd: f64,
    /// Estimator memory time-scale `T_m` (0 = memoryless).
    pub t_m: f64,
    /// Certainty-equivalent target overflow probability.
    pub p_ce: f64,
    /// Independent network replications.
    pub replications: usize,
    /// Base seed (the builder may override it).
    pub seed: u64,
}

/// Per-link outcome statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStats {
    /// Fraction of post-warmup ticks where the offered load exceeded
    /// capacity (the bufferless overflow probability `P_f`).
    pub pf: f64,
    /// Mean carried utilization `min(load, c) / c` over post-warmup
    /// ticks.
    pub utilization: f64,
    /// Mean measured occupancy over post-warmup ticks.
    pub occupancy: f64,
}

/// Per-route admission counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteStats {
    /// Requests admitted (at every hop).
    pub admitted: u64,
    /// Requests rejected (at some hop).
    pub blocked: u64,
}

/// The folded report of a routed network run.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedNetworkReport {
    /// Per-link statistics, averaged over replications.
    pub per_link: Vec<LinkStats>,
    /// Per-route admission counts, summed over replications.
    pub per_route: Vec<RouteStats>,
    /// Replications folded in.
    pub replications: usize,
}

impl RoutedNetworkReport {
    /// The worst per-link overflow probability — the network-level
    /// QoS violation measure.
    pub fn max_pf(&self) -> f64 {
        self.per_link.iter().map(|l| l.pf).fold(0.0, f64::max)
    }

    /// The report as a `net.link<i>.*` / `net.route<i>.*` metrics
    /// bundle (gauges for the per-link statistics, counters for the
    /// admission totals), built with `merge_prefixed` so it composes
    /// with the other instrument namespaces.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (i, l) in self.per_link.iter().enumerate() {
            let mut bundle = MetricsSnapshot::new();
            for (name, v) in [
                ("pf", l.pf),
                ("utilization", l.utilization),
                ("occupancy", l.occupancy),
            ] {
                let mut g = Gauge::new();
                g.set(v);
                bundle.insert(name, MetricValue::Gauge(g.snapshot()));
            }
            out.merge_prefixed(&format!("net.link{i}"), &bundle);
        }
        for (i, r) in self.per_route.iter().enumerate() {
            let mut bundle = MetricsSnapshot::new();
            let mut admitted = mbac_metrics::Counter::new();
            admitted.add(r.admitted);
            let mut blocked = mbac_metrics::Counter::new();
            blocked.add(r.blocked);
            bundle.insert("admitted", MetricValue::Counter(admitted.snapshot()));
            bundle.insert("blocked", MetricValue::Counter(blocked.snapshot()));
            out.merge_prefixed(&format!("net.route{i}"), &bundle);
        }
        out
    }
}

/// One replication's raw tallies (summed exactly in the fold, so the
/// report is bit-deterministic for any worker count).
#[derive(Debug, Clone)]
pub struct NetworkRep {
    overflow_ticks: Vec<u64>,
    util_sum: Vec<f64>,
    occupancy_sum: Vec<u64>,
    measured_ticks: u64,
    admitted: Vec<u64>,
    blocked: Vec<u64>,
}

/// The closed-loop routed network scenario.
pub struct RoutedNetworkLoad<'a> {
    /// The per-flow traffic model (RCBR, AR(1), trace, …).
    pub model: &'a dyn SourceModel,
    /// Simulation shape.
    pub cfg: RoutedNetworkConfig,
}

impl Scenario for RoutedNetworkLoad<'_> {
    type Rep = NetworkRep;
    type Report = RoutedNetworkReport;

    fn validate(&self) -> Result<(), ConfigError> {
        let cfg = &self.cfg;
        cfg.topology.validate()?;
        if cfg.replications == 0 {
            return Err(ConfigError::ZeroReplications);
        }
        if cfg.initial_flows_per_route < 2 {
            return Err(ConfigError::TooFewFlows {
                got: cfg.initial_flows_per_route,
            });
        }
        require_positive("ticks", cfg.ticks as f64)?;
        require_positive("tick", cfg.tick)?;
        require_positive("mean holding time", cfg.mean_holding)?;
        require_positive("target overflow probability", cfg.p_ce)?;
        require_non_negative("memory time-scale", cfg.t_m)?;
        require_non_negative("noise standard deviation", cfg.noise_sd)?;
        if cfg.warmup_ticks >= cfg.ticks {
            return Err(ConfigError::NonPositive {
                field: "post-warmup ticks",
                value: cfg.ticks as f64 - cfg.warmup_ticks as f64,
            });
        }
        Ok(())
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn replications(&self) -> usize {
        self.cfg.replications
    }

    fn run_rep(&self, ctx: &RepContext, sink: &mut MetricsSink) -> NetworkRep {
        let cfg = &self.cfg;
        let topo = &cfg.topology;
        let (links, routes) = (topo.links(), topo.routes());
        let mut rng = ctx.rng();
        let mut tables: Vec<FlowTable> = (0..routes).map(|_| ctx.table()).collect();
        let mut ctls: Vec<MbacController> = (0..links)
            .map(|_| {
                MbacController::new(
                    Box::new(FilteredEstimator::new(cfg.t_m)),
                    Box::new(CertaintyEquivalent::from_probability(cfg.p_ce)),
                )
            })
            .collect();
        let mut path = PathAdmission::for_topology(topo);
        let mut rep = NetworkRep {
            overflow_ticks: vec![0; links],
            util_sum: vec![0.0; links],
            occupancy_sum: vec![0; links],
            measured_ticks: 0,
            admitted: vec![0; routes],
            blocked: vec![0; routes],
        };
        // Seed each route's population (route order keeps the RNG
        // stream deterministic).
        for table in &mut tables {
            for _ in 0..cfg.initial_flows_per_route {
                let hold = exponential(&mut rng, cfg.mean_holding);
                table.admit(self.model, hold, &mut rng);
            }
        }
        let metrics_on = sink.is_enabled();
        if metrics_on {
            let mut e = sink.entry(0.0);
            e.admitted = (routes * cfg.initial_flows_per_route) as u64;
            e.exp_draws = (routes * cfg.initial_flows_per_route) as u64;
        }
        let mut route_snaps: Vec<Vec<f64>> = vec![Vec::new(); routes];
        let mut link_rates: Vec<f64> = Vec::new();
        let record = |step: usize| step > cfg.warmup_ticks;
        for step in 1..=cfg.ticks {
            let now = step as f64 * cfg.tick;
            // The tick's network-wide unit-of-work tallies (folded into
            // one entry at the bottom of the tick when metrics are on).
            let mut tick_departed = 0u64;
            let mut tick_load = 0.0f64;
            let mut tick_occ = 0u64;
            let mut tick_admitted = 0u64;
            let mut tick_blocked = 0u64;
            // Advance populations; departures free the whole path.
            for (r, table) in tables.iter_mut().enumerate() {
                table.advance_to(now, &mut rng);
                let departed = table.depart_until(now);
                if departed > 0 {
                    path.release(topo, RouteId(r as u32), departed as u32);
                    tick_departed += departed as u64;
                }
                table.snapshot_into(&mut route_snaps[r]);
            }
            // No fused-moments reuse is possible below: a link's load
            // is the union of the *crossing routes'* snapshots seen
            // through per-link measurement noise, not any one table's
            // aggregate, so the per-link sum has to fold the composed
            // (and possibly perturbed) vector. The per-route snapshots
            // above are the only full passes over flow state per tick.
            // Measure each link: union of crossing routes' flows, seen
            // through this node's noise; feed estimator, resync
            // occupancy, tally overflow/utilization.
            for link in topo.link_ids() {
                link_rates.clear();
                for route in topo.routes_crossing(link) {
                    link_rates.extend_from_slice(&route_snaps[route.index()]);
                }
                if cfg.noise_sd > 0.0 {
                    for v in &mut link_rates {
                        *v = (*v + normal(&mut rng, 0.0, cfg.noise_sd)).max(0.0);
                    }
                }
                let l = link.index();
                ctls[l].observe(now, &link_rates);
                path.sync(link, link_rates.len() as u32);
                if record(step) {
                    let load: f64 = link_rates.iter().sum();
                    let c = topo.capacity(link);
                    if load > c {
                        rep.overflow_ticks[l] += 1;
                    }
                    rep.util_sum[l] += load.min(c) / c;
                    rep.occupancy_sum[l] += link_rates.len() as u64;
                    tick_load += load;
                    tick_occ += link_rates.len() as u64;
                }
            }
            if record(step) {
                rep.measured_ticks += 1;
            }
            // Admission: continuous pressure per route up to the
            // acceptance boundary.
            for route in topo.route_ids() {
                for _ in 0..cfg.attempts_per_tick {
                    let ctls_ref = &ctls;
                    let mut oracle =
                        |link: LinkId, c: f64| ctls_ref[link.index()].admissible_count(c);
                    let d = path.decide(topo, route, &mut oracle);
                    if d.admit {
                        rep.admitted[route.index()] += 1;
                        tick_admitted += 1;
                        let hold = exponential(&mut rng, cfg.mean_holding);
                        tables[route.index()].admit(self.model, now + hold, &mut rng);
                    } else {
                        rep.blocked[route.index()] += 1;
                        tick_blocked += 1;
                        break;
                    }
                }
            }
            if metrics_on {
                // Network-aggregate entry: one per tick, summed across
                // links (load/occupancy are post-warmup only, matching
                // the report's measurement window).
                let mut e = sink.entry(now);
                e.ticks = 1;
                if record(step) {
                    e.load = tick_load;
                    e.occupancy = tick_occ as f64;
                }
                e.admitted = tick_admitted;
                e.denied = tick_blocked;
                e.exp_draws = tick_admitted;
                e.departed = tick_departed;
            }
        }
        rep
    }

    fn fold(&self, reps: Vec<NetworkRep>) -> RoutedNetworkReport {
        let topo = &self.cfg.topology;
        let (links, routes) = (topo.links(), topo.routes());
        let mut overflow = vec![0u64; links];
        let mut util = vec![0.0f64; links];
        let mut occupancy = vec![0u64; links];
        let mut measured = 0u64;
        let mut admitted = vec![0u64; routes];
        let mut blocked = vec![0u64; routes];
        for rep in &reps {
            for l in 0..links {
                overflow[l] += rep.overflow_ticks[l];
                util[l] += rep.util_sum[l];
                occupancy[l] += rep.occupancy_sum[l];
            }
            measured += rep.measured_ticks;
            for r in 0..routes {
                admitted[r] += rep.admitted[r];
                blocked[r] += rep.blocked[r];
            }
        }
        let denom = measured.max(1) as f64;
        RoutedNetworkReport {
            per_link: (0..links)
                .map(|l| LinkStats {
                    pf: overflow[l] as f64 / denom,
                    utilization: util[l] / denom,
                    occupancy: occupancy[l] as f64 / denom,
                })
                .collect(),
            per_route: (0..routes)
                .map(|r| RouteStats {
                    admitted: admitted[r],
                    blocked: blocked[r],
                })
                .collect(),
            replications: reps.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Engine, SessionBuilder};
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    fn config(topology: Topology) -> RoutedNetworkConfig {
        RoutedNetworkConfig {
            topology: Arc::new(topology),
            ticks: 60,
            tick: 0.5,
            warmup_ticks: 10,
            initial_flows_per_route: 4,
            mean_holding: 20.0,
            attempts_per_tick: 2,
            noise_sd: 0.0,
            t_m: 2.0,
            p_ce: 1e-2,
            replications: 4,
            seed: 17,
        }
    }

    #[test]
    fn closed_loop_fills_links_toward_capacity() {
        let m = model();
        let load = RoutedNetworkLoad {
            model: &m,
            cfg: config(Topology::parking_lot(3, 12.0)),
        };
        let report = SessionBuilder::new().run(&load).unwrap();
        assert_eq!(report.per_link.len(), 3);
        assert_eq!(report.per_route.len(), 4);
        let admitted: u64 = report.per_route.iter().map(|r| r.admitted).sum();
        let blocked: u64 = report.per_route.iter().map(|r| r.blocked).sum();
        assert!(admitted > 0, "admission must let some flows in");
        assert!(blocked > 0, "MBAC must eventually push back");
        for l in &report.per_link {
            assert!(l.utilization > 0.2, "links must carry load: {l:?}");
            assert!(l.utilization <= 1.0);
            assert!(l.pf < 0.5, "MBAC must keep overflow bounded: {l:?}");
        }
    }

    #[test]
    fn report_is_worker_and_engine_invariant() {
        let m = model();
        let load = RoutedNetworkLoad {
            model: &m,
            cfg: config(Topology::star(3, 10.0)),
        };
        let reference = SessionBuilder::new().workers(1).run(&load).unwrap();
        for workers in [2, 4] {
            let r = SessionBuilder::new().workers(workers).run(&load).unwrap();
            assert_eq!(r, reference, "diverged at {workers} workers");
        }
        let boxed = SessionBuilder::new()
            .engine(Engine::Boxed)
            .run(&load)
            .unwrap();
        assert_eq!(boxed, reference, "boxed engine diverged");
    }

    #[test]
    fn metrics_snapshot_namespaces_per_link_and_route() {
        let m = model();
        let load = RoutedNetworkLoad {
            model: &m,
            cfg: config(Topology::parking_lot(2, 10.0)),
        };
        let report = SessionBuilder::new().run(&load).unwrap();
        let snap = report.metrics_snapshot();
        for l in 0..2 {
            for name in ["pf", "utilization", "occupancy"] {
                assert!(
                    matches!(
                        snap.get(&format!("net.link{l}.{name}")),
                        Some(MetricValue::Gauge(_))
                    ),
                    "missing net.link{l}.{name}"
                );
            }
        }
        match snap.get("net.route0.admitted") {
            Some(MetricValue::Counter(c)) => {
                assert_eq!(c.count, report.per_route[0].admitted);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let m = model();
        let mut cfg = config(Topology::single_link(10.0));
        cfg.warmup_ticks = cfg.ticks;
        assert!(RoutedNetworkLoad { model: &m, cfg }.validate().is_err());
        let mut cfg = config(Topology::single_link(10.0));
        cfg.replications = 0;
        assert_eq!(
            RoutedNetworkLoad { model: &m, cfg }.validate().unwrap_err(),
            ConfigError::ZeroReplications
        );
    }
}
