//! Performance of the simulation substrate: event-queue throughput and
//! end-to-end simulation cost per unit of simulated time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_metrics::{StreamConfig, StreamSink};
use mbac_sim::{
    rep_seed, ContinuousConfig, ContinuousLoad, Engine, EventQueue, FlowTable, ImpulsiveConfig,
    ImpulsiveLoad, MbacController, MetricsMode, RepContext, Scenario, SessionBuilder,
};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ar1() -> Ar1Model {
    Ar1Model::new(Ar1Config {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        tick: 0.05,
        clamp_at_zero: true,
    })
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_cycle", |b| {
        let mut q = EventQueue::new();
        b.iter(|| {
            // Schedule relative to the queue's own clock: popping
            // advances `now`, so absolute times must move with it.
            let base = q.now();
            q.schedule_at(base + 7.3, black_box(1u32));
            q.schedule_at(base + 2.1, black_box(2u32));
            q.pop();
            q.pop();
        })
    });
    g.bench_function("schedule_1k_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000 {
                q.schedule_at(((i * 7919) % 1000) as f64, i);
            }
            while q.pop().is_some() {}
            q.now()
        })
    });
    g.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_table");
    let model = mbac_bench::bench_rcbr();
    for &n in &[100usize, 1000] {
        g.bench_with_input(BenchmarkId::new("advance_snapshot", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut table = FlowTable::new();
            for _ in 0..n {
                table.admit(&model, f64::INFINITY, &mut rng);
            }
            let mut snap = Vec::new();
            let mut t = 0.0;
            b.iter(|| {
                t += 0.25;
                table.advance_to(t, &mut rng);
                table.snapshot_into(&mut snap);
                snap.iter().sum::<f64>()
            })
        });
    }
    g.finish();
}

fn bench_continuous_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("continuous_sim");
    g.sample_size(10);
    for &n in &[100.0f64, 400.0] {
        g.bench_with_input(BenchmarkId::new("200_samples", n as u64), &n, |b, &n| {
            b.iter(|| {
                let mut ctl = MbacController::new(
                    Box::new(FilteredEstimator::new(5.0)),
                    Box::new(CertaintyEquivalent::from_probability(1e-2)),
                );
                let cfg = ContinuousConfig {
                    capacity: n,
                    mean_holding: 10.0 * n.sqrt(),
                    tick: 0.25,
                    warmup: 50.0,
                    sample_spacing: 20.0,
                    target: 1e-2,
                    max_samples: 200,
                    seed: 6,
                };
                SessionBuilder::new()
                    .run_local(&ContinuousLoad::new(
                        &cfg,
                        &mbac_bench::bench_rcbr(),
                        &mut ctl,
                    ))
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// Boxed vs batched engines on the continuous tick loop — the headline
/// comparison for the SoA flow engine (see results/BENCH_simulator.json
/// for the machine-readable numbers produced by `bench_json`).
fn bench_engine_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let cfg = |n: f64| ContinuousConfig {
        capacity: n,
        mean_holding: 10.0 * n.sqrt(),
        tick: 0.25,
        warmup: 50.0,
        sample_spacing: 20.0,
        target: 1e-2,
        max_samples: 100,
        seed: 6,
    };
    let mk = || {
        MbacController::new(
            Box::new(FilteredEstimator::new(5.0)),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        )
    };
    {
        let run = |n: f64, model: &dyn mbac_traffic::process::SourceModel, engine: Engine| {
            let mut ctl = mk();
            SessionBuilder::new()
                .engine(engine)
                .run_local(&ContinuousLoad::new(&cfg(n), model, &mut ctl))
                .unwrap()
        };
        let &n = &400.0f64;
        g.bench_with_input(BenchmarkId::new("boxed_rcbr", n as u64), &n, |b, &n| {
            b.iter(|| run(n, &mbac_bench::bench_rcbr(), Engine::Boxed))
        });
        g.bench_with_input(BenchmarkId::new("batched_rcbr", n as u64), &n, |b, &n| {
            b.iter(|| run(n, &mbac_bench::bench_rcbr(), Engine::Batched))
        });
        g.bench_with_input(BenchmarkId::new("boxed_ar1", n as u64), &n, |b, &n| {
            b.iter(|| run(n, &bench_ar1(), Engine::Boxed))
        });
        g.bench_with_input(BenchmarkId::new("batched_ar1", n as u64), &n, |b, &n| {
            b.iter(|| run(n, &bench_ar1(), Engine::Batched))
        });
    }
    g.finish();
}

/// Telemetry overhead guard: the same continuous run with the sink
/// disabled (the default every scientific caller gets — must stay
/// within noise of the pre-telemetry baseline) vs enabled (full
/// instrument bundle). The disabled case costs one `Option` branch per
/// record site; any visible gap between `disabled` and the historic
/// `continuous_sim` numbers is a regression in the zero-cost mode.
fn bench_metrics_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_overhead");
    g.sample_size(10);
    let cfg = ContinuousConfig {
        capacity: 400.0,
        mean_holding: 200.0,
        tick: 0.25,
        warmup: 50.0,
        sample_spacing: 20.0,
        target: 1e-2,
        max_samples: 200,
        seed: 6,
    };
    let mk = || {
        MbacController::new(
            Box::new(FilteredEstimator::new(5.0)),
            Box::new(CertaintyEquivalent::from_probability(1e-2)),
        )
    };
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let mut ctl = mk();
            SessionBuilder::new()
                .run_local(&ContinuousLoad::new(
                    &cfg,
                    &mbac_bench::bench_rcbr(),
                    &mut ctl,
                ))
                .unwrap()
        })
    });
    g.bench_function("enabled", |b| {
        b.iter(|| {
            let mut ctl = mk();
            let (_, snap) = SessionBuilder::new()
                .metrics(MetricsMode::Enabled)
                .run_local_metered(&ContinuousLoad::new(
                    &cfg,
                    &mbac_bench::bench_rcbr(),
                    &mut ctl,
                ))
                .unwrap();
            snap.len()
        })
    });
    // Streaming adds a sampler draw per fold plus ring pushes for kept
    // records; with sampling off it should ride within noise of
    // `enabled` (the near-zero-cost emission claim).
    g.bench_function("streaming", |b| {
        b.iter(|| {
            let sink = StreamSink::to_writer(StreamConfig::default(), Box::new(std::io::sink()));
            let mut ctl = mk();
            let (_, snap) = SessionBuilder::new()
                .stream(sink.handle())
                .run_local_metered(&ContinuousLoad::new(
                    &cfg,
                    &mbac_bench::bench_rcbr(),
                    &mut ctl,
                ))
                .unwrap();
            let stats = sink.finish().unwrap();
            (snap.len(), stats.intervals)
        })
    });
    g.finish();
}

/// Replication-parallel impulsive harness at 1 vs N workers.
fn bench_impulsive_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("impulsive_workers");
    g.sample_size(10);
    let cfg = ImpulsiveConfig {
        capacity: 100.0,
        estimation_flows: 100,
        mean_holding: Some(10.0),
        observe_times: vec![1.0, 5.0, 20.0],
        replications: 200,
        seed: 3,
    };
    let policy = CertaintyEquivalent::from_probability(1e-2);
    for &workers in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("200_reps", workers), &workers, |b, &w| {
            let model = mbac_bench::bench_rcbr();
            b.iter(|| {
                SessionBuilder::new()
                    .workers(w)
                    .run(&ImpulsiveLoad::new(&cfg, &model, &policy))
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// Session-pipeline overhead: the same impulsive replication set driven
/// directly (hand-built `RepContext` per rep, manual fold) vs through
/// `SessionBuilder::run_local`. The builder path adds validation, seed
/// derivation and the merge/fold plumbing; it must stay within noise of
/// the direct path so no caller has a reason to bypass it.
fn bench_session_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_overhead");
    g.sample_size(10);
    let cfg = ImpulsiveConfig {
        capacity: 100.0,
        estimation_flows: 100,
        mean_holding: Some(10.0),
        observe_times: vec![1.0, 5.0, 20.0],
        replications: 100,
        seed: 11,
    };
    let policy = CertaintyEquivalent::from_probability(1e-2);
    let model = mbac_bench::bench_rcbr();
    g.bench_function("direct", |b| {
        let scenario = ImpulsiveLoad::new(&cfg, &model, &policy);
        b.iter(|| {
            let reps = (0..scenario.replications())
                .map(|rep| {
                    let rep = rep as u64;
                    let ctx = RepContext {
                        rep,
                        seed: rep_seed(cfg.seed, rep),
                        engine: Engine::Batched,
                    };
                    scenario.run_rep(&ctx, &mut mbac_sim::MetricsSink::disabled())
                })
                .collect();
            scenario.fold(reps)
        })
    });
    g.bench_function("builder", |b| {
        let scenario = ImpulsiveLoad::new(&cfg, &model, &policy);
        b.iter(|| SessionBuilder::new().run_local(&scenario).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_flow_table,
    bench_continuous_sim,
    bench_engine_comparison,
    bench_metrics_overhead,
    bench_impulsive_workers,
    bench_session_overhead,
);
criterion_main!(benches);
