//! Performance of the core admission-control operations: the costs that
//! sit on a switch's call-setup path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mbac_core::admission::{gaussian_admissible_count, AdmissionPolicy, CertaintyEquivalent};
use mbac_core::estimators::{Estimate, Estimator, FilteredEstimator, MemorylessEstimator};
use mbac_core::params::QosTarget;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_num::{inv_q, q};

fn bench_special_functions(c: &mut Criterion) {
    let mut g = c.benchmark_group("special_functions");
    g.bench_function("q_tail", |b| b.iter(|| q(black_box(4.2))));
    g.bench_function("inv_q_moderate", |b| b.iter(|| inv_q(black_box(1e-3))));
    g.bench_function("inv_q_deep_tail", |b| b.iter(|| inv_q(black_box(1e-12))));
    g.finish();
}

fn bench_admission_decision(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission_decision");
    let alpha = inv_q(1e-3);
    g.bench_function("gaussian_admissible_count", |b| {
        b.iter(|| {
            gaussian_admissible_count(black_box(1.0), black_box(0.3), alpha, black_box(1000.0))
        })
    });
    let ce = CertaintyEquivalent::new(QosTarget::new(1e-3));
    let est = Estimate::new(1.02, 0.091);
    g.bench_function("certainty_equivalent_admit", |b| {
        b.iter(|| ce.admit(black_box(est), black_box(1000.0), black_box(900)))
    });
    g.finish();
}

fn bench_estimator_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimator_update");
    for &n in &[100usize, 1000, 10_000] {
        let snapshot: Vec<f64> = (0..n).map(|i| 1.0 + 0.3 * ((i as f64).sin())).collect();
        g.bench_with_input(BenchmarkId::new("memoryless", n), &snapshot, |b, s| {
            let mut est = MemorylessEstimator::new();
            let mut t = 0.0;
            b.iter(|| {
                t += 1.0;
                est.observe(t, s);
                est.estimate()
            })
        });
        g.bench_with_input(BenchmarkId::new("filtered", n), &snapshot, |b, s| {
            let mut est = FilteredEstimator::new(10.0);
            let mut t = 0.0;
            b.iter(|| {
                t += 1.0;
                est.observe(t, s);
                est.estimate()
            })
        });
    }
    g.finish();
}

fn bench_theory_formulas(c: &mut Criterion) {
    let mut g = c.benchmark_group("theory_formulas");
    let model = ContinuousModel::new(0.3, 31.6, 1.0);
    let alpha = inv_q(1e-3);
    g.bench_function("pf_eqn38_closed_form", |b| {
        b.iter(|| model.pf_with_memory_separated(black_box(alpha), black_box(8.0)))
    });
    g.bench_function("pf_eqn37_numeric_integration", |b| {
        b.iter(|| model.pf_with_memory(black_box(alpha), black_box(8.0)))
    });
    g.bench_function("invert_pce_separated", |b| {
        b.iter(|| invert_pce(&model, black_box(8.0), 1e-3, InvertMethod::Separated))
    });
    g.bench_function("invert_pce_general", |b| {
        b.iter(|| invert_pce(&model, black_box(8.0), 1e-3, InvertMethod::General))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_special_functions,
    bench_admission_decision,
    bench_estimator_updates,
    bench_theory_formulas
);
criterion_main!(benches);
