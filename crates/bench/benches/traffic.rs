//! Performance of the traffic substrate: per-flow advancement (the
//! inner loop of every simulation) and trace/fGn generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mbac_traffic::ar1::{Ar1Config, Ar1Source};
use mbac_traffic::fgn::{davies_harte, hosking};
use mbac_traffic::markov::{MarkovFluidModel, MarkovFluidSource};
use mbac_traffic::process::{RateProcess, SourceModel};
use mbac_traffic::rcbr::{RcbrConfig, RcbrSource};
use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
use mbac_traffic::trace::{TraceModel, TraceSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_source_advance(c: &mut Criterion) {
    let mut g = c.benchmark_group("source_advance_dt0.25");
    let mut rng = StdRng::seed_from_u64(1);

    let mut rcbr = RcbrSource::new(RcbrConfig::paper_default(1.0), &mut rng);
    g.bench_function("rcbr", |b| {
        b.iter(|| {
            rcbr.advance(black_box(0.25), &mut rng);
            rcbr.rate()
        })
    });

    let mut onoff = MarkovFluidSource::new(MarkovFluidModel::on_off(2.0, 1.0, 3.0), &mut rng);
    g.bench_function("markov_on_off", |b| {
        b.iter(|| {
            onoff.advance(black_box(0.25), &mut rng);
            onoff.rate()
        })
    });

    let mut ar1 = Ar1Source::new(
        Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: true,
        },
        &mut rng,
    );
    g.bench_function("ar1", |b| {
        b.iter(|| {
            ar1.advance(black_box(0.25), &mut rng);
            ar1.rate()
        })
    });

    let trace = Arc::new(generate_starwars_like(
        &StarwarsConfig {
            slots: 1 << 12,
            ..StarwarsConfig::default()
        },
        &mut rng,
    ));
    let mut playback = TraceSource::new(trace, &mut rng);
    g.bench_function("trace_playback", |b| {
        b.iter(|| {
            playback.advance(black_box(0.25), &mut rng);
            playback.rate()
        })
    });
    g.finish();
}

fn bench_fgn_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fgn_generation");
    g.sample_size(20);
    for &n in &[1024usize, 4096] {
        g.bench_with_input(BenchmarkId::new("davies_harte", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| davies_harte(0.8, n, &mut rng))
        });
        g.bench_with_input(BenchmarkId::new("hosking", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| hosking(0.8, n, &mut rng))
        });
    }
    g.finish();
}

fn bench_flow_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_spawn");
    let mut rng = StdRng::seed_from_u64(4);
    let rcbr = mbac_bench::bench_rcbr();
    g.bench_function("rcbr_spawn", |b| b.iter(|| rcbr.spawn(&mut rng)));
    let trace = Arc::new(generate_starwars_like(
        &StarwarsConfig {
            slots: 1 << 12,
            ..StarwarsConfig::default()
        },
        &mut rng,
    ));
    let model = TraceModel::new(trace);
    g.bench_function("trace_spawn", |b| b.iter(|| model.spawn(&mut rng)));
    g.finish();
}

criterion_group!(
    benches,
    bench_source_advance,
    bench_fgn_generation,
    bench_flow_spawn
);
criterion_main!(benches);
