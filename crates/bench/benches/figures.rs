//! Figure-regeneration benches: one criterion group per experiment in
//! DESIGN.md §3, each running a miniature (quick-budget) version of the
//! corresponding pipeline. `cargo bench` therefore exercises every
//! figure end to end; the publication-fidelity series come from the
//! `mbac-experiments` binaries (`cargo run --release -p mbac-experiments
//! --bin exp_fig5`, etc.).

use criterion::{criterion_group, criterion_main, Criterion};
use mbac_core::admission::CertaintyEquivalent;
use mbac_core::params::QosTarget;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_experiments::scenarios::{ContinuousScenario, TraceScenario};
use mbac_sim::{ImpulsiveConfig, ImpulsiveLoad, SessionBuilder};
use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn tiny_continuous(t_m: f64, t_c: f64, seed: u64) -> ContinuousScenario {
    ContinuousScenario {
        n: 100.0,
        t_h: 100.0,
        t_c,
        t_m,
        p_ce: 1e-2,
        p_q: 1e-2,
        max_samples: 60,
        seed,
    }
}

fn bench_prop33(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_prop33");
    g.sample_size(10);
    g.bench_function("impulsive_pipeline", |b| {
        let model = mbac_bench::bench_rcbr();
        let ce = CertaintyEquivalent::from_probability(1e-2);
        let cfg = ImpulsiveConfig {
            capacity: 100.0,
            estimation_flows: 100,
            mean_holding: None,
            observe_times: vec![20.0],
            replications: 300,
            seed: 1,
        };
        b.iter(|| {
            SessionBuilder::new()
                .run(&ImpulsiveLoad::new(&cfg, &model, &ce))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_finite_holding(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_eqn21");
    g.sample_size(10);
    g.bench_function("impulsive_departures_pipeline", |b| {
        let model = mbac_bench::bench_rcbr();
        let ce = CertaintyEquivalent::from_probability(1e-2);
        let cfg = ImpulsiveConfig {
            capacity: 100.0,
            estimation_flows: 100,
            mean_holding: Some(50.0),
            observe_times: vec![0.5, 2.0, 8.0, 32.0],
            replications: 200,
            seed: 2,
        };
        b.iter(|| {
            SessionBuilder::new()
                .run(&ImpulsiveLoad::new(&cfg, &model, &ce))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("theory_plus_sim_point", |b| {
        b.iter(|| {
            let sc = tiny_continuous(5.0, 1.0, 3);
            (
                sc.theory_pf_closed(),
                sc.theory_pf_general(),
                sc.run().pf.value,
            )
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.bench_function("invert_pce_curve_15pts", |b| {
        let model = ContinuousModel::new(0.3, 31.6, 1.0);
        b.iter(|| {
            (0..15)
                .map(|k| {
                    let t_m = 2f64.powi(k - 2);
                    invert_pce(&model, t_m, 1e-3, InvertMethod::Separated)
                        .map(|a| a.p_ce)
                        .unwrap_or(1e-3)
                })
                .sum::<f64>()
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("adjusted_target_sim_point", |b| {
        let model = ContinuousModel::new(0.3, 10.0, 1.0);
        let p_ce = invert_pce(&model, 5.0, 1e-2, InvertMethod::Separated)
            .map(|a| a.p_ce)
            .unwrap_or(1e-2);
        b.iter(|| {
            let mut sc = tiny_continuous(5.0, 1.0, 4);
            sc.p_ce = p_ce.max(1e-300);
            sc.run().pf.value
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.bench_function("eqn37_grid_5x5", |b| {
        let alpha = QosTarget::new(1e-3).alpha();
        b.iter(|| {
            let mut acc = 0.0;
            for &r in &[0.01, 0.1, 0.25, 0.5, 1.0] {
                for &t_c in &[0.1, 0.3, 1.0, 3.0, 10.0] {
                    let m = ContinuousModel::new(0.3, 31.6, t_c);
                    acc += m.pf_with_memory(alpha, r * 31.6);
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("sim_grid_2x2", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &r in &[0.1, 1.0] {
                for &t_c in &[0.5, 2.0] {
                    acc += tiny_continuous(r * 10.0, t_c, 5).run().pf.value;
                }
            }
            acc
        })
    });
    g.finish();
}

fn lrd_trace() -> Arc<mbac_traffic::trace::Trace> {
    Arc::new(generate_starwars_like(
        &StarwarsConfig {
            slots: 1 << 12,
            ..StarwarsConfig::default()
        },
        &mut StdRng::seed_from_u64(6),
    ))
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let trace = lrd_trace();
    g.bench_function("lrd_memoryless_point", |b| {
        b.iter(|| {
            TraceScenario {
                trace: trace.clone(),
                n: 50.0,
                t_h: 200.0,
                t_m: 0.0,
                p_ce: 1e-2,
                p_q: 1e-2,
                max_samples: 50,
                seed: 7,
            }
            .run()
            .pf
            .value
        })
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    let trace = lrd_trace();
    g.bench_function("lrd_window_rule_point", |b| {
        b.iter(|| {
            TraceScenario {
                trace: trace.clone(),
                n: 50.0,
                t_h: 200.0,
                t_m: 200.0 / 50f64.sqrt(),
                p_ce: 1e-2,
                p_q: 1e-2,
                max_samples: 50,
                seed: 8,
            }
            .run()
            .pf
            .value
        })
    });
    g.finish();
}

fn bench_utilization(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_eqn40");
    g.bench_function("utilization_arithmetic", |b| {
        let flow = mbac_core::params::FlowStats::from_mean_sd(1.0, 0.3);
        b.iter(|| {
            mbac_core::theory::utilization::utilization_loss(400.0, flow, 1e-5, 1e-3)
                + mbac_core::theory::utilization::mean_utilization(400.0, flow, 3.0)
        })
    });
    g.finish();
}

fn bench_heterogeneous(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_sec54");
    g.bench_function("classified_estimator_snapshot_400", |b| {
        use mbac_core::estimators::heterogeneous::ClassifiedEstimator;
        let flows: Vec<(usize, f64)> = (0..400)
            .map(|i| {
                (
                    i % 2,
                    1.0 + (i % 2) as f64 * 3.0 + (i as f64 * 0.7).sin() * 0.2,
                )
            })
            .collect();
        let mut est = ClassifiedEstimator::new(2, 5.0);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            est.observe(t, &flows);
            est.aggregate()
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_prop33,
    bench_finite_holding,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_utilization,
    bench_heterogeneous
);
criterion_main!(figures);
