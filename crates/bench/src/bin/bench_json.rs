//! Emits machine-readable performance numbers for the batched flow
//! engine, the fused tick kernels, the admission hot path, and the
//! persistent replication pool to `results/BENCH_simulator.json`, and
//! appends a one-line summary to `results/BENCH_trajectory.jsonl`.
//!
//! Five measurements:
//!
//! 1. **Tick loop** (the hot path): advance + departures + snapshot for
//!    `N` flows, comparing
//!    * `seed_boxed` — the pre-batching engine, reproduced literally
//!      (including its Marsaglia-polar Gaussian and inverse-CDF
//!      exponential samplers): one box per flow, a virtual `advance`
//!      walk, a second virtual `rate()` walk for the snapshot, and an
//!      O(N) `retain` departure scan per tick;
//!    * `unbatched` — `FlowTable::new_unbatched()` (boxed fallback
//!      group: single fused advance+rate walk, cached min-departure);
//!    * `batched` — `FlowTable::new()` (struct-of-arrays kernels).
//! 2. **Fused tick** (AR(1)): the pre-fusion tick path — scalar
//!    while-loop SoA kernel, snapshot copy, then a separate two-pass
//!    mean/variance fold — frozen here literally, against the fused
//!    `advance_depart_measure` path (one SoA pass that evolves traffic
//!    and accumulates the controller's sufficient statistics).
//! 3. **Kernel dispatch ablation**: the same lane-tiled kernels timed
//!    under `KernelDispatch::Scalar` vs `KernelDispatch::Wide` — the
//!    innovation fill in isolation, the AR(1) table tick loop, and the
//!    fused measure tick — so the wide-lane speedup is attributable
//!    per kernel. The two modes are bit-exact twins (enforced by the
//!    dispatch-twin proptests), so this is a pure performance ablation.
//! 4. **Admission decision**: ns per decision through the controller's
//!    decision memo (hit vs miss) and through the aggregate Gaussian
//!    test's guard-banded threshold compare vs the exact tail.
//! 5. **End-to-end continuous run** (controller + meter included),
//!    boxed fallback vs batched.
//! 6. **Replication scaling** of the impulsive harness across worker
//!    counts (deterministic by construction; scaling is bounded by the
//!    machine's `available_parallelism`, which is recorded). On a
//!    single-core machine the multi-worker rows would only measure
//!    scheduler thrash, so they are skipped and the block carries a
//!    `"skipped_single_core": true` marker instead; cross-commit
//!    comparisons must treat such a block as incomparable rather than
//!    as a regression.
//! 7. **Serve plane**: the closed-loop decision-plane bench — a
//!    multi-link request workload replayed through the sharded
//!    `mbac-serve` plane, reporting p50/p99/mean decision latency and
//!    sustained decisions/sec. The serial reference row always runs;
//!    the sharded sweep is gated behind multi-core hosts with the same
//!    `skipped_single_core` marker as the replication scaling block.
//! 8. **Routed topology plane**: the same closed-loop bench over a
//!    parking-lot(3) topology — every decision joins three per-hop
//!    votes through the two-phase reserve/commit — so the cost of
//!    multi-hop composition relative to the per-link plane is on
//!    record. Serial row always; shard sweep behind the same
//!    single-core gate (reusing `MBAC_SERVE_SHARDS`/`MBAC_SERVE_TICKS`).
//! 9. **Metrics overhead** at 10⁶ flows (`metrics_overhead` block):
//!    sink disabled vs snapshot vs streaming collection.
//! 10. **Churn lifecycle** (`churn` block): the flow lifecycle alone —
//!     expire + replace under Poisson churn at steady state, no process
//!     advance — on the timing-wheel `FlowTable` vs the frozen
//!     pre-calendar `ReferenceFlowTable`, at 10³/10⁵/10⁶ concurrent
//!     flows. The wheel's claim on record: a departing tick costs
//!     O(departures popped), the legacy table pays an O(flows in
//!     system) scan-and-rescan.
//!
//! Environment knobs (all optional; defaults in parentheses):
//! * `MBAC_BENCH_FLOWS` (400) — flows per tick-loop benchmark;
//! * `MBAC_BENCH_TICKS` (5000) — ticks per tick-loop benchmark;
//! * `MBAC_BENCH_REPS` (400) — replications in the scaling benchmark;
//! * `MBAC_BENCH_WORKERS` (`1,2,4`) — comma-separated worker counts;
//! * `MBAC_SERVE_LINKS` (32) — links in the serve-plane workload;
//! * `MBAC_SERVE_TICKS` (200) — measurement ticks per serve link;
//! * `MBAC_SERVE_SHARDS` (`2,4`) — sharded sweep shard counts;
//! * `MBAC_METRICS_FLOWS` (1000000) — flows in the metrics-overhead
//!   benchmark (the 10^6-flow unit-of-work headline);
//! * `MBAC_CHURN_FLOWS` (1000000) — largest population in the churn
//!   lifecycle benchmark (standard sizes above the cap are dropped and
//!   the cap itself is benchmarked, so CI smoke stays fast).
//!
//! Every metric is validated finite before the JSON is written; a NaN
//! or infinity anywhere aborts the run with a non-zero exit.
//!
//! Usage: `cargo run --release -p mbac-bench --bin bench_json`

use mbac_core::admission::{AggregateGaussian, CertaintyEquivalent};
use mbac_core::estimators::heterogeneous::AggregateEstimate;
use mbac_core::estimators::snapshot_stats;
use mbac_core::params::{FlowStats, QosTarget};
use mbac_metrics::{StreamConfig, StreamSink};
use mbac_num::rng::NormalSampler;
use mbac_num::KernelDispatch;
use mbac_serve::{
    closed_loop_with_parallelism, routed_closed_loop_with_parallelism,
    BenchConfig as ServeBenchConfig, BenchReport, RoutedBenchConfig,
};
use mbac_sim::{
    ContinuousConfig, ContinuousLoad, Engine, FlowTable, ImpulsiveConfig, ImpulsiveLoad,
    MbacController, MetricsMode, ReferenceFlowTable, SessionBuilder,
};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use mbac_traffic::process::SourceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const TICK: f64 = 0.25;

/// Benchmark sizes, overridable from the environment so the CI smoke
/// job can run the full binary in seconds.
struct Params {
    n_flows: usize,
    ticks: usize,
    replications: usize,
    workers: Vec<usize>,
}

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("{name}={s:?} is not a usize: {e}")),
        Err(_) => default,
    }
}

fn env_workers() -> Vec<usize> {
    match std::env::var("MBAC_BENCH_WORKERS") {
        Ok(s) => s
            .split(',')
            .map(|w| {
                let w = w.trim();
                w.parse()
                    .unwrap_or_else(|e| panic!("MBAC_BENCH_WORKERS entry {w:?}: {e}"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

impl Params {
    fn from_env() -> Self {
        let p = Params {
            n_flows: env_usize("MBAC_BENCH_FLOWS", 400),
            ticks: env_usize("MBAC_BENCH_TICKS", 5_000),
            replications: env_usize("MBAC_BENCH_REPS", 400),
            workers: env_workers(),
        };
        assert!(p.n_flows > 0 && p.ticks > 0 && p.replications > 0);
        assert!(!p.workers.is_empty() && p.workers.iter().all(|&w| w > 0));
        p
    }
}

/// Asserts a metric is finite before it reaches the JSON (a NaN would
/// otherwise serialize silently and poison downstream comparisons).
fn finite(label: &str, x: f64) -> f64 {
    assert!(x.is_finite(), "bench metric {label} is not finite: {x}");
    x
}

/// Emits one JSON row per [`BenchReport`] (shared by the serve and
/// topology blocks, which record identical per-row fields).
fn write_bench_rows(json: &mut String, label: &str, rows: &[BenchReport]) {
    let n = rows.len();
    for (i, r) in rows.iter().enumerate() {
        eprintln!(
            "{label}/{} ({} shards, {} producers): {:.0} decisions/s, \
             p50 {:.0} ns, p99 {:.0} ns",
            r.mode, r.shards, r.producers, r.decisions_per_sec, r.p50_ns, r.p99_ns
        );
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"mode\": \"{}\",", r.mode);
        let _ = writeln!(json, "        \"shards\": {},", r.shards);
        let _ = writeln!(json, "        \"producers\": {},", r.producers);
        let _ = writeln!(json, "        \"decisions\": {},", r.decisions);
        let _ = writeln!(json, "        \"admitted\": {},", r.admitted);
        let _ = writeln!(json, "        \"rejected\": {},", r.rejected);
        let _ = writeln!(
            json,
            "        \"decisions_per_sec\": {:.0},",
            finite("decisions_per_sec", r.decisions_per_sec)
        );
        let _ = writeln!(
            json,
            "        \"p50_ns\": {:.1},",
            finite("p50_ns", r.p50_ns)
        );
        let _ = writeln!(
            json,
            "        \"p99_ns\": {:.1},",
            finite("p99_ns", r.p99_ns)
        );
        let _ = writeln!(
            json,
            "        \"mean_ns\": {:.1},",
            finite("mean_ns", r.mean_ns)
        );
        let _ = writeln!(
            json,
            "        \"elapsed_seconds\": {:.4}",
            finite("elapsed_seconds", r.elapsed_secs)
        );
        let _ = writeln!(json, "      }}{}", if i + 1 < n { "," } else { "" });
    }
}

fn ar1_cfg() -> Ar1Config {
    Ar1Config {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        tick: 0.05,
        clamp_at_zero: true,
    }
}

fn ar1_model() -> Ar1Model {
    Ar1Model::new(ar1_cfg())
}

/// The engine exactly as it stood at the seed commit, frozen here so
/// the baseline cannot silently improve as the library evolves:
/// Marsaglia-polar Gaussians, inverse-CDF exponentials, per-flow heap
/// boxes, per-step recomputation of the AR(1) constants, a virtual
/// `advance` walk, an O(N) `retain` departure scan, and a second
/// virtual `rate()` walk for the snapshot.
mod seed_engine {
    use mbac_traffic::ar1::Ar1Config;
    use mbac_traffic::rcbr::RcbrConfig;
    use rand::rngs::StdRng;
    use rand::Rng;

    fn standard_normal(rng: &mut StdRng) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
        mean + sd * standard_normal(rng)
    }

    fn normal_truncated_below(rng: &mut StdRng, mean: f64, sd: f64, lo: f64) -> f64 {
        loop {
            let x = normal(rng, mean, sd);
            if x >= lo {
                return x;
            }
        }
    }

    fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
        let u: f64 = rng.gen::<f64>();
        -mean * (1.0 - u).ln()
    }

    pub trait SeedProcess {
        fn advance(&mut self, dt: f64, rng: &mut StdRng);
        fn rate(&self) -> f64;
    }

    struct SeedRcbr {
        cfg: RcbrConfig,
        rate: f64,
        remaining: f64,
    }

    impl SeedRcbr {
        fn draw_rate(&self, rng: &mut StdRng) -> f64 {
            if self.cfg.truncate_at_zero {
                normal_truncated_below(rng, self.cfg.mean, self.cfg.std_dev.max(1e-300), 0.0)
            } else {
                normal(rng, self.cfg.mean, self.cfg.std_dev)
            }
        }
    }

    impl SeedProcess for SeedRcbr {
        fn advance(&mut self, dt: f64, rng: &mut StdRng) {
            let mut left = dt;
            while left >= self.remaining {
                left -= self.remaining;
                self.rate = self.draw_rate(rng);
                self.remaining = exponential(rng, self.cfg.t_c);
            }
            self.remaining -= left;
        }

        fn rate(&self) -> f64 {
            self.rate
        }
    }

    pub fn spawn_rcbr(cfg: RcbrConfig, rng: &mut StdRng) -> Box<dyn SeedProcess> {
        let mut s = SeedRcbr {
            cfg,
            rate: 0.0,
            remaining: 0.0,
        };
        s.rate = s.draw_rate(rng);
        s.remaining = exponential(rng, cfg.t_c);
        Box::new(s)
    }

    struct SeedAr1 {
        cfg: Ar1Config,
        value: f64,
        elapsed: f64,
    }

    impl SeedProcess for SeedAr1 {
        fn advance(&mut self, dt: f64, rng: &mut StdRng) {
            self.elapsed += dt;
            while self.elapsed >= self.cfg.tick {
                self.elapsed -= self.cfg.tick;
                // The seed recomputed both constants on every step.
                let a = (-self.cfg.tick / self.cfg.t_c).exp();
                let innovation_sd = self.cfg.std_dev * (1.0 - a * a).sqrt();
                self.value = self.cfg.mean
                    + a * (self.value - self.cfg.mean)
                    + innovation_sd * standard_normal(rng);
            }
        }

        fn rate(&self) -> f64 {
            if self.cfg.clamp_at_zero {
                self.value.max(0.0)
            } else {
                self.value
            }
        }
    }

    pub fn spawn_ar1(cfg: Ar1Config, rng: &mut StdRng) -> Box<dyn SeedProcess> {
        let value = normal(rng, cfg.mean, cfg.std_dev);
        Box::new(SeedAr1 {
            cfg,
            value,
            elapsed: 0.0,
        })
    }
}

/// The batched AR(1) kernel exactly as it stood before the fused
/// measurement pass, frozen so the fusion baseline cannot drift: a
/// scalar per-flow while-loop over tick boundaries with the tick
/// coefficients hoisted, relying on the library's ziggurat sampler —
/// the same draws, in the same order, as the fused kernel.
mod prefusion {
    use mbac_num::rng::{normal, standard_normal};
    use mbac_traffic::ar1::Ar1Config;
    use rand::rngs::StdRng;

    pub struct PrefusionAr1 {
        cfg: Ar1Config,
        a: f64,
        innovation_sd: f64,
        values: Vec<f64>,
        elapsed: Vec<f64>,
        rates: Vec<f64>,
    }

    impl PrefusionAr1 {
        pub fn new(cfg: Ar1Config) -> Self {
            let a = (-cfg.tick / cfg.t_c).exp();
            let innovation_sd = cfg.std_dev * (1.0 - a * a).sqrt();
            PrefusionAr1 {
                cfg,
                a,
                innovation_sd,
                values: Vec::new(),
                elapsed: Vec::new(),
                rates: Vec::new(),
            }
        }

        pub fn spawn_one(&mut self, rng: &mut StdRng) {
            let value = normal(rng, self.cfg.mean, self.cfg.std_dev);
            self.values.push(value);
            self.elapsed.push(0.0);
            self.rates.push(if self.cfg.clamp_at_zero {
                value.max(0.0)
            } else {
                value
            });
        }

        pub fn advance_all(&mut self, dt: f64, rng: &mut StdRng) {
            let (mean, tick, clamp) = (self.cfg.mean, self.cfg.tick, self.cfg.clamp_at_zero);
            let (a, sd) = (self.a, self.innovation_sd);
            for ((value, elapsed), rate) in self
                .values
                .iter_mut()
                .zip(self.elapsed.iter_mut())
                .zip(self.rates.iter_mut())
            {
                let mut v = *value;
                let mut e = *elapsed + dt;
                while e >= tick {
                    e -= tick;
                    v = mean + a * (v - mean) + sd * standard_normal(rng);
                }
                *value = v;
                *elapsed = e;
                *rate = if clamp { v.max(0.0) } else { v };
            }
        }

        pub fn rates(&self) -> &[f64] {
            &self.rates
        }
    }
}

/// The seed's tick loop, reproduced literally for an honest baseline.
struct SeedBoxedLoop {
    flows: Vec<(Box<dyn seed_engine::SeedProcess>, f64)>,
}

impl SeedBoxedLoop {
    fn tick(&mut self, dt: f64, t: f64, rng: &mut StdRng, snap: &mut Vec<f64>) -> f64 {
        for (p, _) in &mut self.flows {
            p.advance(dt, rng);
        }
        self.flows.retain(|&(_, departs_at)| departs_at > t);
        snap.clear();
        snap.extend(self.flows.iter().map(|(p, _)| p.rate()));
        snap.iter().sum()
    }
}

/// Minimum over interleaved rounds: the standard estimator for
/// wall-clock timings on a shared machine, where noise is strictly
/// additive. The contenders are interleaved (a full round runs each
/// once) so a noisy phase hits all of them rather than biasing one.
fn best_of_interleaved<const K: usize>(mut runs: [&mut dyn FnMut() -> f64; K]) -> [f64; K] {
    let mut best = [f64::INFINITY; K];
    for _ in 0..5 {
        for (b, run) in best.iter_mut().zip(runs.iter_mut()) {
            *b = b.min(run());
        }
    }
    best
}

/// ns/tick for the seed-style boxed loop.
fn time_seed_loop(
    p: &Params,
    spawn: &dyn Fn(&mut StdRng) -> Box<dyn seed_engine::SeedProcess>,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    let flows = (0..p.n_flows)
        .map(|_| (spawn(&mut rng), f64::INFINITY))
        .collect();
    let mut engine = SeedBoxedLoop { flows };
    let mut snap = Vec::new();
    let mut acc = 0.0;
    let start = Instant::now();
    let mut t = 0.0;
    for _ in 0..p.ticks {
        t += TICK;
        acc += engine.tick(TICK, t, &mut rng, &mut snap);
    }
    let elapsed = start.elapsed().as_nanos() as f64 / p.ticks as f64;
    assert!(acc.is_finite());
    elapsed
}

/// ns/tick for a FlowTable engine (batched or unbatched fallback).
fn time_table_loop(p: &Params, model: &dyn SourceModel, table: &mut FlowTable) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..p.n_flows {
        table.admit(model, f64::INFINITY, &mut rng);
    }
    let mut snap = Vec::new();
    let mut acc = 0.0;
    let start = Instant::now();
    let mut t = 0.0;
    for _ in 0..p.ticks {
        t += TICK;
        table.advance_to(t, &mut rng);
        table.depart_until(t);
        table.snapshot_into(&mut snap);
        acc += snap.iter().sum::<f64>();
    }
    let elapsed = start.elapsed().as_nanos() as f64 / p.ticks as f64;
    assert!(acc.is_finite());
    elapsed
}

/// The method surface the churn lifecycle bench drives; implemented by
/// the wheel table and the frozen reference so one loop times both.
trait ChurnTable {
    fn admit(&mut self, model: &dyn SourceModel, departs_at: f64, rng: &mut StdRng) -> u64;
    fn depart_until(&mut self, t: f64) -> usize;
    fn len(&self) -> usize;
    fn departed_total(&self) -> u64;
}

macro_rules! impl_churn_table {
    ($($t:ty),*) => {$(
        impl ChurnTable for $t {
            fn admit(&mut self, model: &dyn SourceModel, departs_at: f64, rng: &mut StdRng) -> u64 {
                <$t>::admit(self, model, departs_at, rng)
            }
            fn depart_until(&mut self, t: f64) -> usize {
                <$t>::depart_until(self, t)
            }
            fn len(&self) -> usize {
                <$t>::len(self)
            }
            fn departed_total(&self) -> u64 {
                <$t>::departed_total(self)
            }
        }
    )*};
}
impl_churn_table!(FlowTable, ReferenceFlowTable);

fn exp_hold(rng: &mut StdRng, mean: f64) -> f64 {
    use rand::Rng as _;
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// (ns per tick, departures in the timed window, final flows in system)
/// for the steady-state churn loop: each tick expires the due flows and
/// admits one replacement per departure, so the population holds at `n`
/// and the workload is *bit-identical* across table implementations
/// (departure counts match exactly, hence so do the RNG streams — the
/// caller asserts it). No process advance: this times the lifecycle
/// machinery alone.
fn time_churn<T: ChurnTable>(
    make: impl Fn() -> T,
    model: &dyn SourceModel,
    n: usize,
    ticks: usize,
    mean_holding: f64,
) -> (f64, u64, usize) {
    let mut rng = StdRng::seed_from_u64(17);
    let mut table = make();
    let mut t = 0.0;
    for _ in 0..n {
        let h = exp_hold(&mut rng, mean_holding);
        table.admit(model, t + h, &mut rng);
    }
    let start = Instant::now();
    for _ in 0..ticks {
        t += TICK;
        let departed = table.depart_until(t);
        for _ in 0..departed {
            let h = exp_hold(&mut rng, mean_holding);
            table.admit(model, t + h, &mut rng);
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / ticks as f64;
    (ns, table.departed_total(), table.len())
}

/// ns/tick for the pre-fusion AR(1) tick path, reproduced literally:
/// scalar kernel advance, snapshot copy, a two-pass mean/variance fold
/// for the estimator, and a separate load sum for the sink.
fn time_prefusion_tick(p: &Params) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    let mut batch = prefusion::PrefusionAr1::new(ar1_cfg());
    for _ in 0..p.n_flows {
        batch.spawn_one(&mut rng);
    }
    let mut snap: Vec<f64> = Vec::new();
    let mut acc = 0.0;
    let start = Instant::now();
    for _ in 0..p.ticks {
        batch.advance_all(TICK, &mut rng);
        snap.clear();
        snap.extend_from_slice(batch.rates());
        let est = snapshot_stats(&snap).expect("non-empty snapshot");
        acc += black_box(est.mean) + black_box(est.variance);
        acc += snap.iter().sum::<f64>();
    }
    let elapsed = start.elapsed().as_nanos() as f64 / p.ticks as f64;
    assert!(acc.is_finite());
    elapsed
}

/// ns/tick for the fused AR(1) tick path: one SoA pass that evolves the
/// flows and accumulates the controller's sufficient statistics, from
/// which mean, variance and the sink's load are all O(1).
fn time_fused_tick(p: &Params) -> f64 {
    let model = ar1_model();
    let mut table = FlowTable::new();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..p.n_flows {
        table.admit(&model, f64::INFINITY, &mut rng);
    }
    let mut acc = 0.0;
    let start = Instant::now();
    let mut t = 0.0;
    let mut pivot = 1.0;
    for _ in 0..p.ticks {
        t += TICK;
        let mom = table.advance_depart_measure(t, &mut rng, pivot);
        let n = mom.count().max(1) as f64;
        let mean = mom.sum() / n;
        acc += black_box(mean) + black_box(mom.sum_sq_dev(mean));
        acc += mom.sum();
        pivot = mean;
    }
    let elapsed = start.elapsed().as_nanos() as f64 / p.ticks as f64;
    assert!(acc.is_finite());
    elapsed
}

/// ns per ziggurat innovation fill of `n_flows` values under the given
/// dispatch mode — the flow-major fill kernel in isolation, without the
/// recurrence or measurement passes on top.
fn time_fill(p: &Params, dispatch: KernelDispatch) -> f64 {
    let sampler = NormalSampler::get();
    let mut rng = StdRng::seed_from_u64(9);
    let mut buf = vec![0.0f64; p.n_flows];
    let mut acc = 0.0;
    let start = Instant::now();
    for _ in 0..p.ticks {
        sampler.fill_with(dispatch, &mut rng, &mut buf);
        acc += buf[0];
    }
    let elapsed = start.elapsed().as_nanos() as f64 / p.ticks as f64;
    assert!(acc.is_finite());
    elapsed
}

/// Runs `f` with the global kernel dispatch pinned to `dispatch`,
/// restoring the previous mode afterwards so the surrounding
/// measurements keep the default.
fn with_dispatch<T>(dispatch: KernelDispatch, f: impl FnOnce() -> T) -> T {
    let prev = dispatch.set_global();
    let out = f();
    prev.set_global();
    out
}

fn continuous_cfg(p: &Params) -> ContinuousConfig {
    ContinuousConfig {
        capacity: p.n_flows as f64,
        mean_holding: 10.0 * (p.n_flows as f64).sqrt(),
        tick: TICK,
        warmup: 50.0,
        sample_spacing: 20.0,
        target: 1e-2,
        max_samples: 200,
        seed: 6,
    }
}

fn controller() -> MbacController {
    MbacController::new(
        Box::new(mbac_core::estimators::FilteredEstimator::new(5.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    )
}

/// Seconds for one end-to-end continuous run on the given engine.
fn time_continuous(p: &Params, model: &dyn SourceModel, engine: Engine) -> f64 {
    let mut ctl = controller();
    let start = Instant::now();
    let rep = SessionBuilder::new()
        .engine(engine)
        .run_local(&ContinuousLoad::new(&continuous_cfg(p), model, &mut ctl))
        .expect("valid bench config");
    let secs = start.elapsed().as_secs_f64();
    assert!(rep.pf.samples > 0);
    secs
}

/// ns per admission decision through the controller's decision memo:
/// `hit` repeats one (estimate, capacity) key, `miss` alternates two
/// capacities so every call recomputes the Gaussian inversion.
fn time_controller_decisions() -> (f64, f64) {
    const ITERS: usize = 200_000;
    let mut ctl = controller();
    let mut rng = StdRng::seed_from_u64(7);
    let rates: Vec<f64> = (0..400)
        .map(|_| mbac_num::rng::normal(&mut rng, 1.0, 0.3))
        .collect();
    for k in 0..64 {
        ctl.observe(k as f64 * TICK, &rates);
    }
    let time = |caps: &[f64]| {
        let mut acc = 0.0;
        let start = Instant::now();
        for i in 0..ITERS {
            let c = caps[i % caps.len()];
            acc += ctl
                .admissible_count(black_box(c))
                .expect("estimator warmed up");
        }
        assert!(acc.is_finite());
        start.elapsed().as_nanos() as f64 / ITERS as f64
    };
    let [hit_ns, miss_ns] =
        best_of_interleaved([&mut || time(&[400.0]), &mut || time(&[400.0, 401.0])]);
    (hit_ns, miss_ns)
}

/// ns per aggregate Gaussian admission decision: the guard-banded
/// threshold compare (`admit`) vs the exact tail evaluation it
/// replaces (`post_admission_overflow ≤ p`). Decision-identical.
fn time_aggregate_decisions() -> (f64, f64) {
    const ITERS: usize = 200_000;
    let gauss = AggregateGaussian::new(QosTarget::new(1e-2));
    let cand = FlowStats::new(1.0, 0.09);
    let run = |exact: bool| {
        let mut admitted = 0usize;
        let start = Instant::now();
        for i in 0..ITERS {
            let agg = AggregateEstimate {
                mean: 360.0 + (i % 32) as f64,
                variance: 36.0,
                flows: 400,
            };
            let ok = if exact {
                gauss.post_admission_overflow(black_box(agg), cand, 400.0) <= 1e-2
            } else {
                gauss.admit(black_box(agg), cand, 400.0)
            };
            admitted += ok as usize;
        }
        assert!(admitted > 0 && admitted < ITERS);
        start.elapsed().as_nanos() as f64 / ITERS as f64
    };
    let [threshold_ns, exact_ns] = best_of_interleaved([&mut || run(false), &mut || run(true)]);
    (threshold_ns, exact_ns)
}

/// The ar1 `batched_ns_per_tick` recorded by the previous bench run —
/// i.e. the kernel as of the last commit that refreshed the results
/// file — so the new JSON can state the tick-loop speedup against it.
fn previous_ar1_batched_ns(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let ar1 = text.split("\"model\": \"ar1\"").nth(1)?;
    let field = ar1.split("\"batched_ns_per_tick\": ").nth(1)?;
    let num: String = field
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

fn main() {
    let p = Params::from_env();
    let prev_ar1_batched = previous_ar1_batched_ns("results/BENCH_simulator.json");
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p mbac-bench --bin bench_json\","
    );
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");

    // 1. Tick loop.
    let _ = writeln!(json, "  \"tick_loop\": [");
    type SeedSpawner = Box<dyn Fn(&mut StdRng) -> Box<dyn seed_engine::SeedProcess>>;
    let rcbr_cfg = mbac_bench::bench_rcbr().config();
    let seed_ar1_cfg = ar1_cfg();
    let models: [(&str, Box<dyn SourceModel>, SeedSpawner); 2] = [
        (
            "rcbr",
            Box::new(mbac_bench::bench_rcbr()),
            Box::new(move |rng| seed_engine::spawn_rcbr(rcbr_cfg, rng)),
        ),
        (
            "ar1",
            Box::new(ar1_model()),
            Box::new(move |rng| seed_engine::spawn_ar1(seed_ar1_cfg, rng)),
        ),
    ];
    let mut ar1_batched_ns = f64::NAN;
    for (i, (name, model, seed_spawn)) in models.iter().enumerate() {
        let [seed_ns, unbatched_ns, batched_ns] = best_of_interleaved([
            &mut || time_seed_loop(&p, seed_spawn.as_ref()),
            &mut || time_table_loop(&p, model.as_ref(), &mut FlowTable::new_unbatched()),
            &mut || time_table_loop(&p, model.as_ref(), &mut FlowTable::new()),
        ]);
        if *name == "ar1" {
            ar1_batched_ns = batched_ns;
        }
        eprintln!(
            "tick_loop/{name}: seed {seed_ns:.0} ns, unbatched {unbatched_ns:.0} ns, \
             batched {batched_ns:.0} ns ({:.2}x vs seed)",
            seed_ns / batched_ns
        );
        if *name == "ar1" {
            if let Some(prev) = prev_ar1_batched {
                eprintln!(
                    "tick_loop/ar1: {:.2}x vs previously recorded batched kernel ({prev:.0} ns)",
                    prev / batched_ns
                );
            }
        }
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"model\": \"{name}\",");
        let _ = writeln!(json, "      \"n_flows\": {},", p.n_flows);
        let _ = writeln!(json, "      \"ticks\": {},", p.ticks);
        let _ = writeln!(json, "      \"available_parallelism\": {parallelism},");
        let _ = writeln!(
            json,
            "      \"seed_boxed_ns_per_tick\": {:.1},",
            finite("seed_boxed_ns_per_tick", seed_ns)
        );
        let _ = writeln!(
            json,
            "      \"unbatched_ns_per_tick\": {:.1},",
            finite("unbatched_ns_per_tick", unbatched_ns)
        );
        let _ = writeln!(
            json,
            "      \"batched_ns_per_tick\": {:.1},",
            finite("batched_ns_per_tick", batched_ns)
        );
        if *name == "ar1" {
            if let Some(prev) = prev_ar1_batched {
                let _ = writeln!(json, "      \"previous_batched_ns_per_tick\": {prev:.1},");
                let _ = writeln!(
                    json,
                    "      \"speedup_batched_vs_previous\": {:.2},",
                    finite("speedup_batched_vs_previous", prev / batched_ns)
                );
            }
        }
        let _ = writeln!(
            json,
            "      \"speedup_batched_vs_seed\": {:.2},",
            finite("speedup_batched_vs_seed", seed_ns / batched_ns)
        );
        let _ = writeln!(
            json,
            "      \"speedup_batched_vs_unbatched\": {:.2}",
            finite("speedup_batched_vs_unbatched", unbatched_ns / batched_ns)
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < models.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // 2. Fused tick kernel (AR(1)).
    let [prefusion_ns, fused_ns] =
        best_of_interleaved([&mut || time_prefusion_tick(&p), &mut || time_fused_tick(&p)]);
    let fused_speedup = prefusion_ns / fused_ns;
    eprintln!(
        "fused_tick/ar1: prefusion {prefusion_ns:.0} ns, fused {fused_ns:.0} ns \
         ({fused_speedup:.2}x)"
    );
    let _ = writeln!(json, "  \"fused_tick\": {{");
    let _ = writeln!(json, "    \"model\": \"ar1\",");
    let _ = writeln!(json, "    \"n_flows\": {},", p.n_flows);
    let _ = writeln!(json, "    \"ticks\": {},", p.ticks);
    let _ = writeln!(json, "    \"available_parallelism\": {parallelism},");
    let _ = writeln!(
        json,
        "    \"prefusion_ns_per_tick\": {:.1},",
        finite("prefusion_ns_per_tick", prefusion_ns)
    );
    let _ = writeln!(
        json,
        "    \"fused_ns_per_tick\": {:.1},",
        finite("fused_ns_per_tick", fused_ns)
    );
    let _ = writeln!(
        json,
        "    \"speedup_fused_vs_prefusion\": {:.2}",
        finite("speedup_fused_vs_prefusion", fused_speedup)
    );
    let _ = writeln!(json, "  }},");

    // 3. Kernel dispatch ablation: scalar vs wide, per kernel. The
    // modes are bit-exact twins, so any delta is pure implementation.
    let ar1 = ar1_model();
    type AblationRunner<'a> = &'a mut dyn FnMut(KernelDispatch) -> f64;
    let ablations: [(&str, &str, AblationRunner); 3] = [
        ("innovation_fill", "ns_per_fill", &mut |d| time_fill(&p, d)),
        ("ar1_tick_loop", "ns_per_tick", &mut |d| {
            with_dispatch(d, || time_table_loop(&p, &ar1, &mut FlowTable::new()))
        }),
        ("fused_measure_tick", "ns_per_tick", &mut |d| {
            with_dispatch(d, || time_fused_tick(&p))
        }),
    ];
    let _ = writeln!(json, "  \"kernel_dispatch\": [");
    let n_ablations = ablations.len();
    for (i, (kernel, unit, run)) in ablations.into_iter().enumerate() {
        // Interleaved best-of-5, same estimator as best_of_interleaved
        // (which can't be used here: both closures would need the same
        // mutable runner).
        let mut best = [f64::INFINITY; 2];
        for _ in 0..5 {
            for (b, d) in best
                .iter_mut()
                .zip([KernelDispatch::Scalar, KernelDispatch::Wide])
            {
                *b = b.min(run(d));
            }
        }
        let [scalar_ns, wide_ns] = best;
        let speedup = scalar_ns / wide_ns;
        eprintln!(
            "kernel_dispatch/{kernel}: scalar {scalar_ns:.0} ns, wide {wide_ns:.0} ns \
             ({speedup:.2}x)"
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"kernel\": \"{kernel}\",");
        let _ = writeln!(json, "      \"n_flows\": {},", p.n_flows);
        let _ = writeln!(
            json,
            "      \"scalar_{unit}\": {:.1},",
            finite("scalar ablation", scalar_ns)
        );
        let _ = writeln!(
            json,
            "      \"wide_{unit}\": {:.1},",
            finite("wide ablation", wide_ns)
        );
        let _ = writeln!(
            json,
            "      \"speedup_wide_vs_scalar\": {:.2}",
            finite("speedup_wide_vs_scalar", speedup)
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < n_ablations { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");

    // 4. Admission decision hot path.
    let (hit_ns, miss_ns) = time_controller_decisions();
    let (threshold_ns, exact_ns) = time_aggregate_decisions();
    eprintln!(
        "admission_decision: memo hit {hit_ns:.1} ns, miss {miss_ns:.1} ns; \
         aggregate threshold {threshold_ns:.1} ns, exact tail {exact_ns:.1} ns"
    );
    let _ = writeln!(json, "  \"admission_decision\": {{");
    let _ = writeln!(json, "    \"available_parallelism\": {parallelism},");
    let _ = writeln!(
        json,
        "    \"controller_memo_hit_ns\": {:.1},",
        finite("controller_memo_hit_ns", hit_ns)
    );
    let _ = writeln!(
        json,
        "    \"controller_memo_miss_ns\": {:.1},",
        finite("controller_memo_miss_ns", miss_ns)
    );
    let _ = writeln!(
        json,
        "    \"aggregate_threshold_ns\": {:.1},",
        finite("aggregate_threshold_ns", threshold_ns)
    );
    let _ = writeln!(
        json,
        "    \"aggregate_exact_tail_ns\": {:.1}",
        finite("aggregate_exact_tail_ns", exact_ns)
    );
    let _ = writeln!(json, "  }},");

    // 5. End-to-end continuous run.
    let _ = writeln!(json, "  \"continuous_run\": [");
    for (i, (name, model, _)) in models.iter().enumerate() {
        let [boxed_s, batched_s] = best_of_interleaved([
            &mut || time_continuous(&p, model.as_ref(), Engine::Boxed),
            &mut || time_continuous(&p, model.as_ref(), Engine::Batched),
        ]);
        eprintln!(
            "continuous_run/{name}: boxed {boxed_s:.3} s, batched {batched_s:.3} s \
             ({:.2}x)",
            boxed_s / batched_s
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"model\": \"{name}\",");
        let _ = writeln!(json, "      \"capacity\": {},", p.n_flows);
        let _ = writeln!(json, "      \"available_parallelism\": {parallelism},");
        let _ = writeln!(
            json,
            "      \"boxed_seconds\": {:.4},",
            finite("boxed_seconds", boxed_s)
        );
        let _ = writeln!(
            json,
            "      \"batched_seconds\": {:.4},",
            finite("batched_seconds", batched_s)
        );
        let _ = writeln!(
            json,
            "      \"speedup\": {:.2}",
            finite("speedup", boxed_s / batched_s)
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < models.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // 6. Replication scaling on the persistent pool. On a single-core
    // machine multi-worker rows would only measure scheduler thrash
    // (every "speedup" is noise around or below 1.0), so the sweep is
    // gated: only the first worker count runs, and the block carries a
    // machine-readable marker that downstream cross-commit comparisons
    // must treat as "incomparable", not "regressed".
    let cfg = ImpulsiveConfig {
        capacity: 100.0,
        estimation_flows: 100,
        mean_holding: Some(10.0),
        observe_times: vec![1.0, 5.0, 20.0],
        replications: p.replications,
        seed: 3,
    };
    let policy = CertaintyEquivalent::from_probability(1e-2);
    let model = mbac_bench::bench_rcbr();
    let single_core = parallelism == 1;
    let scaling_workers: Vec<usize> = if single_core {
        p.workers[..1].to_vec()
    } else {
        p.workers.clone()
    };
    if single_core && p.workers.len() > 1 {
        eprintln!(
            "impulsive: single-core machine, skipping worker counts {:?}",
            &p.workers[1..]
        );
    }
    let mut seconds = Vec::new();
    let _ = writeln!(json, "  \"replication_scaling\": {{");
    let _ = writeln!(json, "    \"replications\": {},", cfg.replications);
    let _ = writeln!(json, "    \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "    \"skipped_single_core\": {single_core},");
    let _ = writeln!(json, "    \"workers\": [");
    for (i, &w) in scaling_workers.iter().enumerate() {
        let start = Instant::now();
        let rep = SessionBuilder::new()
            .workers(w)
            .run(&ImpulsiveLoad::new(&cfg, &model, &policy))
            .expect("valid bench config");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(rep.replications, cfg.replications);
        seconds.push(secs);
        eprintln!(
            "impulsive/{w} workers: {secs:.3} s ({:.2}x vs {} worker{})",
            seconds[0] / secs,
            p.workers[0],
            if p.workers[0] == 1 { "" } else { "s" }
        );
        let _ = writeln!(
            json,
            "      {{ \"workers\": {w}, \"seconds\": {:.4}, \"speedup_vs_first\": {:.2} }}{}",
            finite("seconds", secs),
            finite("speedup_vs_first", seconds[0] / secs),
            if i + 1 < scaling_workers.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");

    // 7. Serve plane: closed-loop decision latency and throughput. The
    // serial reference row always runs. The sharded sweep is gated the
    // same way as replication scaling: on a single-core host threaded
    // rows would measure scheduler churn, so they are skipped and the
    // block carries the `skipped_single_core` marker
    // (`closed_loop_with_parallelism` re-checks the parallelism it is
    // given, so a gated host can never fake a threaded row).
    let serve_shard_counts: Vec<usize> = match std::env::var("MBAC_SERVE_SHARDS") {
        Ok(s) => s
            .split(',')
            .map(|w| {
                let w = w.trim();
                w.parse()
                    .unwrap_or_else(|e| panic!("MBAC_SERVE_SHARDS entry {w:?}: {e}"))
            })
            .collect(),
        Err(_) => vec![2, 4],
    };
    assert!(serve_shard_counts.iter().all(|&s| s > 0));
    let serve_base = ServeBenchConfig {
        links: env_usize("MBAC_SERVE_LINKS", 32),
        ticks: env_usize("MBAC_SERVE_TICKS", 200),
        ..ServeBenchConfig::default()
    };
    let serve_model = mbac_bench::bench_rcbr();
    let serve_skipped = single_core && !serve_shard_counts.is_empty();
    if serve_skipped {
        eprintln!("serve: single-core machine, skipping shard counts {serve_shard_counts:?}");
    }
    let mut serve_rows = vec![
        closed_loop_with_parallelism(&serve_base, &serve_model, parallelism)
            .expect("valid serve config"),
    ];
    if !single_core {
        for &shards in &serve_shard_counts {
            let cfg = ServeBenchConfig {
                shards,
                producers: 2,
                ..serve_base.clone()
            };
            serve_rows.push(
                closed_loop_with_parallelism(&cfg, &serve_model, parallelism)
                    .expect("valid serve config"),
            );
        }
    }
    let _ = writeln!(json, "  \"serve\": {{");
    let _ = writeln!(json, "    \"links\": {},", serve_base.links);
    let _ = writeln!(
        json,
        "    \"flows_per_link\": {},",
        serve_base.flows_per_link
    );
    let _ = writeln!(json, "    \"ticks\": {},", serve_base.ticks);
    let _ = writeln!(
        json,
        "    \"requests_per_tick\": {},",
        serve_base.requests_per_tick
    );
    let _ = writeln!(json, "    \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "    \"skipped_single_core\": {serve_skipped},");
    let _ = writeln!(json, "    \"rows\": [");
    write_bench_rows(&mut json, "serve", &serve_rows);
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");

    // 8. Routed topology plane: the closed loop again, but every
    // decision joins three per-hop votes on a parking-lot(3) route
    // through the two-phase reserve/commit. Same gating as the serve
    // block; the serial row is the cross-commit-comparable one.
    let routed_base = RoutedBenchConfig {
        ticks: serve_base.ticks,
        ..RoutedBenchConfig::default()
    };
    let mut routed_rows =
        vec![
            routed_closed_loop_with_parallelism(&routed_base, &serve_model, parallelism)
                .expect("valid routed config"),
        ];
    if !single_core {
        for &shards in &serve_shard_counts {
            let cfg = RoutedBenchConfig {
                shards,
                producers: 2,
                ..routed_base.clone()
            };
            routed_rows.push(
                routed_closed_loop_with_parallelism(&cfg, &serve_model, parallelism)
                    .expect("valid routed config"),
            );
        }
    }
    let _ = writeln!(json, "  \"topology\": {{");
    let _ = writeln!(json, "    \"shape\": \"parking-lot:3\",");
    let _ = writeln!(json, "    \"links\": {},", routed_base.topology.links());
    let _ = writeln!(json, "    \"routes\": {},", routed_base.topology.routes());
    let _ = writeln!(
        json,
        "    \"flows_per_route\": {},",
        routed_base.flows_per_route
    );
    let _ = writeln!(json, "    \"ticks\": {},", routed_base.ticks);
    let _ = writeln!(
        json,
        "    \"requests_per_tick\": {},",
        routed_base.requests_per_tick
    );
    let _ = writeln!(json, "    \"available_parallelism\": {parallelism},");
    let _ = writeln!(json, "    \"skipped_single_core\": {serve_skipped},");
    let _ = writeln!(json, "    \"rows\": [");
    write_bench_rows(&mut json, "topology", &routed_rows);
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");

    // 9. Metrics overhead at 10^6 flows: the same impulsive burst run
    // three ways — sink disabled (the zero-cost default), snapshot
    // collection (unit-of-work entries folded into per-rep instrument
    // bundles), and streaming (folds plus a sampler draw per entry and
    // bounded-ring emission). The headline claims: streaming rides
    // within a few percent of disabled, and the retained-entry count is
    // bounded by the ring capacity, never by the flow count.
    let metrics_flows = env_usize("MBAC_METRICS_FLOWS", 1_000_000);
    let metrics_cfg = ImpulsiveConfig {
        capacity: metrics_flows as f64,
        estimation_flows: metrics_flows,
        mean_holding: Some(15.0),
        observe_times: vec![1.0],
        replications: 1,
        seed: 11,
    };
    let metrics_model = mbac_bench::bench_rcbr();
    let metrics_policy = CertaintyEquivalent::from_probability(1e-2);
    let mut stream_stats = None;
    let run_disabled = || {
        let scenario = ImpulsiveLoad::new(&metrics_cfg, &metrics_model, &metrics_policy);
        let start = Instant::now();
        let rep = SessionBuilder::new()
            .run_local(&scenario)
            .expect("valid metrics bench config");
        let secs = start.elapsed().as_secs_f64();
        black_box(rep);
        secs
    };
    let run_snapshot = || {
        let scenario = ImpulsiveLoad::new(&metrics_cfg, &metrics_model, &metrics_policy);
        let start = Instant::now();
        let (rep, snap) = SessionBuilder::new()
            .metrics(MetricsMode::Enabled)
            .run_local_metered(&scenario)
            .expect("valid metrics bench config");
        let secs = start.elapsed().as_secs_f64();
        black_box((rep, snap.len()));
        secs
    };
    let mut run_streaming = || {
        let scenario = ImpulsiveLoad::new(&metrics_cfg, &metrics_model, &metrics_policy);
        let sink = StreamSink::to_writer(StreamConfig::default(), Box::new(std::io::sink()));
        let handle = sink.handle();
        let start = Instant::now();
        let (rep, snap) = SessionBuilder::new()
            .stream(handle)
            .run_local_metered(&scenario)
            .expect("valid metrics bench config");
        let secs = start.elapsed().as_secs_f64();
        black_box((rep, snap.len()));
        stream_stats = Some(sink.finish().expect("stream writer joins"));
        secs
    };
    // The three timers differ by tens of ns/flow while host-level
    // throughput noise (frequency scaling, neighbors) swings whole runs
    // by far more, so independent per-mode minimums compare different
    // machine states and the comparison drowns. Instead each round runs
    // the three modes back to back — near-identical machine state — and
    // the reported overheads are the *median per-round ratio* to that
    // round's disabled run, which cancels slow drift; the absolute
    // ns/flow figures come from the fastest round's disabled time with
    // the median ratios applied, keeping the three columns consistent.
    const ROUNDS: usize = 10;
    let median = |xs: &mut [f64]| {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let mut disabled_best = f64::INFINITY;
    let (mut snap_ratios, mut stream_ratios) = (Vec::new(), Vec::new());
    for _ in 0..ROUNDS {
        let d = run_disabled();
        snap_ratios.push(run_snapshot() / d);
        stream_ratios.push(run_streaming() / d);
        disabled_best = disabled_best.min(d);
    }
    let disabled_secs = disabled_best;
    let snapshot_secs = disabled_best * median(&mut snap_ratios);
    let streaming_secs = disabled_best * median(&mut stream_ratios);
    let stream_stats = stream_stats.expect("streaming timer ran");
    let per_flow = |secs: f64| secs * 1e9 / metrics_flows as f64;
    let streaming_overhead = streaming_secs / disabled_secs - 1.0;
    eprintln!(
        "metrics_overhead: {metrics_flows} flows — disabled {:.1} ns/flow, snapshot {:.1} \
         ns/flow, streaming {:.1} ns/flow ({:+.1}% vs disabled, {} retained, {} dropped)",
        per_flow(disabled_secs),
        per_flow(snapshot_secs),
        per_flow(streaming_secs),
        100.0 * streaming_overhead,
        stream_stats.ring_capacity,
        stream_stats.dropped,
    );
    let _ = writeln!(json, "  \"metrics_overhead\": {{");
    let _ = writeln!(json, "    \"flows\": {metrics_flows},");
    let _ = writeln!(json, "    \"replications\": 1,");
    let _ = writeln!(
        json,
        "    \"disabled_ns_per_flow\": {:.2},",
        finite("disabled_ns_per_flow", per_flow(disabled_secs))
    );
    let _ = writeln!(
        json,
        "    \"snapshot_ns_per_flow\": {:.2},",
        finite("snapshot_ns_per_flow", per_flow(snapshot_secs))
    );
    let _ = writeln!(
        json,
        "    \"streaming_ns_per_flow\": {:.2},",
        finite("streaming_ns_per_flow", per_flow(streaming_secs))
    );
    let _ = writeln!(
        json,
        "    \"snapshot_overhead_vs_disabled\": {:.4},",
        finite(
            "snapshot_overhead_vs_disabled",
            snapshot_secs / disabled_secs - 1.0
        )
    );
    let _ = writeln!(
        json,
        "    \"streaming_overhead_vs_disabled\": {:.4},",
        finite("streaming_overhead_vs_disabled", streaming_overhead)
    );
    // Entries retained in memory by the streaming path: the ring bound,
    // not the flow count — the bounded-memory claim, on record.
    let _ = writeln!(
        json,
        "    \"stream_entries_retained_bound\": {},",
        stream_stats.ring_capacity
    );
    let _ = writeln!(
        json,
        "    \"stream_intervals\": {},",
        stream_stats.intervals
    );
    let _ = writeln!(json, "    \"stream_samples\": {},", stream_stats.samples);
    let _ = writeln!(json, "    \"stream_dropped\": {}", stream_stats.dropped);
    let _ = writeln!(json, "  }},");

    // 10. Churn lifecycle: expire + replace at steady state under
    // Poisson churn, wheel table vs frozen reference, no process
    // advance. Holding times are exponential with mean 1000·tick, so
    // ~N/1000 flows depart (and are replaced) every tick — essentially
    // every tick is a departing tick, the regime where the legacy
    // table degrades to O(N·ticks).
    let churn_cap = env_usize("MBAC_CHURN_FLOWS", 1_000_000);
    assert!(churn_cap > 0, "MBAC_CHURN_FLOWS must be positive");
    let mut churn_sizes: Vec<usize> = [1_000, 100_000, 1_000_000]
        .into_iter()
        .filter(|&n| n <= churn_cap)
        .collect();
    if !churn_sizes.contains(&churn_cap) {
        churn_sizes.push(churn_cap);
    }
    const CHURN_HOLDING: f64 = 1000.0 * TICK;
    let churn_ticks = 200usize;
    let churn_model = mbac_bench::bench_rcbr();
    let _ = writeln!(json, "  \"churn\": {{");
    let _ = writeln!(json, "    \"tick\": {TICK},");
    let _ = writeln!(json, "    \"mean_holding\": {CHURN_HOLDING},");
    let _ = writeln!(json, "    \"ticks\": {churn_ticks},");
    let _ = writeln!(json, "    \"rows\": [");
    // (flows, wheel ns/tick, legacy ns/tick, speedup) of the largest
    // population — the trajectory headline.
    let mut churn_headline = (0usize, 0.0f64, 0.0f64, 0.0f64);
    for (i, &n) in churn_sizes.iter().enumerate() {
        let wheel_stats = std::cell::Cell::new((0u64, 0usize));
        let legacy_stats = std::cell::Cell::new((0u64, 0usize));
        let [wheel_ns, legacy_ns] = best_of_interleaved([
            &mut || {
                let (ns, departed, len) =
                    time_churn(FlowTable::new, &churn_model, n, churn_ticks, CHURN_HOLDING);
                wheel_stats.set((departed, len));
                ns
            },
            &mut || {
                let (ns, departed, len) = time_churn(
                    ReferenceFlowTable::new,
                    &churn_model,
                    n,
                    churn_ticks,
                    CHURN_HOLDING,
                );
                legacy_stats.set((departed, len));
                ns
            },
        ]);
        // Same seed ⇒ the two tables must have processed bit-identical
        // workloads; a mismatch here is an equivalence bug, not noise.
        assert_eq!(
            wheel_stats.get(),
            legacy_stats.get(),
            "churn workload diverged at {n} flows"
        );
        let (departed, _) = wheel_stats.get();
        let mean_departures = departed as f64 / churn_ticks as f64;
        let speedup = legacy_ns / wheel_ns;
        eprintln!(
            "churn/{n}: wheel {wheel_ns:.0} ns/tick, legacy {legacy_ns:.0} ns/tick \
             ({speedup:.1}x), {mean_departures:.1} departures/tick"
        );
        let _ = writeln!(
            json,
            "      {{ \"flows\": {n}, \"mean_departures_per_tick\": {:.2}, \
             \"wheel_ns_per_tick\": {:.1}, \"legacy_ns_per_tick\": {:.1}, \
             \"speedup\": {:.2} }}{}",
            finite("mean_departures_per_tick", mean_departures),
            finite("wheel_ns_per_tick", wheel_ns),
            finite("legacy_ns_per_tick", legacy_ns),
            finite("speedup", speedup),
            if i + 1 < churn_sizes.len() { "," } else { "" }
        );
        churn_headline = (n, wheel_ns, legacy_ns, speedup);
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    assert!(
        !json.contains("NaN") && !json.contains("inf"),
        "non-finite metric leaked into the JSON"
    );

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_simulator.json", &json)
        .expect("write results/BENCH_simulator.json");
    println!("wrote results/BENCH_simulator.json");

    // One-line trajectory record, appended (never overwritten) so the
    // performance history across PRs survives regeneration.
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let scaling: Vec<String> = scaling_workers
        .iter()
        .zip(&seconds)
        .map(|(w, s)| format!("[{w}, {s:.4}]"))
        .collect();
    // The serial reference row is always present and always comparable
    // across commits (threaded rows are host-shape-dependent).
    let serve_serial = &serve_rows[0];
    let routed_serial = &routed_rows[0];
    let line = format!(
        "{{\"unix_time\": {unix_time}, \"available_parallelism\": {parallelism}, \
         \"n_flows\": {}, \"ticks\": {}, \"ar1_batched_ns_per_tick\": {:.1}, \
         \"ar1_fused_ns_per_tick\": {:.1}, \"fused_speedup\": {:.2}, \
         \"memo_hit_ns\": {:.1}, \"workers_seconds\": [{}], \
         \"serve_decisions_per_sec\": {:.0}, \"serve_p50_ns\": {:.1}, \
         \"serve_p99_ns\": {:.1}, \"serve_skipped_single_core\": {serve_skipped}, \
         \"routed_decisions_per_sec\": {:.0}, \"routed_p50_ns\": {:.1}, \
         \"routed_p99_ns\": {:.1}, \"routed_skipped_single_core\": {serve_skipped}, \
         \"metrics_flows\": {metrics_flows}, \
         \"metrics_disabled_ns_per_flow\": {:.2}, \
         \"metrics_snapshot_ns_per_flow\": {:.2}, \
         \"metrics_streaming_ns_per_flow\": {:.2}, \
         \"metrics_streaming_overhead\": {:.4}, \
         \"churn_flows\": {}, \"churn_wheel_ns_per_tick\": {:.1}, \
         \"churn_legacy_ns_per_tick\": {:.1}, \"churn_speedup\": {:.2}}}\n",
        p.n_flows,
        p.ticks,
        finite("ar1_batched_ns_per_tick", ar1_batched_ns),
        fused_ns,
        fused_speedup,
        hit_ns,
        scaling.join(", "),
        finite("serve_decisions_per_sec", serve_serial.decisions_per_sec),
        finite("serve_p50_ns", serve_serial.p50_ns),
        finite("serve_p99_ns", serve_serial.p99_ns),
        finite("routed_decisions_per_sec", routed_serial.decisions_per_sec),
        finite("routed_p50_ns", routed_serial.p50_ns),
        finite("routed_p99_ns", routed_serial.p99_ns),
        finite("metrics_disabled_ns_per_flow", per_flow(disabled_secs)),
        finite("metrics_snapshot_ns_per_flow", per_flow(snapshot_secs)),
        finite("metrics_streaming_ns_per_flow", per_flow(streaming_secs)),
        finite("metrics_streaming_overhead", streaming_overhead),
        churn_headline.0,
        finite("churn_wheel_ns_per_tick", churn_headline.1),
        finite("churn_legacy_ns_per_tick", churn_headline.2),
        finite("churn_speedup", churn_headline.3),
    );
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("results/BENCH_trajectory.jsonl")
        .expect("open results/BENCH_trajectory.jsonl");
    f.write_all(line.as_bytes())
        .expect("append results/BENCH_trajectory.jsonl");
    println!("appended results/BENCH_trajectory.jsonl");
}
