//! Emits machine-readable performance numbers for the batched flow
//! engine and the parallel replication harness to
//! `results/BENCH_simulator.json`.
//!
//! Three measurements:
//!
//! 1. **Tick loop** (the hot path): advance + departures + snapshot for
//!    `N = 400` flows, comparing
//!    * `seed_boxed` — the pre-batching engine, reproduced literally
//!      (including its Marsaglia-polar Gaussian and inverse-CDF
//!      exponential samplers): one box per flow, a virtual `advance`
//!      walk, a second virtual `rate()` walk for the snapshot, and an
//!      O(N) `retain` departure scan per tick;
//!    * `unbatched` — `FlowTable::new_unbatched()` (boxed fallback
//!      group: single fused advance+rate walk, cached min-departure);
//!    * `batched` — `FlowTable::new()` (struct-of-arrays kernels).
//! 2. **End-to-end continuous run** (controller + meter included),
//!    boxed fallback vs batched.
//! 3. **Replication scaling** of the impulsive harness at 1/2/4
//!    workers (deterministic by construction; scaling is bounded by
//!    the machine's `available_parallelism`, which is recorded).
//!
//! Usage: `cargo run --release -p mbac-bench --bin bench_json`

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_sim::{
    ContinuousConfig, ContinuousLoad, Engine, FlowTable, ImpulsiveConfig, ImpulsiveLoad,
    MbacController, SessionBuilder,
};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use mbac_traffic::process::SourceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const N_FLOWS: usize = 400;
const TICKS: usize = 5_000;
const TICK: f64 = 0.25;

fn ar1_model() -> Ar1Model {
    Ar1Model::new(Ar1Config {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        tick: 0.05,
        clamp_at_zero: true,
    })
}

/// The engine exactly as it stood at the seed commit, frozen here so
/// the baseline cannot silently improve as the library evolves:
/// Marsaglia-polar Gaussians, inverse-CDF exponentials, per-flow heap
/// boxes, per-step recomputation of the AR(1) constants, a virtual
/// `advance` walk, an O(N) `retain` departure scan, and a second
/// virtual `rate()` walk for the snapshot.
mod seed_engine {
    use mbac_traffic::ar1::Ar1Config;
    use mbac_traffic::rcbr::RcbrConfig;
    use rand::rngs::StdRng;
    use rand::Rng;

    fn standard_normal(rng: &mut StdRng) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
        mean + sd * standard_normal(rng)
    }

    fn normal_truncated_below(rng: &mut StdRng, mean: f64, sd: f64, lo: f64) -> f64 {
        loop {
            let x = normal(rng, mean, sd);
            if x >= lo {
                return x;
            }
        }
    }

    fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
        let u: f64 = rng.gen::<f64>();
        -mean * (1.0 - u).ln()
    }

    pub trait SeedProcess {
        fn advance(&mut self, dt: f64, rng: &mut StdRng);
        fn rate(&self) -> f64;
    }

    struct SeedRcbr {
        cfg: RcbrConfig,
        rate: f64,
        remaining: f64,
    }

    impl SeedRcbr {
        fn draw_rate(&self, rng: &mut StdRng) -> f64 {
            if self.cfg.truncate_at_zero {
                normal_truncated_below(rng, self.cfg.mean, self.cfg.std_dev.max(1e-300), 0.0)
            } else {
                normal(rng, self.cfg.mean, self.cfg.std_dev)
            }
        }
    }

    impl SeedProcess for SeedRcbr {
        fn advance(&mut self, dt: f64, rng: &mut StdRng) {
            let mut left = dt;
            while left >= self.remaining {
                left -= self.remaining;
                self.rate = self.draw_rate(rng);
                self.remaining = exponential(rng, self.cfg.t_c);
            }
            self.remaining -= left;
        }

        fn rate(&self) -> f64 {
            self.rate
        }
    }

    pub fn spawn_rcbr(cfg: RcbrConfig, rng: &mut StdRng) -> Box<dyn SeedProcess> {
        let mut s = SeedRcbr {
            cfg,
            rate: 0.0,
            remaining: 0.0,
        };
        s.rate = s.draw_rate(rng);
        s.remaining = exponential(rng, cfg.t_c);
        Box::new(s)
    }

    struct SeedAr1 {
        cfg: Ar1Config,
        value: f64,
        elapsed: f64,
    }

    impl SeedProcess for SeedAr1 {
        fn advance(&mut self, dt: f64, rng: &mut StdRng) {
            self.elapsed += dt;
            while self.elapsed >= self.cfg.tick {
                self.elapsed -= self.cfg.tick;
                // The seed recomputed both constants on every step.
                let a = (-self.cfg.tick / self.cfg.t_c).exp();
                let innovation_sd = self.cfg.std_dev * (1.0 - a * a).sqrt();
                self.value = self.cfg.mean
                    + a * (self.value - self.cfg.mean)
                    + innovation_sd * standard_normal(rng);
            }
        }

        fn rate(&self) -> f64 {
            if self.cfg.clamp_at_zero {
                self.value.max(0.0)
            } else {
                self.value
            }
        }
    }

    pub fn spawn_ar1(cfg: Ar1Config, rng: &mut StdRng) -> Box<dyn SeedProcess> {
        let value = normal(rng, cfg.mean, cfg.std_dev);
        Box::new(SeedAr1 {
            cfg,
            value,
            elapsed: 0.0,
        })
    }
}

/// The seed's tick loop, reproduced literally for an honest baseline.
struct SeedBoxedLoop {
    flows: Vec<(Box<dyn seed_engine::SeedProcess>, f64)>,
}

impl SeedBoxedLoop {
    fn tick(&mut self, dt: f64, t: f64, rng: &mut StdRng, snap: &mut Vec<f64>) -> f64 {
        for (p, _) in &mut self.flows {
            p.advance(dt, rng);
        }
        self.flows.retain(|&(_, departs_at)| departs_at > t);
        snap.clear();
        snap.extend(self.flows.iter().map(|(p, _)| p.rate()));
        snap.iter().sum()
    }
}

/// Minimum over interleaved rounds: the standard estimator for
/// wall-clock timings on a shared machine, where noise is strictly
/// additive. The contenders are interleaved (a full round runs each
/// once) so a noisy phase hits all of them rather than biasing one.
fn best_of_interleaved<const K: usize>(mut runs: [&mut dyn FnMut() -> f64; K]) -> [f64; K] {
    let mut best = [f64::INFINITY; K];
    for _ in 0..5 {
        for (b, run) in best.iter_mut().zip(runs.iter_mut()) {
            *b = b.min(run());
        }
    }
    best
}

/// ns/tick for the seed-style boxed loop.
fn time_seed_loop(spawn: &dyn Fn(&mut StdRng) -> Box<dyn seed_engine::SeedProcess>) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    let flows = (0..N_FLOWS)
        .map(|_| (spawn(&mut rng), f64::INFINITY))
        .collect();
    let mut engine = SeedBoxedLoop { flows };
    let mut snap = Vec::new();
    let mut acc = 0.0;
    let start = Instant::now();
    let mut t = 0.0;
    for _ in 0..TICKS {
        t += TICK;
        acc += engine.tick(TICK, t, &mut rng, &mut snap);
    }
    let elapsed = start.elapsed().as_nanos() as f64 / TICKS as f64;
    assert!(acc.is_finite());
    elapsed
}

/// ns/tick for a FlowTable engine (batched or unbatched fallback).
fn time_table_loop(model: &dyn SourceModel, table: &mut FlowTable) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..N_FLOWS {
        table.admit(model, f64::INFINITY, &mut rng);
    }
    let mut snap = Vec::new();
    let mut acc = 0.0;
    let start = Instant::now();
    let mut t = 0.0;
    for _ in 0..TICKS {
        t += TICK;
        table.advance_to(t, &mut rng);
        table.depart_until(t);
        table.snapshot_into(&mut snap);
        acc += snap.iter().sum::<f64>();
    }
    let elapsed = start.elapsed().as_nanos() as f64 / TICKS as f64;
    assert!(acc.is_finite());
    elapsed
}

fn continuous_cfg() -> ContinuousConfig {
    ContinuousConfig {
        capacity: N_FLOWS as f64,
        mean_holding: 10.0 * (N_FLOWS as f64).sqrt(),
        tick: TICK,
        warmup: 50.0,
        sample_spacing: 20.0,
        target: 1e-2,
        max_samples: 200,
        seed: 6,
    }
}

fn controller() -> MbacController {
    MbacController::new(
        Box::new(FilteredEstimator::new(5.0)),
        Box::new(CertaintyEquivalent::from_probability(1e-2)),
    )
}

/// Seconds for one end-to-end continuous run on the given engine.
fn time_continuous(model: &dyn SourceModel, engine: Engine) -> f64 {
    let mut ctl = controller();
    let start = Instant::now();
    let rep = SessionBuilder::new()
        .engine(engine)
        .run_local(&ContinuousLoad::new(&continuous_cfg(), model, &mut ctl))
        .expect("valid bench config");
    let secs = start.elapsed().as_secs_f64();
    assert!(rep.pf.samples > 0);
    secs
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p mbac-bench --bin bench_json\","
    );
    let _ = writeln!(json, "  \"available_parallelism\": {parallelism},");

    // 1. Tick loop.
    let _ = writeln!(json, "  \"tick_loop\": [");
    type SeedSpawner = Box<dyn Fn(&mut StdRng) -> Box<dyn seed_engine::SeedProcess>>;
    let rcbr_cfg = mbac_bench::bench_rcbr().config();
    let ar1_cfg = Ar1Config {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        tick: 0.05,
        clamp_at_zero: true,
    };
    let models: [(&str, Box<dyn SourceModel>, SeedSpawner); 2] = [
        (
            "rcbr",
            Box::new(mbac_bench::bench_rcbr()),
            Box::new(move |rng| seed_engine::spawn_rcbr(rcbr_cfg, rng)),
        ),
        (
            "ar1",
            Box::new(ar1_model()),
            Box::new(move |rng| seed_engine::spawn_ar1(ar1_cfg, rng)),
        ),
    ];
    for (i, (name, model, seed_spawn)) in models.iter().enumerate() {
        let [seed_ns, unbatched_ns, batched_ns] = best_of_interleaved([
            &mut || time_seed_loop(seed_spawn.as_ref()),
            &mut || time_table_loop(model.as_ref(), &mut FlowTable::new_unbatched()),
            &mut || time_table_loop(model.as_ref(), &mut FlowTable::new()),
        ]);
        eprintln!(
            "tick_loop/{name}: seed {seed_ns:.0} ns, unbatched {unbatched_ns:.0} ns, \
             batched {batched_ns:.0} ns ({:.2}x vs seed)",
            seed_ns / batched_ns
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"model\": \"{name}\",");
        let _ = writeln!(json, "      \"n_flows\": {N_FLOWS},");
        let _ = writeln!(json, "      \"ticks\": {TICKS},");
        let _ = writeln!(json, "      \"seed_boxed_ns_per_tick\": {seed_ns:.1},");
        let _ = writeln!(json, "      \"unbatched_ns_per_tick\": {unbatched_ns:.1},");
        let _ = writeln!(json, "      \"batched_ns_per_tick\": {batched_ns:.1},");
        let _ = writeln!(
            json,
            "      \"speedup_batched_vs_seed\": {:.2},",
            seed_ns / batched_ns
        );
        let _ = writeln!(
            json,
            "      \"speedup_batched_vs_unbatched\": {:.2}",
            unbatched_ns / batched_ns
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < models.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // 2. End-to-end continuous run.
    let _ = writeln!(json, "  \"continuous_run\": [");
    for (i, (name, model, _)) in models.iter().enumerate() {
        let [boxed_s, batched_s] = best_of_interleaved([
            &mut || time_continuous(model.as_ref(), Engine::Boxed),
            &mut || time_continuous(model.as_ref(), Engine::Batched),
        ]);
        eprintln!(
            "continuous_run/{name}: boxed {boxed_s:.3} s, batched {batched_s:.3} s \
             ({:.2}x)",
            boxed_s / batched_s
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"model\": \"{name}\",");
        let _ = writeln!(json, "      \"capacity\": {N_FLOWS},");
        let _ = writeln!(json, "      \"boxed_seconds\": {boxed_s:.4},");
        let _ = writeln!(json, "      \"batched_seconds\": {batched_s:.4},");
        let _ = writeln!(json, "      \"speedup\": {:.2}", boxed_s / batched_s);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < models.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // 3. Replication scaling.
    let cfg = ImpulsiveConfig {
        capacity: 100.0,
        estimation_flows: 100,
        mean_holding: Some(10.0),
        observe_times: vec![1.0, 5.0, 20.0],
        replications: 400,
        seed: 3,
    };
    let policy = CertaintyEquivalent::from_probability(1e-2);
    let model = mbac_bench::bench_rcbr();
    let mut seconds = Vec::new();
    let _ = writeln!(json, "  \"replication_scaling\": {{");
    let _ = writeln!(json, "    \"replications\": {},", cfg.replications);
    let _ = writeln!(json, "    \"workers\": [");
    let worker_counts = [1usize, 2, 4];
    for (i, &w) in worker_counts.iter().enumerate() {
        let start = Instant::now();
        let rep = SessionBuilder::new()
            .workers(w)
            .run(&ImpulsiveLoad::new(&cfg, &model, &policy))
            .expect("valid bench config");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(rep.replications, cfg.replications);
        seconds.push(secs);
        eprintln!(
            "impulsive/{w} workers: {secs:.3} s ({:.2}x vs 1 worker)",
            seconds[0] / secs
        );
        let _ = writeln!(
            json,
            "      {{ \"workers\": {w}, \"seconds\": {secs:.4}, \"speedup_vs_1\": {:.2} }}{}",
            seconds[0] / secs,
            if i + 1 < worker_counts.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_simulator.json", &json)
        .expect("write results/BENCH_simulator.json");
    println!("wrote results/BENCH_simulator.json");
}
