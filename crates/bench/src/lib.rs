//! # mbac-bench — criterion benchmarks
//!
//! Two families of benches:
//!
//! * **performance** (`core_ops`, `traffic`, `simulator`): the costs a
//!   deployment cares about — admission decisions, estimator updates,
//!   source advancement, event-queue throughput, end-to-end simulation
//!   steps;
//! * **figures** (`figures`): miniature (quick-budget) versions of every
//!   experiment in DESIGN.md §3, so `cargo bench` exercises each
//!   figure-regeneration pipeline end to end. The full-fidelity series
//!   are produced by the `mbac-experiments` binaries.

/// Shared helper: a small deterministic RCBR model for benches.
pub fn bench_rcbr() -> mbac_traffic::rcbr::RcbrModel {
    mbac_traffic::rcbr::RcbrModel::new(mbac_traffic::rcbr::RcbrConfig::paper_default(1.0))
}
