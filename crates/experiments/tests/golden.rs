//! Golden-snapshot tests for the figure-generation pipeline.
//!
//! Each test regenerates one `results/figN.csv` table through the same
//! builders the `exp_figN` binaries use — fixed seeds, a small Monte
//! Carlo budget — and diffs it against the committed fixture under
//! `tests/golden/`. Every value is compared as a parsed float with a
//! relative tolerance, so a cosmetic change to float formatting does not
//! trip the suite but any change to the simulated or theoretical
//! numbers does.
//!
//! To re-bless the fixtures after an intentional numeric change:
//!
//! ```text
//! MBAC_BLESS=1 cargo test -p mbac-experiments --test golden
//! ```

use mbac_experiments::figures::{
    fig10_rows, fig10_table, fig11_rows, fig11_table, fig12_rows, fig12_table, fig5_rows,
    fig5_table, fig6_rows, fig6_table, fig7_rows, fig7_table, fig9_rows, fig9_table, lrd_trace,
};
use mbac_experiments::topology::{topology_rows, topology_table};
use mbac_experiments::Table;
use std::path::PathBuf;

/// Monte Carlo budget for the simulation-backed figures — far below the
/// binaries' full budgets; the goal is regression detection on the
/// pipeline, not statistical precision.
const SIM_BUDGET: u64 = 120;

/// Trace length for the LRD figures (the binaries use 1 << 16).
const TRACE_SLOTS: usize = 1 << 13;

/// Tick budget for the routed-topology sweep (the binary's full budget
/// is 8000).
const TOPOLOGY_TICKS: u64 = 300;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.csv"))
}

fn close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return a.to_bits() == b.to_bits();
    }
    (a - b).abs() <= 1e-12 + 1e-9 * a.abs().max(b.abs())
}

/// Diffs the regenerated table against the committed fixture (or
/// rewrites the fixture under `MBAC_BLESS=1`).
fn check_golden(name: &str, table: &Table) {
    let path = fixture_path(name);
    let generated = table.to_csv();
    if std::env::var("MBAC_BLESS")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &generated).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); generate it with \
             MBAC_BLESS=1 cargo test -p mbac-experiments --test golden",
            path.display()
        )
    });
    let gen_lines: Vec<&str> = generated.lines().collect();
    let exp_lines: Vec<&str> = expected.lines().collect();
    assert_eq!(
        gen_lines.first(),
        exp_lines.first(),
        "{name}: header drift (re-bless if intentional)"
    );
    assert_eq!(
        gen_lines.len(),
        exp_lines.len(),
        "{name}: row count drift (re-bless if intentional)"
    );
    for (row, (g, e)) in gen_lines.iter().zip(&exp_lines).enumerate().skip(1) {
        let gc: Vec<&str> = g.split(',').collect();
        let ec: Vec<&str> = e.split(',').collect();
        assert_eq!(gc.len(), ec.len(), "{name} row {row}: column count drift");
        for (col, (gv, ev)) in gc.iter().zip(&ec).enumerate() {
            let gv: f64 = gv
                .parse()
                .unwrap_or_else(|_| panic!("{name} row {row} col {col}: unparsable {gv:?}"));
            let ev: f64 = ev
                .parse()
                .unwrap_or_else(|_| panic!("{name} row {row} col {col}: unparsable {ev:?}"));
            assert!(
                close(gv, ev),
                "{name} row {row} col {col}: {gv} != fixture {ev} \
                 (re-bless with MBAC_BLESS=1 if this change is intentional)"
            );
        }
    }
}

#[test]
fn fig5_matches_fixture() {
    check_golden("fig5", &fig5_table(&fig5_rows(SIM_BUDGET)));
}

#[test]
fn fig6_matches_fixture() {
    check_golden("fig6", &fig6_table(&fig6_rows()));
}

#[test]
fn fig7_matches_fixture() {
    check_golden("fig7", &fig7_table(&fig7_rows(SIM_BUDGET)));
}

#[test]
fn fig9_matches_fixture() {
    check_golden("fig9", &fig9_table(&fig9_rows()));
}

#[test]
fn fig10_matches_fixture() {
    check_golden("fig10", &fig10_table(&fig10_rows(SIM_BUDGET)));
}

#[test]
fn fig11_matches_fixture() {
    check_golden(
        "fig11",
        &fig11_table(&fig11_rows(&lrd_trace(TRACE_SLOTS), SIM_BUDGET)),
    );
}

#[test]
fn fig12_matches_fixture() {
    check_golden(
        "fig12",
        &fig12_table(&fig12_rows(&lrd_trace(TRACE_SLOTS), SIM_BUDGET)),
    );
}

#[test]
fn topology_matches_fixture() {
    check_golden("topology", &topology_table(&topology_rows(TOPOLOGY_TICKS)));
}
