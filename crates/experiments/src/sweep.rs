//! Parallel parameter sweeps over OS threads.
//!
//! Simulation points are independent and CPU-bound, so we shard them
//! across `crossbeam` scoped threads (no async runtime — see DESIGN.md
//! §2). Results come back in input order regardless of completion order.

/// Applies `f` to every item, running up to `available_parallelism`
/// workers, and returns the outputs in input order.
///
/// `f` must be `Sync` (it is shared across workers); items are consumed
/// by index so no cloning occurs.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    parallel_map_with(items, f, workers)
}

/// As [`parallel_map`] with an explicit worker count.
pub fn parallel_map_with<I, O, F>(items: Vec<I>, f: F, workers: usize) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(workers > 0);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let slot_ptr = SlotVec(slots.as_mut_ptr());
    let items_ref = &items;
    let f_ref = &f;
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(n) {
            let next = &next;
            let slot_ptr = &slot_ptr;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f_ref(&items_ref[i]);
                // SAFETY: each index i is claimed by exactly one worker
                // via the atomic counter, so writes are disjoint; the
                // scope guarantees the Vec outlives all workers.
                unsafe {
                    *slot_ptr.0.add(i) = Some(out);
                }
            });
        }
    })
    .expect("sweep worker panicked");
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

/// Send/Sync wrapper for the disjoint-write output pointer.
struct SlotVec<O>(*mut Option<O>);
unsafe impl<O: Send> Send for SlotVec<O> {}
unsafe impl<O: Send> Sync for SlotVec<O> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_sequential() {
        let items: Vec<i32> = (0..37).collect();
        let seq: Vec<i32> = items.iter().map(|&x| x - 3).collect();
        let par = parallel_map_with(items, |&x| x - 3, 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map_with(vec![1, 2, 3], |&x| x + 1, 64);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn heavy_uneven_work_still_ordered() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(items, |&x| {
            // Uneven busy work.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
