//! Parallel parameter sweeps.
//!
//! The implementation now lives in [`mbac_num::parallel`] so the
//! simulator's replication sharding and the experiment sweeps share one
//! fork-join primitive; this module re-exports it to keep the historic
//! `mbac_experiments::parallel_map` path working for the binaries.

pub use mbac_num::parallel::{parallel_map, parallel_map_with};
