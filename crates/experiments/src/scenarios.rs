//! Shared experiment scenarios: parameterized builders that wire traffic
//! models, estimators, controllers and the simulator together the same
//! way for every figure binary (and for the criterion benches).

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_core::params::QosTarget;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_sim::{
    ContinuousConfig, ContinuousLoad, ContinuousReport, MbacController, SessionBuilder,
};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use mbac_traffic::trace::{Trace, TraceModel};
use std::sync::Arc;

/// A continuous-load RCBR scenario — the configuration behind Figs 5,
/// 7 and 10.
#[derive(Debug, Clone, Copy)]
pub struct ContinuousScenario {
    /// System size `n = c/μ`.
    pub n: f64,
    /// Mean holding time `T_h`.
    pub t_h: f64,
    /// Traffic correlation time-scale `T_c`.
    pub t_c: f64,
    /// Estimator memory `T_m`.
    pub t_m: f64,
    /// Certainty-equivalent target `p_ce` the controller runs with.
    pub p_ce: f64,
    /// QoS target `p_q` (for the termination criteria).
    pub p_q: f64,
    /// Spaced-sample budget.
    pub max_samples: u64,
    /// Seed.
    pub seed: u64,
}

impl ContinuousScenario {
    /// The critical time-scale `T̃_h = T_h/√n`.
    pub fn t_h_tilde(&self) -> f64 {
        self.t_h / self.n.sqrt()
    }

    /// The matching theory model (σ/μ = 0.3 as in all simulations).
    pub fn theory(&self) -> ContinuousModel {
        ContinuousModel::new(crate::paper::COV, self.t_h_tilde(), self.t_c)
    }

    /// Theory prediction by numerical integration of eqn (37).
    pub fn theory_pf_general(&self) -> f64 {
        self.theory()
            .pf_with_memory(QosTarget::new(self.p_ce).alpha(), self.t_m)
    }

    /// Theory prediction by the closed form of eqn (38).
    pub fn theory_pf_closed(&self) -> f64 {
        self.theory()
            .pf_with_memory_separated(QosTarget::new(self.p_ce).alpha(), self.t_m)
    }

    /// The simulator configuration implementing §5.2: tick ≲ T_c/4,
    /// warm-up of 10 memory/holding scales, sample spacing
    /// `2·max(T̃_h, T_m, T_c)`.
    pub fn sim_config(&self) -> ContinuousConfig {
        let t_h_tilde = self.t_h_tilde();
        let scale = t_h_tilde.max(self.t_m).max(self.t_c);
        ContinuousConfig {
            capacity: self.n * crate::paper::MEAN,
            mean_holding: self.t_h,
            tick: (self.t_c / 4.0).min(t_h_tilde / 4.0).max(1e-3),
            warmup: 10.0 * scale,
            sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, self.t_m, self.t_c),
            target: self.p_q,
            max_samples: self.max_samples,
            seed: self.seed,
        }
    }

    /// Runs the simulation with the paper's RCBR sources and the
    /// exponentially-filtered certainty-equivalent MBAC.
    pub fn run(&self) -> ContinuousReport {
        let model = RcbrModel::new(RcbrConfig {
            mean: crate::paper::MEAN,
            std_dev: crate::paper::COV * crate::paper::MEAN,
            t_c: self.t_c,
            truncate_at_zero: true,
        });
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(self.t_m)),
            Box::new(CertaintyEquivalent::from_probability(self.p_ce)),
        );
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&self.sim_config(), &model, &mut ctl))
            .expect("valid continuous scenario config")
    }
}

/// A continuous-load trace-driven scenario — the configuration behind
/// Figs 11–12 (Starwars-like LRD traffic).
#[derive(Clone)]
pub struct TraceScenario {
    /// The shared trace.
    pub trace: Arc<Trace>,
    /// System size `n = c/μ_trace`.
    pub n: f64,
    /// Mean holding time `T_h`.
    pub t_h: f64,
    /// Estimator memory `T_m`.
    pub t_m: f64,
    /// Certainty-equivalent target.
    pub p_ce: f64,
    /// QoS target.
    pub p_q: f64,
    /// Spaced-sample budget.
    pub max_samples: u64,
    /// Seed.
    pub seed: u64,
}

impl TraceScenario {
    /// The critical time-scale.
    pub fn t_h_tilde(&self) -> f64 {
        self.t_h / self.n.sqrt()
    }

    /// Runs the trace-driven continuous-load simulation.
    pub fn run(&self) -> ContinuousReport {
        let model = TraceModel::new(self.trace.clone());
        let slot = self.trace.slot();
        let t_h_tilde = self.t_h_tilde();
        let scale = t_h_tilde.max(self.t_m).max(slot);
        let cfg = ContinuousConfig {
            capacity: self.n * self.trace.mean(),
            mean_holding: self.t_h,
            tick: (slot / 2.0).min(t_h_tilde / 4.0).max(1e-3),
            warmup: 10.0 * scale,
            sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, self.t_m, slot),
            target: self.p_q,
            max_samples: self.max_samples,
            seed: self.seed,
        };
        let mut ctl = MbacController::new(
            Box::new(FilteredEstimator::new(self.t_m)),
            Box::new(CertaintyEquivalent::from_probability(self.p_ce)),
        );
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
            .expect("valid trace scenario config")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ContinuousScenario {
        ContinuousScenario {
            n: 100.0,
            t_h: 100.0,
            t_c: 1.0,
            t_m: 5.0,
            p_ce: 1e-2,
            p_q: 1e-2,
            max_samples: 200,
            seed: 1,
        }
    }

    #[test]
    fn derived_quantities() {
        let s = scenario();
        assert!((s.t_h_tilde() - 10.0).abs() < 1e-12);
        let cfg = s.sim_config();
        assert!((cfg.sample_spacing - 20.0).abs() < 1e-12);
        assert!((cfg.capacity - 100.0).abs() < 1e-12);
        assert!(cfg.tick <= 0.25 + 1e-12);
    }

    #[test]
    fn theory_matches_direct_model_call() {
        let s = scenario();
        let direct =
            ContinuousModel::new(0.3, 10.0, 1.0).pf_with_memory(QosTarget::new(1e-2).alpha(), 5.0);
        assert!((s.theory_pf_general() - direct).abs() < 1e-12);
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let rep = scenario().run();
        assert!(rep.pf.samples > 0);
        assert!(rep.mean_utilization > 0.5 && rep.mean_utilization < 1.1);
    }

    #[test]
    fn trace_scenario_runs_end_to_end() {
        use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = StarwarsConfig {
            slots: 4096,
            ..StarwarsConfig::default()
        };
        let trace = Arc::new(generate_starwars_like(&cfg, &mut StdRng::seed_from_u64(5)));
        let s = TraceScenario {
            trace,
            n: 50.0,
            t_h: 100.0,
            t_m: 0.0,
            p_ce: 1e-2,
            p_q: 1e-2,
            max_samples: 100,
            seed: 6,
        };
        let rep = s.run();
        assert!(rep.pf.samples > 0);
        assert!(rep.mean_flows > 10.0);
    }
}
