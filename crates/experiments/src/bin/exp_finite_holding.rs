//! Experiment `eqn-21` — overflow dynamics after an impulsive admission
//! with finite holding times (§3.2, the quantitative content behind
//! Fig. 2).
//!
//! The theory predicts `p_f(t) = Q([ (μ/σ)t/T̃_h + α_q ] / √(2(1−ρ(t))))`:
//! zero at `t = 0` (the measurement is momentarily exact), rising as the
//! traffic decorrelates, then falling as departures repair the error.
//! We simulate the impulsive model with exponential holding times and
//! compare the whole `p_f(t)` curve.

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::params::{FlowStats, QosTarget};
use mbac_core::theory::finite_holding::pf_at_time;
use mbac_experiments::{ascii_plot, budget, write_csv, Table};
use mbac_sim::{ImpulsiveConfig, ImpulsiveLoad, SessionBuilder};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

fn main() {
    // Setup: n = 400, T_c = 1, T_h = 200 ⇒ T̃_h = 10; p_ce = p_q = 0.01
    // (a target large enough to resolve the peak by direct simulation).
    let n = 400usize;
    let t_c = 1.0;
    let t_h = 200.0;
    let t_h_tilde = t_h / (n as f64).sqrt();
    let p = 0.01;
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let qos = QosTarget::new(p);
    let rho = |t: f64| (-t / t_c).exp();

    let times: Vec<f64> = vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let reps = budget(120_000, 5_000) as usize;

    let model = RcbrModel::new(RcbrConfig::paper_default(t_c));
    let ce = CertaintyEquivalent::new(qos);
    let cfg = ImpulsiveConfig {
        capacity: n as f64,
        estimation_flows: n,
        mean_holding: Some(t_h),
        observe_times: times.clone(),
        replications: reps,
        seed: 0xF1217E,
    };
    let rep = SessionBuilder::new()
        .run(&ImpulsiveLoad::new(&cfg, &model, &ce))
        .expect("valid finite-holding config");

    println!("== eqn-21: overflow probability after impulsive admission ==");
    println!("n = {n}, T_c = {t_c}, T_h = {t_h} (T̃_h = {t_h_tilde:.2}), p_ce = {p}\n");
    let mut table = Table::new(vec!["t", "pf_theory", "pf_sim", "mean_flows"]);
    let mut theory_series = Vec::new();
    let mut sim_series = Vec::new();
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "t", "pf_theory", "pf_sim", "flows"
    );
    for (i, &t) in times.iter().enumerate() {
        let pf_th = pf_at_time(t, flow, qos, t_h_tilde, rho);
        let pf_sim = rep.pf_at(i);
        let flows = rep.observations[i].mean_flows;
        println!("{t:>8.2} {pf_th:>12.6} {pf_sim:>12.6} {flows:>12.1}");
        table.push(vec![t, pf_th, pf_sim, flows]);
        theory_series.push((t, pf_th));
        sim_series.push((t, pf_sim));
    }
    let path = write_csv("finite_holding", &table).expect("write CSV");
    println!(
        "\n{}",
        ascii_plot(
            &[
                ("theory eqn(21)", &theory_series),
                ("simulation", &sim_series)
            ],
            false,
            60,
            14,
        )
    );
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: p_f(0) ≈ 0, an interior peak near the correlation/repair\n\
         crossover, decay to ~0 well before t ≈ T̃_h·several; theory conservative."
    );
}
