//! Experiment `fig-12` — long-range-dependent traffic with the robust
//! memory rule `T_m = T̃_h`, over the same sweep as Fig. 11.
//!
//! Paper-expected shape: with the window rule (and the eqn (38)-inverted
//! target adjustment, per §5.2's robust procedure) the overflow
//! probability stays at or below `p_q` across the whole `1/T̃_h` range —
//! "apparently, the strong long-term fluctuations of this traffic do not
//! degrade the performance of the MBAC".

use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_experiments::scenarios::TraceScenario;
use mbac_experiments::{ascii_plot, budget, paper, parallel_map, write_csv, Table};
use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let p_q = paper::P_Q;
    let n: f64 = 400.0;
    let cfg = StarwarsConfig {
        slots: 1 << 16,
        ..StarwarsConfig::default()
    };
    let trace = Arc::new(generate_starwars_like(
        &cfg,
        &mut StdRng::seed_from_u64(0x57A7),
    ));
    let cov = trace.variance().sqrt() / trace.mean();
    let t_hs: Vec<f64> = vec![8_000.0, 4_000.0, 2_000.0, 1_000.0, 500.0, 250.0];
    let max_samples = budget(10_000, 200);

    println!("== fig-12: LRD trace with the robust window rule T_m = T̃_h ==");
    println!("n = {n}, p_q = {p_q}, trace cov = {cov:.3}\n");

    let trace2 = trace.clone();
    let rows = parallel_map(t_hs, move |&t_h| {
        let t_h_tilde = t_h / n.sqrt();
        // Robust procedure: adjust p_ce by inverting eqn (38) at the
        // nominal single-scale model (T_c = trace slot), worst-cased by
        // the masking regime being T_c-insensitive.
        let model = ContinuousModel::new(cov, t_h_tilde, trace2.slot());
        let p_ce = invert_pce(&model, t_h_tilde, p_q, InvertMethod::Separated)
            .map(|a| a.p_ce)
            .unwrap_or(p_q)
            .max(1e-300);
        let sc = TraceScenario {
            trace: trace2.clone(),
            n,
            t_h,
            t_m: t_h_tilde,
            p_ce,
            p_q,
            max_samples,
            seed: 0x0F12 + t_h as u64,
        };
        (t_h, t_h_tilde, p_ce, sc.run())
    });

    let mut table = Table::new(vec![
        "t_h",
        "inv_thtilde",
        "t_m",
        "pce_adj",
        "pf_sim",
        "target",
        "util",
    ]);
    let mut s_sim = Vec::new();
    println!(
        "{:>9} {:>10} {:>8} {:>12} {:>12} {:>9} {:>7} {:>14}",
        "T_h", "1/T̃_h", "T_m", "p_ce(adj)", "pf_sim", "target", "util", "method"
    );
    for (t_h, tht, p_ce, rep) in rows {
        let x = 1.0 / tht;
        println!(
            "{:>9.0} {:>10.4} {:>8.1} {:>12.3e} {:>12.3e} {:>9.1e} {:>7.3} {:>14?}",
            t_h, x, tht, p_ce, rep.pf.value, p_q, rep.mean_utilization, rep.pf.method
        );
        table.push(vec![
            t_h,
            x,
            tht,
            p_ce,
            rep.pf.value,
            p_q,
            rep.mean_utilization,
        ]);
        s_sim.push((x, rep.pf.value.max(1e-9)));
    }
    let target_line: Vec<(f64, f64)> = s_sim.iter().map(|&(x, _)| (x, p_q)).collect();
    let path = write_csv("fig12", &table).expect("write CSV");
    println!(
        "\n{}",
        ascii_plot(
            &[("pf with T_m = T̃_h", &s_sim), ("p_q target", &target_line)],
            true,
            60,
            12
        )
    );
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: p_f at or below the target p_q = {p_q} across the whole range —\n\
         the robust window rule masks the LRD structure (compare fig-11's misses)."
    );
}
