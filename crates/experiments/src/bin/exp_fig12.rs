//! Experiment `fig-12` — long-range-dependent traffic with the robust
//! memory rule `T_m = T̃_h`, over the same sweep as Fig. 11.
//!
//! Paper-expected shape: with the window rule (and the eqn (38)-inverted
//! target adjustment, per §5.2's robust procedure) the overflow
//! probability stays at or below `p_q` across the whole `1/T̃_h` range —
//! "apparently, the strong long-term fluctuations of this traffic do not
//! degrade the performance of the MBAC".

use mbac_experiments::figures::{fig12_rows, fig12_table, lrd_trace};
use mbac_experiments::{ascii_plot, budget, paper, write_csv};

fn main() {
    let p_q = paper::P_Q;
    let n: f64 = 400.0;
    let trace = lrd_trace(1 << 16);
    let cov = trace.variance().sqrt() / trace.mean();
    let max_samples = budget(10_000, 200);

    println!("== fig-12: LRD trace with the robust window rule T_m = T̃_h ==");
    println!("n = {n}, p_q = {p_q}, trace cov = {cov:.3}\n");

    let rows = fig12_rows(&trace, max_samples);

    let mut s_sim = Vec::new();
    println!(
        "{:>9} {:>10} {:>8} {:>12} {:>12} {:>9} {:>7} {:>14}",
        "T_h", "1/T̃_h", "T_m", "p_ce(adj)", "pf_sim", "target", "util", "method"
    );
    for r in &rows {
        let x = 1.0 / r.t_h_tilde;
        println!(
            "{:>9.0} {:>10.4} {:>8.1} {:>12.3e} {:>12.3e} {:>9.1e} {:>7.3} {:>14?}",
            r.t_h,
            x,
            r.t_h_tilde,
            r.p_ce,
            r.report.pf.value,
            p_q,
            r.report.mean_utilization,
            r.report.pf.method
        );
        s_sim.push((x, r.report.pf.value.max(1e-9)));
    }
    let target_line: Vec<(f64, f64)> = s_sim.iter().map(|&(x, _)| (x, p_q)).collect();
    let path = write_csv("fig12", &fig12_table(&rows)).expect("write CSV");
    println!(
        "\n{}",
        ascii_plot(
            &[("pf with T_m = T̃_h", &s_sim), ("p_q target", &target_line)],
            true,
            60,
            12
        )
    );
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: p_f at or below the target p_q = {p_q} across the whole range —\n\
         the robust window rule masks the LRD structure (compare fig-11's misses)."
    );
}
