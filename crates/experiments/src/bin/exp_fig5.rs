//! Experiment `fig-5` — overflow probability vs. estimator memory `T_m`:
//! theory (eqn (38), with eqn (37) numerics alongside) vs. simulation.
//!
//! Paper setting (Fig. 5 caption): `T_h = 1000`, `T_c = 1.0`,
//! `p_ce = 1.0e-3`; we use `n = 1000` (the size used in the companion
//! Figs. 6–7 curves), so `T̃_h ≈ 31.6`.
//!
//! Paper-expected shape: `p_f` starts ~2 orders above the target at
//! `T_m = 0`, falls steeply with memory, and flattens past a knee around
//! `T_m ≈ T̃_h`; the theory curve is conservative (sits above the
//! simulation) but matches the shape and knee location.

use mbac_experiments::figures::{fig5_rows, fig5_table};
use mbac_experiments::{ascii_plot, budget, paper, write_csv};

fn main() {
    let n: f64 = 1000.0;
    let t_h = paper::FIG5_T_H;
    let t_c = paper::FIG5_T_C;
    let p_ce = paper::FIG5_P_CE;
    let t_h_tilde = t_h / n.sqrt();
    let max_samples = budget(20_000, 400);

    println!("== fig-5: p_f vs memory window T_m ==");
    println!("n = {n}, T_h = {t_h} (T̃_h = {t_h_tilde:.1}), T_c = {t_c}, p_ce = {p_ce}\n");

    let rows = fig5_rows(max_samples);

    let mut s_theory = Vec::new();
    let mut s_sim = Vec::new();
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>7} {:>8} {:>14}",
        "T_m", "pf_eqn38", "pf_eqn37", "pf_sim", "util", "samples", "method"
    );
    for r in &rows {
        println!(
            "{:>7.1} {:>12.3e} {:>12.3e} {:>12.3e} {:>7.3} {:>8} {:>14?}",
            r.t_m,
            r.pf_eqn38,
            r.pf_eqn37,
            r.report.pf.value,
            r.report.mean_utilization,
            r.report.pf.samples,
            r.report.pf.method
        );
        s_theory.push((r.t_m, r.pf_eqn38));
        s_sim.push((r.t_m, r.report.pf.value));
    }
    let path = write_csv("fig5", &fig5_table(&rows)).expect("write CSV");
    println!(
        "\n{}",
        ascii_plot(
            &[("theory eqn(38)", &s_theory), ("simulation", &s_sim)],
            true,
            60,
            16
        )
    );
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: monotone decrease with a knee near T_m ≈ T̃_h = {t_h_tilde:.0};\n\
         theory conservative w.r.t. simulation (paper attributes the offset to\n\
         ignoring flow-count discreteness)."
    );
}
