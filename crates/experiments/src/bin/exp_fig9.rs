//! Experiment `fig-9` — overflow probability by numerical integration
//! of the general formula (eqn (37)) over the `(T_m/T̃_h, T_c)` plane.
//!
//! Paper-expected shape: for small `T_m/T̃_h` the surface is strongly
//! non-robust — `p_f` blows up by orders of magnitude for intermediate
//! `T_c` — while once `T_m` is a significant fraction of `T̃_h` the QoS
//! holds over the whole `T_c` range (masking regime on the left of the
//! `T_c` axis, repair regime on the right).

use mbac_experiments::figures::{fig9_rows, fig9_table};
use mbac_experiments::{paper, write_csv};

fn main() {
    let p_ce = paper::P_Q;
    let t_h_tilde = 31.6; // n = 1000, T_h = 1000

    println!("== fig-9: p_f by numerical integration of eqn (37) ==");
    println!("T̃_h = {t_h_tilde}, p_ce = {p_ce}, σ/μ = {}\n", paper::COV);
    let rows = fig9_rows();

    // Matrix printout: rows come out grouped by ratio, t_c fastest.
    let t_cs: Vec<f64> = rows
        .iter()
        .take_while(|r| r.ratio == rows[0].ratio)
        .map(|r| r.t_c)
        .collect();
    print!("{:>14} |", "T_m/T̃_h \\ T_c");
    for &t_c in &t_cs {
        print!(" {t_c:>9.2}");
    }
    println!();
    println!("{}", "-".repeat(16 + 10 * t_cs.len()));
    for chunk in rows.chunks(t_cs.len()) {
        print!("{:>14.2} |", chunk[0].ratio);
        for r in chunk {
            print!(" {:>9.2e}", r.pf);
        }
        println!();
    }

    let path = write_csv("fig9", &fig9_table(&rows)).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: top rows (tiny memory) exceed the target {p_ce} by orders of\n\
         magnitude around T_c ≈ 0.1–1 (estimation errors fluctuate fast within the\n\
         critical time-scale); bottom rows (T_m ≈ T̃_h) satisfy the target for every\n\
         T_c; the far right column is safe everywhere (repair regime)."
    );
}
