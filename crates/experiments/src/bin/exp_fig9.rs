//! Experiment `fig-9` — overflow probability by numerical integration
//! of the general formula (eqn (37)) over the `(T_m/T̃_h, T_c)` plane.
//!
//! Paper-expected shape: for small `T_m/T̃_h` the surface is strongly
//! non-robust — `p_f` blows up by orders of magnitude for intermediate
//! `T_c` — while once `T_m` is a significant fraction of `T̃_h` the QoS
//! holds over the whole `T_c` range (masking regime on the left of the
//! `T_c` axis, repair regime on the right).

use mbac_core::params::QosTarget;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_experiments::{paper, write_csv, Table};

fn main() {
    let p_ce = paper::P_Q;
    let alpha = QosTarget::new(p_ce).alpha();
    let t_h_tilde = 31.6; // n = 1000, T_h = 1000
    let ratios: Vec<f64> = vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0];
    let t_cs: Vec<f64> = vec![0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];

    println!("== fig-9: p_f by numerical integration of eqn (37) ==");
    println!("T̃_h = {t_h_tilde}, p_ce = {p_ce}, σ/μ = {}\n", paper::COV);
    let mut table = Table::new(vec!["tm_over_thtilde", "t_c", "pf"]);

    // Header row of the matrix printout.
    print!("{:>14} |", "T_m/T̃_h \\ T_c");
    for &t_c in &t_cs {
        print!(" {t_c:>9.2}");
    }
    println!();
    println!("{}", "-".repeat(16 + 10 * t_cs.len()));
    for &r in &ratios {
        let t_m = r * t_h_tilde;
        print!("{r:>14.2} |");
        for &t_c in &t_cs {
            let model = ContinuousModel::new(paper::COV, t_h_tilde, t_c);
            let pf = model.pf_with_memory(alpha, t_m);
            print!(" {pf:>9.2e}");
            table.push(vec![r, t_c, pf]);
        }
        println!();
    }

    let path = write_csv("fig9", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: top rows (tiny memory) exceed the target {p_ce} by orders of\n\
         magnitude around T_c ≈ 0.1–1 (estimation errors fluctuate fast within the\n\
         critical time-scale); bottom rows (T_m ≈ T̃_h) satisfy the target for every\n\
         T_c; the far right column is safe everywhere (repair regime)."
    );
}
