//! Experiment `fig-6` — the adjusted certainty-equivalent target `p_ce`
//! obtained by inverting eqn (38), as a function of the memory window
//! `T_m`, for `n ∈ {100, 1000}`, `T_h ∈ {1e3, 1e4}`, `p_q = 1.0e-3`
//! (the paper's Fig. 6 parameter grid).
//!
//! Paper-expected shape: for small `T_m` the adjusted target collapses
//! (below 1e-10 for the larger `T̃_h` curves); as `T_m` grows toward
//! `T̃_h` the required adjustment relaxes toward `p_q`. Larger `T̃_h`
//! (longer holding times / smaller systems) demands more conservatism.

use mbac_experiments::figures::{fig6_rows, fig6_table};
use mbac_experiments::{ascii_plot, paper, write_csv};

fn main() {
    let p_q = paper::P_Q;
    let t_c = paper::FIG5_T_C;

    println!("== fig-6: adjusted p_ce by inversion of eqn (38) ==");
    println!("p_q = {p_q}, T_c = {t_c}\n");
    let rows = fig6_rows();
    let mut series_store: Vec<(String, Vec<(f64, f64)>)> = Vec::new();

    let mut current: Option<(f64, f64)> = None;
    let mut series = Vec::new();
    for r in &rows {
        if current != Some((r.n, r.t_h)) {
            if let Some((n, t_h)) = current {
                series_store.push((format!("n={n},T_h={t_h:.0}"), std::mem::take(&mut series)));
                println!();
            }
            current = Some((r.n, r.t_h));
            let t_h_tilde = r.t_h / r.n.sqrt();
            println!("-- n = {}, T_h = {} (T̃_h = {t_h_tilde:.1}) --", r.n, r.t_h);
            println!(
                "{:>9} {:>12} {:>12} {:>9}",
                "T_m", "p_ce", "ln p_ce", "alpha_ce"
            );
        }
        if r.inverted {
            println!(
                "{:>9.2} {:>12.3e} {:>12.2} {:>9.3}",
                r.t_m, r.pce, r.ln_pce, r.alpha_ce
            );
            series.push((r.t_m.log10(), r.ln_pce / std::f64::consts::LN_10));
        } else {
            println!(
                "{:>9.2} {:>12} (repair-dominated: no adjustment needed)",
                r.t_m, "-"
            );
        }
    }
    if let Some((n, t_h)) = current {
        series_store.push((format!("n={n},T_h={t_h:.0}"), series));
        println!();
    }

    let path = write_csv("fig6", &fig6_table(&rows)).expect("write CSV");
    let plot_series: Vec<(&str, &[(f64, f64)])> = series_store
        .iter()
        .map(|(s, v)| (s.as_str(), v.as_slice()))
        .collect();
    println!("{}", ascii_plot(&plot_series, false, 64, 18));
    println!("axes: x = log10(T_m), y = log10(p_ce)\n");
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: p_ce rises from extremely small values (< 1e-10 for the\n\
         T̃_h-largest curve) toward p_q = {p_q} as T_m approaches T̃_h; curves order\n\
         by T̃_h = T_h/√n."
    );
}
