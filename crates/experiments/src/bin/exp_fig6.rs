//! Experiment `fig-6` — the adjusted certainty-equivalent target `p_ce`
//! obtained by inverting eqn (38), as a function of the memory window
//! `T_m`, for `n ∈ {100, 1000}`, `T_h ∈ {1e3, 1e4}`, `p_q = 1.0e-3`
//! (the paper's Fig. 6 parameter grid).
//!
//! Paper-expected shape: for small `T_m` the adjusted target collapses
//! (below 1e-10 for the larger `T̃_h` curves); as `T_m` grows toward
//! `T̃_h` the required adjustment relaxes toward `p_q`. Larger `T̃_h`
//! (longer holding times / smaller systems) demands more conservatism.

use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_experiments::{ascii_plot, paper, write_csv, Table};

fn main() {
    let p_q = paper::P_Q;
    let t_c = paper::FIG5_T_C;
    let grid: Vec<(f64, f64)> = vec![(100.0, 1e3), (100.0, 1e4), (1000.0, 1e3), (1000.0, 1e4)];
    let t_ms: Vec<f64> = (0..=14).map(|k| 2f64.powi(k - 2)).collect(); // 0.25 .. 4096

    println!("== fig-6: adjusted p_ce by inversion of eqn (38) ==");
    println!("p_q = {p_q}, T_c = {t_c}\n");
    let mut table = Table::new(vec!["n", "t_h", "t_m", "ln_pce", "pce", "alpha_ce"]);
    let mut series_store: Vec<(String, Vec<(f64, f64)>)> = Vec::new();

    for &(n, t_h) in &grid {
        let t_h_tilde = t_h / n.sqrt();
        let model = ContinuousModel::new(paper::COV, t_h_tilde, t_c);
        let mut series = Vec::new();
        println!("-- n = {n}, T_h = {t_h} (T̃_h = {t_h_tilde:.1}) --");
        println!(
            "{:>9} {:>12} {:>12} {:>9}",
            "T_m", "p_ce", "ln p_ce", "alpha_ce"
        );
        for &t_m in &t_ms {
            match invert_pce(&model, t_m, p_q, InvertMethod::Separated) {
                Ok(adj) => {
                    println!(
                        "{:>9.2} {:>12.3e} {:>12.2} {:>9.3}",
                        t_m, adj.p_ce, adj.ln_pce, adj.alpha_ce
                    );
                    table.push(vec![n, t_h, t_m, adj.ln_pce, adj.p_ce, adj.alpha_ce]);
                    series.push((t_m.log10(), adj.ln_pce / std::f64::consts::LN_10));
                }
                Err(_) => {
                    println!(
                        "{t_m:>9.2} {:>12} (repair-dominated: no adjustment needed)",
                        "-"
                    );
                    table.push(vec![n, t_h, t_m, p_q.ln(), p_q, mbac_num::inv_q(p_q)]);
                }
            }
        }
        series_store.push((format!("n={n},T_h={t_h:.0}"), series));
        println!();
    }

    let path = write_csv("fig6", &table).expect("write CSV");
    let plot_series: Vec<(&str, &[(f64, f64)])> = series_store
        .iter()
        .map(|(s, v)| (s.as_str(), v.as_slice()))
        .collect();
    println!("{}", ascii_plot(&plot_series, false, 64, 18));
    println!("axes: x = log10(T_m), y = log10(p_ce)\n");
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: p_ce rises from extremely small values (< 1e-10 for the\n\
         T̃_h-largest curve) toward p_q = {p_q} as T_m approaches T̃_h; curves order\n\
         by T̃_h = T_h/√n."
    );
}
