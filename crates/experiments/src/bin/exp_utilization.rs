//! Experiment `eqn-40` — the utilization cost of conservatism.
//!
//! eqn (40): running the certainty-equivalent controller at `p_ce`
//! instead of `p'_ce` changes the average carried bandwidth by
//! `ΔU = σ√n [Q⁻¹(p_ce) − Q⁻¹(p'_ce)]`. We sweep `p_ce` in the
//! continuous-load simulator and compare the *measured* utilization
//! differences with the formula, plus the §3.1 special case
//! `(√2−1)σα_q√n` and the peak-rate baseline.
//!
//! Paper-expected shape: measured ΔU tracks eqn (40) closely; the
//! peak-rate baseline forfeits several times more bandwidth than even
//! the most conservative Gaussian controller.

use mbac_core::params::FlowStats;
use mbac_core::theory::utilization::{mean_utilization, utilization_loss};
use mbac_experiments::scenarios::ContinuousScenario;
use mbac_experiments::{budget, paper, parallel_map, write_csv, Table};

fn main() {
    let n: f64 = 400.0;
    let t_h = 1000.0;
    let t_c = 1.0;
    let t_m = t_h / n.sqrt(); // robust window
    let flow = FlowStats::from_mean_sd(paper::MEAN, paper::COV);
    let p_ces: Vec<f64> = vec![1e-1, 1e-2, 1e-3, 1e-5, 1e-8];
    let max_samples = budget(4_000, 300);

    println!("== eqn-40: utilization vs conservatism ==");
    println!("n = {n}, T_h = {t_h}, T_c = {t_c}, T_m = {t_m:.1}\n");

    let rows = parallel_map(p_ces.clone(), |&p_ce| {
        let sc = ContinuousScenario {
            n,
            t_h,
            t_c,
            t_m,
            p_ce,
            p_q: p_ce.max(1e-3),
            max_samples,
            seed: 0x0E40 + (p_ce.log10().abs() * 10.0) as u64,
        };
        (p_ce, sc.run())
    });

    let mut table = Table::new(vec![
        "p_ce",
        "util_sim",
        "util_theory",
        "flows_sim",
        "pf_sim",
    ]);
    println!(
        "{:>9} {:>9} {:>12} {:>10} {:>12}",
        "p_ce", "util_sim", "util_theory", "flows", "pf_sim"
    );
    let mut sim_utils = Vec::new();
    for (p_ce, rep) in &rows {
        let util_th = mean_utilization(n, flow, mbac_num::inv_q(*p_ce));
        println!(
            "{:>9.1e} {:>9.4} {:>12.4} {:>10.1} {:>12.3e}",
            p_ce, rep.mean_utilization, util_th, rep.mean_flows, rep.pf.value
        );
        table.push(vec![
            *p_ce,
            rep.mean_utilization,
            util_th,
            rep.mean_flows,
            rep.pf.value,
        ]);
        sim_utils.push((*p_ce, rep.mean_utilization));
    }

    println!("\n-- pairwise ΔU (bandwidth units) vs eqn (40) --");
    println!(
        "{:>9} {:>9} {:>12} {:>12}",
        "p_ce", "p_ce'", "dU_sim", "dU_eqn40"
    );
    let mut delta_rows = Table::new(vec!["p_ce", "p_ce_prime", "du_sim", "du_eqn40"]);
    for w in sim_utils.windows(2) {
        let (p_hi, u_hi) = w[0];
        let (p_lo, u_lo) = w[1];
        let du_sim = (u_hi - u_lo) * n; // fractional → bandwidth
        let du_th = utilization_loss(n, flow, p_lo, p_hi);
        println!("{p_lo:>9.1e} {p_hi:>9.1e} {du_sim:>12.2} {du_th:>12.2}");
        delta_rows.push(vec![p_lo, p_hi, du_sim, du_th]);
    }

    // The §3.1 special case and the peak-rate baseline for context.
    let alpha_q = mbac_num::inv_q(1e-3);
    let sqrt2_loss = mbac_core::theory::impulsive::utilization_loss_sqrt2(
        n,
        flow,
        mbac_core::params::QosTarget::new(1e-3),
    );
    let peak = paper::MEAN * (1.0 + 4.0 * paper::COV);
    let peak_util = (n / peak) * paper::MEAN / n;
    println!(
        "\ncontext: √2-adjustment loss (p_q=1e-3) = {sqrt2_loss:.1} bandwidth units \
         (α_q = {alpha_q:.2});"
    );
    println!(
        "peak-rate baseline utilization = {peak_util:.3} (vs ≥ {:.3} for every Gaussian row)",
        sim_utils.last().map(|&(_, u)| u).unwrap_or(0.0)
    );

    let p1 = write_csv("utilization", &table).expect("write CSV");
    let p2 = write_csv("utilization_delta", &delta_rows).expect("write CSV");
    println!("\nwrote {} and {}", p1.display(), p2.display());
    println!(
        "\nExpected shape: ΔU_sim ≈ ΔU_eqn40 row by row; utilization decreases as p_ce\n\
         tightens, all rows far above the peak-rate baseline."
    );
}
