//! Experiment `fig-7` — simulated overflow probability when the MBAC
//! runs with the *adjusted* target `p_ce` from Fig. 6.
//!
//! This is the validation loop of §5.2: invert eqn (38) for `p_ce` such
//! that the predicted `p_f` equals `p_q`, run the simulator at that
//! `p_ce`, and check the realized overflow probability.
//!
//! Paper-expected shape: the simulated `p_f` sits at or slightly below
//! `p_q = 1e-3` across the whole `T_m` range (slightly below because the
//! theory is conservative).

use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_experiments::scenarios::ContinuousScenario;
use mbac_experiments::{ascii_plot, budget, paper, parallel_map, write_csv, Table};

fn main() {
    let p_q = paper::P_Q;
    let n: f64 = 1000.0;
    let t_h = 1000.0;
    let t_c = paper::FIG5_T_C;
    let t_h_tilde = t_h / n.sqrt();
    let t_ms: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 31.6, 64.0];
    let max_samples = budget(30_000, 400);

    println!("== fig-7: simulated p_f with the adjusted p_ce of fig-6 ==");
    println!("n = {n}, T_h = {t_h} (T̃_h = {t_h_tilde:.1}), T_c = {t_c}, p_q = {p_q}\n");

    let rows = parallel_map(t_ms, |&t_m| {
        let model = ContinuousModel::new(paper::COV, t_h_tilde, t_c);
        let adjusted = invert_pce(&model, t_m, p_q, InvertMethod::Separated)
            .map(|a| a.p_ce)
            .unwrap_or(p_q)
            .max(1e-300);
        let sc = ContinuousScenario {
            n,
            t_h,
            t_c,
            t_m,
            p_ce: adjusted,
            p_q,
            max_samples,
            seed: 0x0F17 + (t_m * 64.0) as u64,
        };
        (t_m, adjusted, sc.run())
    });

    let mut table = Table::new(vec!["t_m", "pce_adjusted", "pf_sim", "target", "util"]);
    let mut s_sim = Vec::new();
    let mut s_target = Vec::new();
    println!(
        "{:>7} {:>13} {:>12} {:>9} {:>7} {:>14}",
        "T_m", "p_ce(adj)", "pf_sim", "target", "util", "method"
    );
    for (t_m, pce, rep) in rows {
        println!(
            "{:>7.1} {:>13.3e} {:>12.3e} {:>9.1e} {:>7.3} {:>14?}",
            t_m, pce, rep.pf.value, p_q, rep.mean_utilization, rep.pf.method
        );
        table.push(vec![t_m, pce, rep.pf.value, p_q, rep.mean_utilization]);
        s_sim.push((t_m, rep.pf.value));
        s_target.push((t_m, p_q));
    }
    let path = write_csv("fig7", &table).expect("write CSV");
    println!(
        "\n{}",
        ascii_plot(
            &[("pf simulated", &s_sim), ("p_q target", &s_target)],
            true,
            60,
            12
        )
    );
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: simulated p_f at or slightly below p_q = {p_q} for every T_m\n\
         (robust MBAC); utilization increases with T_m as the adjustment relaxes."
    );
}
