//! Experiment `fig-7` — simulated overflow probability when the MBAC
//! runs with the *adjusted* target `p_ce` from Fig. 6.
//!
//! This is the validation loop of §5.2: invert eqn (38) for `p_ce` such
//! that the predicted `p_f` equals `p_q`, run the simulator at that
//! `p_ce`, and check the realized overflow probability.
//!
//! Paper-expected shape: the simulated `p_f` sits at or slightly below
//! `p_q = 1e-3` across the whole `T_m` range (slightly below because the
//! theory is conservative).

use mbac_experiments::figures::{fig7_rows, fig7_table};
use mbac_experiments::{ascii_plot, budget, paper, write_csv};

fn main() {
    let p_q = paper::P_Q;
    let n: f64 = 1000.0;
    let t_h = 1000.0;
    let t_c = paper::FIG5_T_C;
    let t_h_tilde = t_h / n.sqrt();
    let max_samples = budget(30_000, 400);

    println!("== fig-7: simulated p_f with the adjusted p_ce of fig-6 ==");
    println!("n = {n}, T_h = {t_h} (T̃_h = {t_h_tilde:.1}), T_c = {t_c}, p_q = {p_q}\n");

    let rows = fig7_rows(max_samples);

    let mut s_sim = Vec::new();
    let mut s_target = Vec::new();
    println!(
        "{:>7} {:>13} {:>12} {:>9} {:>7} {:>14}",
        "T_m", "p_ce(adj)", "pf_sim", "target", "util", "method"
    );
    for r in &rows {
        println!(
            "{:>7.1} {:>13.3e} {:>12.3e} {:>9.1e} {:>7.3} {:>14?}",
            r.t_m,
            r.pce_adjusted,
            r.report.pf.value,
            p_q,
            r.report.mean_utilization,
            r.report.pf.method
        );
        s_sim.push((r.t_m, r.report.pf.value));
        s_target.push((r.t_m, p_q));
    }
    let path = write_csv("fig7", &fig7_table(&rows)).expect("write CSV");
    println!(
        "\n{}",
        ascii_plot(
            &[("pf simulated", &s_sim), ("p_q target", &s_target)],
            true,
            60,
            12
        )
    );
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: simulated p_f at or slightly below p_q = {p_q} for every T_m\n\
         (robust MBAC); utilization increases with T_m as the adjustment relaxes."
    );
}
