//! Experiment `fig-11` — long-range-dependent ("Starwars-like") traffic
//! under *memoryless* estimation: overflow probability vs `1/T̃_h`.
//!
//! The paper plays a piecewise-CBR MPEG-1 Starwars encoding; we use the
//! synthetic LRD trace of `mbac_traffic::starwars` (see DESIGN.md §4 for
//! the substitution argument). The holding time `T_h` is swept so that
//! `1/T̃_h` spans the x-axis.
//!
//! Paper-expected shape: for large `T̃_h` (small `1/T̃_h`, long calls)
//! the memoryless MBAC misses the target by 1–2 orders of magnitude;
//! performance improves as `T̃_h` shrinks (repair strengthens).

use mbac_experiments::figures::{fig11_rows, fig11_table, lrd_trace};
use mbac_experiments::{ascii_plot, budget, paper, write_csv};
use mbac_traffic::{hurst_rs, hurst_variance_time};

fn main() {
    let p_q = paper::P_Q;
    let n: f64 = 400.0;
    let trace = lrd_trace(1 << 16);
    let h_vt = hurst_variance_time(trace.rates());
    let h_rs = hurst_rs(trace.rates());
    let max_samples = budget(8_000, 200);

    println!("== fig-11: LRD trace, memoryless estimation (T_m = 0) ==");
    println!(
        "synthetic Starwars-like trace: {} slots, mean {:.3}, cov {:.3}, Hurst(vt) {:.2}, Hurst(R/S) {:.2}",
        trace.len(),
        trace.mean(),
        trace.variance().sqrt() / trace.mean(),
        h_vt,
        h_rs
    );
    println!("n = {n}, p_ce = p_q = {p_q}\n");

    let rows = fig11_rows(&trace, max_samples);

    let mut s_sim = Vec::new();
    println!(
        "{:>9} {:>10} {:>12} {:>9} {:>7} {:>14}",
        "T_h", "1/T̃_h", "pf_sim", "target", "util", "method"
    );
    for r in &rows {
        let x = 1.0 / r.t_h_tilde;
        println!(
            "{:>9.0} {:>10.4} {:>12.3e} {:>9.1e} {:>7.3} {:>14?}",
            r.t_h, x, r.report.pf.value, p_q, r.report.mean_utilization, r.report.pf.method
        );
        s_sim.push((x, r.report.pf.value));
    }
    let target_line: Vec<(f64, f64)> = s_sim.iter().map(|&(x, _)| (x, p_q)).collect();
    let path = write_csv("fig11", &fig11_table(&rows)).expect("write CSV");
    println!(
        "\n{}",
        ascii_plot(
            &[("pf memoryless", &s_sim), ("p_q target", &target_line)],
            true,
            60,
            12
        )
    );
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: p_f well above p_q = {p_q} (1–2 orders) at small 1/T̃_h,\n\
         falling toward/below the target as 1/T̃_h grows — memoryless estimation is\n\
         not robust for long-holding-time LRD traffic."
    );
}
