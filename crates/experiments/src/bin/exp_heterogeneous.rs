//! Experiment `§5.4` — heterogeneous flows: the naive variance
//! estimator's bias and its consequence (conservative but robust MBAC).
//!
//! Two flow classes with different means share the link. The paper
//! (§5.4) shows the unclassified variance estimator of eqn (7) is biased
//! upward by the between-class mean spread, so the MBAC admits fewer
//! flows than necessary — conservative, never unsafe. With per-class
//! estimation the bias disappears.
//!
//! Paper-expected shape: naive variance ≈ within-class variance +
//! between-class bias (quantified by `naive_variance_bias`); naive
//! admission count < classified admission count; overflow stays ≤ target
//! for both.

use mbac_core::admission::{gaussian_admissible_count, AggregateGaussian};
use mbac_core::estimators::heterogeneous::{naive_variance_bias, ClassifiedEstimator};
use mbac_core::estimators::snapshot_stats;
use mbac_core::params::{FlowStats, QosTarget};
use mbac_experiments::{budget, write_csv, Table};
use mbac_num::RunningStats;
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Class 0: audio-like (mean 1, sd 0.3); class 1: video-like
    // (mean 4, sd 1.2). Equal populations.
    let c0 = RcbrModel::new(RcbrConfig {
        mean: 1.0,
        std_dev: 0.3,
        t_c: 1.0,
        truncate_at_zero: true,
    });
    let c1 = RcbrModel::new(RcbrConfig {
        mean: 4.0,
        std_dev: 1.2,
        t_c: 1.0,
        truncate_at_zero: true,
    });
    let per_class = 200usize;
    let p_q = 1e-3;
    let capacity = 600.0;
    let snapshots = budget(20_000, 2_000);

    let mut rng = StdRng::seed_from_u64(0x0E54);
    let mut flows: Vec<(usize, Box<dyn mbac_traffic::process::RateProcess>)> = Vec::new();
    for _ in 0..per_class {
        flows.push((0, c0.spawn(&mut rng)));
        flows.push((1, c1.spawn(&mut rng)));
    }

    let mut naive_var = RunningStats::new();
    let mut naive_mean = RunningStats::new();
    let mut classified = ClassifiedEstimator::new(2, 0.0);
    let mut class_var = [RunningStats::new(), RunningStats::new()];
    let dt = 0.5;
    for k in 0..snapshots {
        let t = k as f64 * dt;
        for (_, f) in &mut flows {
            f.advance(dt, &mut rng);
        }
        let rates: Vec<f64> = flows.iter().map(|(_, f)| f.rate()).collect();
        let snap = snapshot_stats(&rates).unwrap();
        naive_var.push(snap.variance);
        naive_mean.push(snap.mean);
        let labeled: Vec<(usize, f64)> = flows.iter().map(|(c, f)| (*c, f.rate())).collect();
        classified.observe(t, &labeled);
        for (cls, cv) in class_var.iter_mut().enumerate() {
            cv.push(classified.estimate_class(cls).unwrap().variance);
        }
    }

    let within = 0.5 * (c0.variance() + c1.variance());
    let bias = naive_variance_bias(&[c0.mean(), c1.mean()], &[0.5, 0.5]);
    println!("== §5.4: heterogeneous flows, variance-estimator bias ==\n");
    println!("true within-class variance (pooled): {within:.4}");
    println!("predicted naive bias (between-class): {bias:.4}");
    println!("predicted naive variance:             {:.4}", within + bias);
    println!(
        "measured naive variance:              {:.4}",
        naive_var.mean()
    );
    println!(
        "measured per-class variances:         {:.4} / {:.4} (true {:.4} / {:.4})",
        class_var[0].mean(),
        class_var[1].mean(),
        c0.variance(),
        c1.variance()
    );

    // Admission consequence: flows admitted under each estimator.
    let alpha = QosTarget::new(p_q).alpha();
    let m_naive =
        gaussian_admissible_count(naive_mean.mean(), naive_var.mean().sqrt(), alpha, capacity);
    // Classified: aggregate Gaussian test filling with alternating classes.
    let agg = classified.aggregate();
    let ctl = AggregateGaussian::new(QosTarget::new(p_q));
    let mut m_classified = 0usize;
    let mut virt = mbac_core::estimators::heterogeneous::AggregateEstimate::default();
    loop {
        let cls: &dyn SourceModel = if m_classified.is_multiple_of(2) {
            &c0
        } else {
            &c1
        };
        let cand = FlowStats::new(cls.mean(), cls.variance());
        if !ctl.admit(virt, cand, capacity) {
            break;
        }
        virt.mean += cand.mean;
        virt.variance += cand.variance;
        virt.flows += 1;
        m_classified += 1;
    }
    println!("\nadmission with capacity {capacity}, p_q = {p_q}:");
    println!("  naive (unclassified) admissible flows: {m_naive:.1}");
    println!("  per-class admissible flows:            {m_classified}");
    println!("  (naive < classified ⇒ conservative, as §5.4 predicts)");
    println!(
        "  aggregate measured mean/var: {:.1} / {:.1}",
        agg.mean, agg.variance
    );

    let mut table = Table::new(vec![
        "within_var",
        "bias_pred",
        "naive_var_pred",
        "naive_var_meas",
        "m_naive",
        "m_classified",
    ]);
    table.push(vec![
        within,
        bias,
        within + bias,
        naive_var.mean(),
        m_naive,
        m_classified as f64,
    ]);
    let path = write_csv("heterogeneous", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: measured naive variance ≈ within + bias (bias dominates);\n\
         naive admissible count strictly below the per-class count."
    );
}
