//! Experiment `§7-aggregate` — MBAC from aggregate measurements only
//! (the paper's second future-work item, implemented).
//!
//! §7: "using only aggregate measurement does not affect the mean
//! estimator, \[but\] the accuracy of the variance estimator is hampered
//! without per-flow information." We run the same robust controller
//! twice — once fed per-flow snapshots, once fed only `(count, sum)` —
//! and once more with the aggregate estimator's window deliberately too
//! short to learn the temporal variance.
//!
//! Expected shape: the aggregate-only controller with an adequate window
//! tracks the per-flow one closely (same p_f ballpark, slightly noisier
//! variance ⇒ slightly different utilization); with a too-short window
//! its variance estimate collapses toward zero and the controller
//! over-admits — the quantitative content of the §7 caveat.

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::{AggregateOnlyEstimator, Estimator, FilteredEstimator};
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_experiments::{budget, paper, parallel_map, write_csv, Table};
use mbac_sim::{ContinuousConfig, ContinuousLoad, MbacController, SessionBuilder};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

fn main() {
    let n: f64 = 400.0;
    let t_h = 1000.0;
    let t_c = 1.0;
    let p_q = 1e-2;
    let t_h_tilde = t_h / n.sqrt();
    let max_samples = budget(12_000, 400);

    let theory = ContinuousModel::new(paper::COV, t_h_tilde, t_c);
    let p_ce = invert_pce(&theory, t_h_tilde, p_q, InvertMethod::Separated)
        .map(|a| a.p_ce)
        .unwrap_or(p_q)
        .max(1e-300);

    println!("== §7: aggregate-only measurement vs per-flow measurement ==");
    println!("n = {n}, T_h = {t_h} (T̃_h = {t_h_tilde:.1}), T_c = {t_c}, p_q = {p_q}, p_ce = {p_ce:.2e}\n");

    let cases: Vec<(&'static str, f64, bool)> = vec![
        // (label, estimator window, aggregate-only?)
        ("per-flow,  T_m = T̃_h", t_h_tilde, false),
        ("aggregate, T_m = T̃_h", t_h_tilde, true),
        ("aggregate, T_m = T̃_h/8", t_h_tilde / 8.0, true),
    ];

    let reports = parallel_map(cases, |&(label, t_m, aggregate_only)| {
        let estimator: Box<dyn Estimator + Send> = if aggregate_only {
            Box::new(AggregateOnlyEstimator::new(t_m))
        } else {
            Box::new(FilteredEstimator::new(t_m))
        };
        let mut ctl = MbacController::new(
            estimator,
            Box::new(CertaintyEquivalent::from_probability(p_ce)),
        );
        let model = RcbrModel::new(RcbrConfig::paper_default(t_c));
        let cfg = ContinuousConfig {
            capacity: n,
            mean_holding: t_h,
            tick: 0.25,
            warmup: 12.0 * t_h_tilde,
            sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_m, t_c),
            target: p_q,
            max_samples,
            seed: 0xA99,
        };
        let rep = SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
            .expect("valid aggregate config");
        (label, rep)
    });

    let mut table = Table::new(vec!["case", "pf_sim", "target", "util", "mean_flows"]);
    println!(
        "{:<24} {:>12} {:>9} {:>7} {:>11} {:>14}",
        "measurement", "pf_sim", "target", "util", "mean_flows", "method"
    );
    for (i, (label, rep)) in reports.iter().enumerate() {
        println!(
            "{:<24} {:>12.3e} {:>9.1e} {:>7.3} {:>11.1} {:>14?}",
            label, rep.pf.value, p_q, rep.mean_utilization, rep.mean_flows, rep.pf.method
        );
        table.push(vec![
            i as f64,
            rep.pf.value,
            p_q,
            rep.mean_utilization,
            rep.mean_flows,
        ]);
    }
    let path = write_csv("aggregate_measurement", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: rows 1 and 2 agree (mean estimation is unaffected, and with an\n\
         adequate window the temporal variance estimate suffices); row 3 over-admits\n\
         (higher utilization, higher p_f) because a short window cannot learn the\n\
         aggregate's variance — the §7 caveat quantified."
    );
}
