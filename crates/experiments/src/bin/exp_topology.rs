//! Experiment `topology` — multi-hop composition of the robust memory
//! rule: worst-link overflow probability vs `T_m/T̃_h` on the
//! parking-lot(3) and star(4) topologies.
//!
//! Setting: every link at `n = 16` mean-rate units, RCBR sources
//! (σ/μ = 0.3, `T_c = 1`), `T_h = 10` (`T̃_h = 2.5`), per-hop
//! certainty-equivalent targets at `p_ce = 1e-2`, closed-loop admission
//! pressure on every route. Routes admit only when every hop accepts —
//! the two-phase path admission of `mbac_core::topology`.
//!
//! Expected shape: the fig-5 knee reappears at the network level —
//! `max_pf` drops steeply as memory grows toward the critical
//! time-scale and flattens past `T_m ≈ T̃_h`, on *both* shapes. The
//! long parking-lot route blocks more than the single-hop cross
//! traffic at every memory (it must win all three hops), and the star
//! hub is each shape's binding link.

use mbac_experiments::topology::{
    topology_rows, topology_table, TOPOLOGY_N, TOPOLOGY_P_CE, TOPOLOGY_T_H,
};
use mbac_experiments::{ascii_plot, budget, write_csv};

fn main() {
    let t_h_tilde = TOPOLOGY_T_H / TOPOLOGY_N.sqrt();
    let ticks = budget(8000, 400);

    println!("== topology: worst-link p_f vs T_m/T~h under multi-hop composition ==");
    println!(
        "n = {TOPOLOGY_N} per link, T_h = {TOPOLOGY_T_H} (T~h = {t_h_tilde:.2}), \
         p_ce = {TOPOLOGY_P_CE}, {ticks} ticks x 4 replications\n"
    );

    let rows = topology_rows(ticks);

    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    println!(
        "{:>14} {:>8} {:>7} {:>12} {:>9} {:>11} {:>11}",
        "topology", "Tm/T~h", "T_m", "max_pf", "util", "long_block", "cross_block"
    );
    for r in &rows {
        println!(
            "{:>14} {:>8.2} {:>7.2} {:>12.3e} {:>9.3} {:>11.3} {:>11.3}",
            r.topo_name,
            r.t_m_ratio,
            r.t_m,
            r.report.max_pf(),
            r.mean_utilization(),
            r.long_route_block(),
            r.other_routes_block()
        );
        match series.iter_mut().find(|(name, _)| *name == r.topo_name) {
            Some((_, s)) => s.push((r.t_m_ratio, r.report.max_pf())),
            None => series.push((r.topo_name, vec![(r.t_m_ratio, r.report.max_pf())])),
        }
    }

    let path = write_csv("topology", &topology_table(&rows)).expect("write CSV");
    let plot: Vec<(&str, &[(f64, f64)])> = series
        .iter()
        .map(|(name, s)| (*name, s.as_slice()))
        .collect();
    println!("\n{}", ascii_plot(&plot, true, 60, 16));
    println!("wrote {}", path.display());
    println!(
        "\nExpected shape: both curves fall steeply to a knee near \
         T_m/T~h = 1 and flatten beyond — the single-link robust rule,\n\
         applied per hop, still controls the worst link. The long \
         parking-lot route blocks hardest (it needs all three hops);\n\
         the star's binding link is the shared hub."
    );
}
