//! Experiment `prop-3.3` — the certainty-equivalence √2 penalty.
//!
//! Reproduces the headline analytical result of §3.1 (Prop. 3.3, the
//! quantitative content behind Fig. 1): in the impulsive-load model the
//! memoryless certainty-equivalent MBAC realizes
//!
//! `p_f = Q(Q⁻¹(p_q)/√2)`   —   NOT `p_q`,
//!
//! universally in the flow distribution and the system size, while the
//! perfect-knowledge controller realizes exactly `p_q`. Also verifies
//! the eqn (15) fix (`p_ce = Q(√2 α_q)` restores `p_f = p_q`) and the
//! Prop. 3.1 fluctuation law for `M₀`.
//!
//! Paper-expected shape: simulated `p_f` for the CE controller tracks
//! the √2 curve across sizes and distributions; for `p_q = 1e-5` the
//! penalty is two orders of magnitude.

use mbac_core::admission::{CertaintyEquivalent, PerfectKnowledge};
use mbac_core::params::{FlowStats, QosTarget};
use mbac_core::theory::impulsive;
use mbac_experiments::{budget, parallel_map, write_csv, Table};
use mbac_sim::{ImpulsiveConfig, ImpulsiveLoad, SessionBuilder};
use mbac_traffic::marginal::Marginal;
use mbac_traffic::markov::{MarkovFluidFactory, MarkovFluidModel};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{GeneralRcbrModel, RcbrConfig, RcbrModel};

struct Case {
    label: &'static str,
    n: usize,
    p_q: f64,
    model: Box<dyn SourceModel>,
    /// Run with the √2-adjusted target instead of the raw one.
    adjusted: bool,
}

fn rcbr(n: usize, p_q: f64, adjusted: bool) -> Case {
    Case {
        label: "rcbr-gaussian",
        n,
        p_q,
        model: Box::new(RcbrModel::new(RcbrConfig::paper_default(1.0))),
        adjusted,
    }
}

fn with_marginal(
    label: &'static str,
    marginal: Marginal,
    n: usize,
    p_q: f64,
    adjusted: bool,
) -> Case {
    Case {
        label,
        n,
        p_q,
        model: Box::new(GeneralRcbrModel::new(marginal, 1.0)),
        adjusted,
    }
}

fn onoff(n: usize, p_q: f64, adjusted: bool) -> Case {
    // Two-point marginal with the same σ/μ… not exactly 0.3, but the
    // universality claim is that the marginal does not matter at all.
    Case {
        label: "onoff-two-point",
        n,
        p_q,
        model: Box::new(MarkovFluidFactory::new(MarkovFluidModel::on_off(
            2.0, 3.0, 1.0,
        ))),
        adjusted,
    }
}

fn main() {
    let reps = budget(60_000, 4_000) as usize;
    let p_q = 0.01; // large enough to resolve by direct simulation
                    // Universality sweep: same (μ, σ, T_c), four marginal shapes,
                    // three system sizes, plus the adjusted-target checks.
    let cases = vec![
        rcbr(100, p_q, false),
        rcbr(400, p_q, false),
        rcbr(1600, p_q, false),
        with_marginal(
            "rcbr-uniform",
            Marginal::uniform_with_moments(1.0, 0.3),
            400,
            p_q,
            false,
        ),
        with_marginal(
            "rcbr-two-point",
            Marginal::two_point_with_moments(1.0, 0.3),
            400,
            p_q,
            false,
        ),
        with_marginal(
            "rcbr-lognormal",
            Marginal::lognormal_with_moments(1.0, 0.3),
            400,
            p_q,
            false,
        ),
        onoff(400, p_q, false),
        rcbr(400, p_q, true),
        onoff(400, p_q, true),
    ];

    println!("== prop-3.3: certainty-equivalence penalty (impulsive load) ==\n");
    println!(
        "target p_q = {p_q}; Prop 3.3 prediction p_f = Q(a_q/sqrt2) = {:.4}; eqn (15) p_ce = {:.3e}\n",
        impulsive::pf_certainty_equivalent(p_q),
        impulsive::pce_for_target(p_q),
    );

    let rows = parallel_map(cases, |case| {
        let flow = FlowStats::new(case.model.mean(), case.model.variance());
        let target = if case.adjusted {
            QosTarget::new(impulsive::pce_for_target(case.p_q))
        } else {
            QosTarget::new(case.p_q)
        };
        let ce = CertaintyEquivalent::new(target);
        let cfg = ImpulsiveConfig {
            capacity: case.n as f64 * flow.mean,
            estimation_flows: case.n,
            mean_holding: None,
            observe_times: vec![50.0], // ≫ T_c: steady state
            replications: reps,
            seed: 0xA110C + case.n as u64 + case.adjusted as u64,
        };
        let rep = SessionBuilder::new()
            .run(&ImpulsiveLoad::new(&cfg, case.model.as_ref(), &ce))
            .expect("valid prop33 config");
        let pf_ce = rep.pf_at(0);
        // Perfect-knowledge baseline on the same workload.
        let pk = PerfectKnowledge::new(flow, QosTarget::new(case.p_q));
        let rep_pk = SessionBuilder::new()
            .run(&ImpulsiveLoad::new(&cfg, case.model.as_ref(), &pk))
            .expect("valid prop33 config");
        let pf_pk = rep_pk.pf_at(0);
        // M0 fluctuation check (Prop 3.1): sd ≈ (σ/μ)√n.
        let m0_sd_pred = flow.cov() * (case.n as f64).sqrt();
        (
            case.label,
            case.n,
            case.adjusted,
            pf_ce,
            pf_pk,
            rep.m0.std_dev(),
            m0_sd_pred,
        )
    });

    let mut table = Table::new(vec![
        "n",
        "adjusted",
        "pf_ce_sim",
        "pf_ce_theory",
        "pf_pk_sim",
        "pf_target",
        "m0_sd_sim",
        "m0_sd_theory",
    ]);
    println!(
        "{:<16} {:>6} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "distribution",
        "n",
        "adjusted",
        "pf_ce_sim",
        "pf_theory",
        "pf_pk_sim",
        "target",
        "m0_sd",
        "m0_sd_th"
    );
    for (label, n, adjusted, pf_ce, pf_pk, m0_sd, m0_sd_pred) in rows {
        let theory = if adjusted {
            p_q // adjusted target should restore pf = p_q
        } else {
            impulsive::pf_certainty_equivalent(p_q)
        };
        println!(
            "{:<16} {:>6} {:>9} {:>10.5} {:>10.5} {:>10.5} {:>10.5} {:>9.2} {:>9.2}",
            label, n, adjusted, pf_ce, theory, pf_pk, p_q, m0_sd, m0_sd_pred
        );
        table.push(vec![
            n as f64,
            adjusted as u8 as f64,
            pf_ce,
            theory,
            pf_pk,
            p_q,
            m0_sd,
            m0_sd_pred,
        ]);
    }
    let path = write_csv("prop33", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: pf_ce_sim ≈ pf_theory ≫ target for unadjusted rows (independent of n\n\
         and distribution); pf_ce_sim ≈ target for adjusted rows; pf_pk_sim ≈ target throughout."
    );
}
