//! Experiment `fig-10` — simulated overflow probability over the same
//! `(T_m/T̃_h, T_c)` grid as Fig. 9 (RCBR sources, continuous load).
//!
//! Paper-expected shape: same as Fig. 9 — non-robust for small memory,
//! robust once `T_m` is a significant fraction of `T̃_h` — with the
//! simulated surface sitting somewhat below the (conservative) theory.

use mbac_experiments::figures::{fig10_rows, fig10_table, FIG10_T_CS};
use mbac_experiments::{budget, paper, write_csv};

fn main() {
    let p_ce = paper::P_Q;
    let n: f64 = 400.0; // smaller than fig-9's nominal size to keep sim cost sane
    let t_h = 400.0 * 31.6 / 20.0; // chosen so T̃_h = 31.6 matches fig-9
    let t_h_tilde = t_h / n.sqrt();
    let max_samples = budget(8_000, 200);

    println!("== fig-10: simulated p_f over the (T_m/T̃_h, T_c) grid ==");
    println!("n = {n}, T_h = {t_h:.0} (T̃_h = {t_h_tilde:.1}), p_ce = {p_ce}\n");

    let rows = fig10_rows(max_samples);

    print!("{:>14} |", "T_m/T̃_h \\ T_c");
    for &t_c in &FIG10_T_CS {
        print!(" {t_c:>9.2}");
    }
    println!();
    println!("{}", "-".repeat(16 + 10 * FIG10_T_CS.len()));
    for chunk in rows.chunks(FIG10_T_CS.len()) {
        print!("{:>14.2} |", chunk[0].ratio);
        for r in chunk {
            print!(" {:>9.2e}", r.report.pf.value);
        }
        println!();
    }

    let path = write_csv("fig10", &fig10_table(&rows)).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: mirrors fig-9 — the top row misses the target {p_ce} by 1–2\n\
         orders around T_c ≈ 0.3–3, the bottom rows (T_m ≳ 0.5·T̃_h) meet it across\n\
         the whole T_c range; values sit at or below the fig-9 theory surface."
    );
}
