//! Experiment `fig-10` — simulated overflow probability over the same
//! `(T_m/T̃_h, T_c)` grid as Fig. 9 (RCBR sources, continuous load).
//!
//! Paper-expected shape: same as Fig. 9 — non-robust for small memory,
//! robust once `T_m` is a significant fraction of `T̃_h` — with the
//! simulated surface sitting somewhat below the (conservative) theory.

use mbac_experiments::scenarios::ContinuousScenario;
use mbac_experiments::{budget, paper, parallel_map, write_csv, Table};

fn main() {
    let p_ce = paper::P_Q;
    let n: f64 = 400.0; // smaller than fig-9's nominal size to keep sim cost sane
    let t_h = 400.0 * 31.6 / 20.0; // chosen so T̃_h = 31.6 matches fig-9
    let t_h_tilde = t_h / n.sqrt();
    let ratios: Vec<f64> = vec![0.01, 0.1, 0.5, 1.0];
    let t_cs: Vec<f64> = vec![0.1, 0.3, 1.0, 3.0, 10.0];
    let max_samples = budget(8_000, 200);

    println!("== fig-10: simulated p_f over the (T_m/T̃_h, T_c) grid ==");
    println!("n = {n}, T_h = {t_h:.0} (T̃_h = {t_h_tilde:.1}), p_ce = {p_ce}\n");

    let mut points = Vec::new();
    for &r in &ratios {
        for &t_c in &t_cs {
            points.push((r, t_c));
        }
    }
    let results = parallel_map(points, |&(r, t_c)| {
        let sc = ContinuousScenario {
            n,
            t_h,
            t_c,
            t_m: r * t_h_tilde,
            p_ce,
            p_q: p_ce,
            max_samples,
            seed: 0x0F20 + (r * 1000.0) as u64 + (t_c * 17.0) as u64,
        };
        (r, t_c, sc.run())
    });

    let mut table = Table::new(vec!["tm_over_thtilde", "t_c", "pf_sim", "util"]);
    print!("{:>14} |", "T_m/T̃_h \\ T_c");
    for &t_c in &t_cs {
        print!(" {t_c:>9.2}");
    }
    println!();
    println!("{}", "-".repeat(16 + 10 * t_cs.len()));
    let mut idx = 0;
    for &r in &ratios {
        print!("{r:>14.2} |");
        for _ in &t_cs {
            let (rr, t_c, ref rep) = results[idx];
            debug_assert_eq!(rr, r);
            print!(" {:>9.2e}", rep.pf.value);
            table.push(vec![r, t_c, rep.pf.value, rep.mean_utilization]);
            idx += 1;
        }
        println!();
    }

    let path = write_csv("fig10", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: mirrors fig-9 — the top row misses the target {p_ce} by 1–2\n\
         orders around T_c ≈ 0.3–3, the bottom rows (T_m ≳ 0.5·T̃_h) meet it across\n\
         the whole T_c range; values sit at or below the fig-9 theory surface."
    );
}
