//! Experiment `§7-utility` — utility-based QoS for adaptive
//! applications (the paper's first future-work item, implemented).
//!
//! Question from §7: how much does application adaptivity change the
//! admission problem? We size the link three ways — for the hard
//! (overflow-probability) metric, for a quality-floor adaptive utility,
//! and for an elastic utility — all at the same expected-utility-loss
//! budget ε, then verify each sizing by simulation with RCBR sources
//! and a utility meter.
//!
//! Expected shape: at equal ε the elastic sizing admits visibly more
//! flows than the hard sizing (the inelastic metric wastes capacity on
//! applications that could absorb partial shares); simulated losses
//! match the theory sizing for each utility.

use mbac_core::admission::AdmissionPolicy;
use mbac_core::estimators::Estimate;
use mbac_core::params::FlowStats;
use mbac_core::utility::{admissible_flows_utility, expected_utility_loss, UtilityFunction};
use mbac_experiments::{budget, parallel_map, write_csv, Table};
use mbac_sim::{ContinuousConfig, ContinuousLoad, MbacController, SessionBuilder, UtilityMeter};
use mbac_traffic::process::{RateProcess, SourceModel};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A policy that admits a fixed number of flows (the theory sizing).
struct FixedCount(f64);

impl AdmissionPolicy for FixedCount {
    fn admissible_count(&self, _est: Estimate, _capacity: f64) -> f64 {
        self.0
    }
}

fn main() {
    let capacity: f64 = 400.0;
    let flow = FlowStats::from_mean_sd(1.0, 0.3);
    let eps = 1e-2;
    let t_c = 1.0;
    let samples = budget(6_000, 400);
    let utilities: Vec<(&'static str, UtilityFunction)> = vec![
        ("hard (overflow)", UtilityFunction::Hard),
        (
            "adaptive floor 0.9",
            UtilityFunction::Adaptive { min_share: 0.9 },
        ),
        (
            "adaptive floor 0.5",
            UtilityFunction::Adaptive { min_share: 0.5 },
        ),
        ("elastic sqrt", UtilityFunction::Elastic { exponent: 0.5 }),
    ];

    println!("== §7: utility-based admission for adaptive applications ==");
    println!("capacity = {capacity}, flows ~ (1.0, 0.3), loss budget ε = {eps}\n");

    let rows = parallel_map(utilities, |&(label, u)| {
        // Theory sizing: the largest m with expected loss ≤ ε.
        let m = admissible_flows_utility(flow, capacity, eps, u);
        let predicted =
            expected_utility_loss(m * flow.mean, (m * flow.variance).sqrt(), capacity, u);
        // Verify by simulation: hold exactly ⌊m⌋ flows and meter the
        // realized utility.
        let model = RcbrModel::new(RcbrConfig::paper_default(t_c));
        let mut rng = StdRng::seed_from_u64(0x07EC + m as u64);
        let mut flows: Vec<Box<dyn RateProcess>> = (0..m.floor() as usize)
            .map(|_| model.spawn(&mut rng))
            .collect();
        let mut meter = UtilityMeter::new(capacity, u);
        let spacing = 2.0 * t_c;
        for _ in 0..samples {
            for f in &mut flows {
                f.advance(spacing, &mut rng);
            }
            meter.record(flows.iter().map(|f| f.rate()).sum());
        }
        (label, u, m, predicted, meter.mean_loss())
    });

    let mut table = Table::new(vec![
        "case",
        "flows",
        "loss_theory",
        "loss_sim",
        "utilization",
    ]);
    println!(
        "{:<20} {:>8} {:>12} {:>12} {:>12}",
        "utility", "flows", "loss_theory", "loss_sim", "utilization"
    );
    let mut base_flows = None;
    for (i, (label, _u, m, predicted, simulated)) in rows.iter().enumerate() {
        let util = m * flow.mean / capacity;
        println!(
            "{:<20} {:>8.1} {:>12.3e} {:>12.3e} {:>11.1}%",
            label,
            m,
            predicted,
            simulated,
            100.0 * util
        );
        table.push(vec![i as f64, *m, *predicted, *simulated, util]);
        if i == 0 {
            base_flows = Some(*m);
        }
    }
    if let Some(base) = base_flows {
        let best = rows.last().unwrap().2;
        println!(
            "\nadaptivity dividend: {:.1} extra flows ({:.1}%) at the same ε when the\n\
             application can absorb partial bandwidth (elastic vs hard metric).",
            best - base,
            100.0 * (best - base) / base
        );
    }
    // Also exercise the dynamic path: a full continuous-load run sized
    // by the elastic metric, with the MBAC in the loop.
    let m_elastic = admissible_flows_utility(
        flow,
        capacity,
        eps,
        UtilityFunction::Elastic { exponent: 0.5 },
    );
    let mut ctl = MbacController::new(
        Box::new(mbac_core::estimators::FilteredEstimator::new(10.0)),
        Box::new(FixedCount(m_elastic)),
    );
    let model = RcbrModel::new(RcbrConfig::paper_default(t_c));
    let cfg = ContinuousConfig {
        capacity,
        mean_holding: 200.0,
        tick: 0.25,
        warmup: 100.0,
        sample_spacing: 20.0,
        target: eps,
        max_samples: samples.min(2_000),
        seed: 0x07ED,
    };
    let rep = SessionBuilder::new()
        .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
        .expect("valid utility config");
    println!(
        "\ndynamic check (flows churn, MBAC holds N ≈ {m_elastic:.0}): mean flows {:.1}, \
         overflow p_f = {:.2e} (would MISS a hard ε = {eps:.0e} target — by design)",
        rep.mean_flows, rep.pf.value
    );

    let path = write_csv("utility", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: flows(hard) < flows(floor 0.9) < flows(floor 0.5) <\n\
         flows(elastic); loss_sim ≈ loss_theory ≈ ε for every row."
    );
}
