//! Experiment `§2-adaptivity` — non-stationary traffic and the memory
//! window (extension).
//!
//! The paper's §2 scopes its results to traffic "stationary within the
//! memory time-scale", and §5.3's window rule implicitly promises
//! adaptivity: `T_m = T̃_h` tracks slow statistical drift while
//! smoothing fast noise. This experiment tests that promise: halfway
//! through the run the *population* changes — newly arriving flows are
//! 67% burstier (σ jumps 0.3 → 0.5) — and we compare three memory
//! settings on the post-shift phase.
//!
//! Expected shape: the memoryless controller is (as always) unsafe in
//! both phases; `T_m = T̃_h` re-converges within the critical time-scale
//! and holds the target in phase 2; `T_m = 20·T̃_h` averages across the
//! shift and misses in phase 2 — too much memory destroys adaptivity,
//! which is *why* the rule is an equality rather than a lower bound.

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_experiments::{budget, parallel_map, write_csv, Table};
use mbac_sim::{ContinuousConfig, MbacController, PhasedLoad, SessionBuilder};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

fn main() {
    let n: f64 = 400.0;
    let t_h = 1000.0;
    let t_c = 1.0;
    let p_q = 1e-2;
    let t_h_tilde = t_h / n.sqrt();
    // Spaced samples per replication (6 replications per case). The
    // quick floor is high: the transition phase needs real samples.
    let samples_per_run = budget(1_500, 250);

    // Phase 1: the paper's σ/μ = 0.3 flows; phase 2: new arrivals are
    // burstier (σ/μ = 0.5).
    let calm = RcbrModel::new(RcbrConfig {
        mean: 1.0,
        std_dev: 0.3,
        t_c,
        truncate_at_zero: true,
    });
    let wild = RcbrModel::new(RcbrConfig {
        mean: 1.0,
        std_dev: 0.5,
        t_c,
        truncate_at_zero: true,
    });

    // Adjusted target from the *phase-1* statistics (the operator
    // designed before the shift — that is the point).
    let theory = ContinuousModel::new(0.3, t_h_tilde, t_c);
    let p_ce = invert_pce(&theory, t_h_tilde, p_q, InvertMethod::Separated)
        .map(|a| a.p_ce)
        .unwrap_or(p_q)
        .max(1e-300);

    println!("== §2 adaptivity: population shift (σ 0.3 → 0.5) mid-run ==");
    println!("n = {n}, T̃_h = {t_h_tilde:.1}, p_q = {p_q}, design p_ce = {p_ce:.2e}\n");

    let cases: Vec<(&'static str, f64)> = vec![
        ("memoryless", 0.0),
        ("T_m = T̃_h (rule)", t_h_tilde),
        ("T_m = 20·T̃_h", 20.0 * t_h_tilde),
    ];
    let replications = 6u64;
    let reports = parallel_map(cases, |&(label, t_m)| {
        // Average per-phase results over seed replications: the
        // transition window is short, so single-run estimates there are
        // too noisy on their own.
        let mut acc: Vec<(f64, f64, u64)> = vec![(0.0, 0.0, 0); 3];
        // Warm-up must exceed both the estimator's own memory and the
        // occupancy relaxation (several T̃_h), or the controller is
        // judged on its cold start rather than on the shift.
        let warmup = (30.0 * t_h_tilde).max(3.0 * t_m);
        let switch_at = warmup + 30.0 * t_h_tilde;
        for r in 0..replications {
            let mut ctl = MbacController::new(
                Box::new(FilteredEstimator::new(t_m)),
                Box::new(CertaintyEquivalent::from_probability(p_ce)),
            );
            let cfg = ContinuousConfig {
                capacity: n,
                mean_holding: t_h,
                tick: 0.25,
                warmup,
                // Dense sampling: we compare phases within one run, so
                // sample correlation biases all phases alike.
                sample_spacing: t_h_tilde / 2.0,
                target: p_q,
                max_samples: samples_per_run,
                seed: 0x2A0A + r,
            };
            // Three measurement phases: calm, the transition window
            // right after the shift (where a sluggish estimator hurts
            // most), and the new steady state.
            let phases: Vec<(f64, &dyn SourceModel)> = vec![
                (0.0, &calm),
                (switch_at, &wild),
                (switch_at + 10.0 * t_h_tilde, &wild),
            ];
            let reports = SessionBuilder::new()
                .run_local(&PhasedLoad::new(&cfg, &phases, &mut ctl))
                .expect("valid phased config");
            for p in reports {
                let slot = &mut acc[p.phase];
                slot.0 += p.pf.value;
                slot.1 += p.mean_utilization;
                slot.2 += p.pf.samples;
            }
        }
        let averaged: Vec<(usize, f64, f64, u64)> = acc
            .into_iter()
            .enumerate()
            .map(|(i, (pf, util, samples))| {
                (
                    i,
                    pf / replications as f64,
                    util / replications as f64,
                    samples,
                )
            })
            .collect();
        (label, averaged)
    });

    let mut table = Table::new(vec!["case", "phase", "pf_sim", "target", "util"]);
    println!(
        "{:<18} {:>7} {:>12} {:>9} {:>7} {:>9}",
        "controller", "phase", "pf_sim", "target", "util", "samples"
    );
    const PHASE_NAMES: [&str; 3] = ["calm", "transit", "steady"];
    for (ci, (label, phases)) in reports.iter().enumerate() {
        for &(phase, pf, util, samples) in phases {
            println!(
                "{:<18} {:>7} {:>12.3e} {:>9.1e} {:>7.3} {:>9}",
                label, PHASE_NAMES[phase], pf, p_q, util, samples
            );
            table.push(vec![ci as f64, phase as f64, pf, p_q, util]);
        }
    }
    let path = write_csv("nonstationary", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: memoryless misses everywhere (the usual fluctuation problem);\n\
         T_m = T̃_h meets the target in the transition *and* the new steady state —\n\
         it re-learns within the critical time-scale; T_m = 20·T̃_h misses in the\n\
         transition (it averages across the shift) and is sluggish even in the calm\n\
         phase. Too much memory destroys adaptivity: the rule is an equality."
    );
}
