//! Experiment `ablation-kernel` — does the *shape* of the memory kernel
//! matter, or only its time-scale?
//!
//! The paper analyzes the exponential (first-order auto-regressive)
//! kernel; Jamin et al.'s measurement window is rectangular. DESIGN.md
//! calls this ablation out: we run the continuous-load workload with
//! the exponential kernel at `T_m` against the rectangular window at
//! `T_w = 2·T_m` (equal mean sample age) across a range of memory
//! scales.
//!
//! Expected shape: the two kernels track each other closely at equal
//! mean age — the robustness story is about the *time-scale*, not the
//! kernel shape — with the rectangle slightly sharper at cutting off
//! stale data (visible at the longest windows).

use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::{Estimator, FilteredEstimator, WindowEstimator};
use mbac_experiments::{budget, parallel_map, write_csv, Table};
use mbac_sim::{ContinuousConfig, ContinuousLoad, MbacController, SessionBuilder};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

fn main() {
    let n: f64 = 400.0;
    let t_h = 1000.0;
    let t_c = 1.0;
    let p_ce = 1e-2;
    let t_h_tilde = t_h / n.sqrt();
    let t_ms: Vec<f64> = vec![1.0, 4.0, 12.0, 25.0, 50.0];
    let max_samples = budget(10_000, 300);

    println!("== ablation: exponential kernel vs rectangular window (equal mean age) ==");
    println!("n = {n}, T_h = {t_h} (T̃_h = {t_h_tilde:.1}), T_c = {t_c}, p_ce = {p_ce}\n");

    let mut points: Vec<(f64, bool)> = Vec::new();
    for &t_m in &t_ms {
        points.push((t_m, false)); // exponential
        points.push((t_m, true)); // rectangular
    }
    let results = parallel_map(points, |&(t_m, rectangular)| {
        let estimator: Box<dyn Estimator + Send> = if rectangular {
            Box::new(WindowEstimator::new(2.0 * t_m)) // mean age T_m
        } else {
            Box::new(FilteredEstimator::new(t_m))
        };
        let mut ctl = MbacController::new(
            estimator,
            Box::new(CertaintyEquivalent::from_probability(p_ce)),
        );
        let model = RcbrModel::new(RcbrConfig::paper_default(t_c));
        let cfg = ContinuousConfig {
            capacity: n,
            mean_holding: t_h,
            tick: 0.25,
            warmup: 12.0 * t_h_tilde.max(t_m),
            sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_m, t_c),
            target: p_ce,
            max_samples,
            seed: 0xAB1A + (t_m * 8.0) as u64,
        };
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &model, &mut ctl))
            .expect("valid ablation config")
    });

    let mut table = Table::new(vec!["t_m", "pf_exponential", "pf_rectangular"]);
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "T_m", "pf exp-kernel", "pf rect-window", "ratio"
    );
    for (i, &t_m) in t_ms.iter().enumerate() {
        let exp_rep = &results[2 * i];
        let rect_rep = &results[2 * i + 1];
        let ratio = if exp_rep.pf.value > 0.0 {
            rect_rep.pf.value / exp_rep.pf.value
        } else {
            f64::NAN
        };
        println!(
            "{:>8.1} {:>16.3e} {:>16.3e} {:>9.2}",
            t_m, exp_rep.pf.value, rect_rep.pf.value, ratio
        );
        table.push(vec![t_m, exp_rep.pf.value, rect_rep.pf.value]);
    }
    let path = write_csv("kernel_ablation", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: both kernels improve identically with the memory scale —\n\
         ratios within a small factor of 1 across the sweep. The time-scale is the\n\
         design variable; the kernel shape is a second-order detail."
    );
}
