//! Experiment `§6-baselines` — the related-work comparison the paper
//! makes qualitatively, staged quantitatively.
//!
//! Five controllers face the same continuous-load RCBR workload:
//!
//! 1. **memoryless CE** — the paper's strawman (eqn (6), raw target);
//! 2. **robust CE** — the paper's proposal (`T_m = T̃_h`, inverted `p_ce`);
//! 3. **prior-smoothed CE** — the Gibbens–Kelly–Key mechanism: a fixed
//!    Bayesian prior damps the memoryless estimate. Run twice: with a
//!    *correct* prior and with a *stale* prior (traffic got 25% burstier
//!    than the prior believes) — §6's point that prior-based smoothing
//!    is only as good as the prior;
//! 4. **measured-sum** — the Jamin et al. algorithm with a window equal
//!    to `T̃_h` and a utilization target tuned to the same nominal load;
//! 5. **peak-rate** — the no-multiplexing floor.
//!
//! Paper-expected shape: robust CE meets `p_q` at high utilization;
//! memoryless CE misses by orders of magnitude; the correct-prior
//! Bayesian controller behaves like mild memory (between the two); the
//! stale-prior one is unsafe again; measured-sum's safety depends
//! entirely on its hand-tuned utilization target.

use mbac_core::admission::{CertaintyEquivalent, MeasuredSum, PeakRate};
use mbac_core::estimators::{FilteredEstimator, MemorylessEstimator, PriorSmoothedEstimator};
use mbac_core::params::{FlowStats, QosTarget};
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_experiments::{budget, paper, parallel_map, write_csv, Table};
use mbac_sim::{
    AdmissionEngine, ContinuousConfig, ContinuousLoad, ContinuousReport, MbacController,
    MeasuredSumController, SessionBuilder,
};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

fn main() {
    let n: f64 = 400.0;
    let t_h = 1000.0;
    let t_c = 1.0;
    let p_q = paper::P_Q * 10.0; // 1e-2: resolvable within the budget
    let t_h_tilde = t_h / n.sqrt();
    let max_samples = budget(12_000, 400);
    let true_flow = FlowStats::from_mean_sd(1.0, 0.3);

    let sim = |mut engine: Box<dyn AdmissionEngine + Send>, seed: u64| -> ContinuousReport {
        let model = RcbrModel::new(RcbrConfig::paper_default(t_c));
        let cfg = ContinuousConfig {
            capacity: n,
            mean_holding: t_h,
            tick: 0.25,
            warmup: 12.0 * t_h_tilde,
            sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_h_tilde, t_c),
            target: p_q,
            max_samples,
            seed,
        };
        SessionBuilder::new()
            .run_local(&ContinuousLoad::new(&cfg, &model, engine.as_mut()))
            .expect("valid baseline config")
    };

    // Robust CE's adjusted target.
    let theory = ContinuousModel::new(true_flow.cov(), t_h_tilde, t_c);
    let p_ce_robust = invert_pce(&theory, t_h_tilde, p_q, InvertMethod::Separated)
        .map(|a| a.p_ce)
        .unwrap_or(p_q)
        .max(1e-300);

    println!("== §6 baselines: five controllers, one workload ==");
    println!(
        "n = {n}, T_h = {t_h} (T̃_h = {t_h_tilde:.1}), T_c = {t_c}, p_q = {p_q}, robust p_ce = {p_ce_robust:.2e}\n"
    );

    // Engines are stateful boxed trait objects; run the cases across
    // worker threads by index, rebuilding each engine inside its worker.
    let labels: Vec<usize> =
        (0..rebuild_cases(n, t_h_tilde, p_q, p_ce_robust, true_flow, t_c).len()).collect();
    let reports = parallel_map(labels, |&i| {
        let (label, engine) = rebuild_cases(n, t_h_tilde, p_q, p_ce_robust, true_flow, t_c)
            .into_iter()
            .nth(i)
            .expect("case index in range");
        (label, sim(engine, 0xBA5E))
    });

    let mut table = Table::new(vec!["case", "pf_sim", "target", "util", "mean_flows"]);
    println!(
        "{:<22} {:>12} {:>9} {:>7} {:>11} {:>14}",
        "controller", "pf_sim", "target", "util", "mean_flows", "method"
    );
    let mut case_idx = 0.0;
    for (label, rep) in reports {
        println!(
            "{:<22} {:>12.3e} {:>9.1e} {:>7.3} {:>11.1} {:>14?}",
            label, rep.pf.value, p_q, rep.mean_utilization, rep.mean_flows, rep.pf.method
        );
        table.push(vec![
            case_idx,
            rep.pf.value,
            p_q,
            rep.mean_utilization,
            rep.mean_flows,
        ]);
        case_idx += 1.0;
    }
    // Peak-rate floor, analytically.
    let peak = true_flow.mean + 4.0 * true_flow.std_dev();
    println!(
        "{:<22} {:>12} {:>9.1e} {:>7.3} {:>11.1} {:>14}",
        "peak-rate (analytic)",
        "0",
        p_q,
        (n / peak).floor() * true_flow.mean / n,
        (n / peak).floor(),
        "-"
    );
    let _ = PeakRate::new(peak);

    let path = write_csv("baselines", &table).expect("write CSV");
    println!("\nwrote {}", path.display());
    println!(
        "\nExpected shape: robust-ce ≈ target at ~0.95+ utilization; memoryless-ce misses\n\
         by 1–2 orders; bayes-correct sits between them; bayes-stale misses again\n\
         (the §6 caveat); measured-sum lands wherever its tuned u puts it; peak-rate\n\
         is safe but wastes ~40% of the link."
    );
}

fn rebuild_cases(
    n: f64,
    t_h_tilde: f64,
    p_q: f64,
    p_ce_robust: f64,
    true_flow: FlowStats,
    t_c: f64,
) -> Vec<(&'static str, Box<dyn AdmissionEngine + Send>)> {
    vec![
        (
            "memoryless-ce",
            Box::new(MbacController::new(
                Box::new(MemorylessEstimator::new()),
                Box::new(CertaintyEquivalent::from_probability(p_q)),
            )),
        ),
        (
            "robust-ce",
            Box::new(MbacController::new(
                Box::new(FilteredEstimator::new(t_h_tilde)),
                Box::new(CertaintyEquivalent::from_probability(
                    p_ce_robust.max(1e-300),
                )),
            )),
        ),
        (
            "bayes-correct-prior",
            Box::new(MbacController::new(
                Box::new(PriorSmoothedEstimator::new(true_flow, 2.0 * n)),
                Box::new(CertaintyEquivalent::from_probability(p_q)),
            )),
        ),
        (
            "bayes-stale-prior",
            Box::new(MbacController::new(
                Box::new(PriorSmoothedEstimator::new(
                    FlowStats::from_mean_sd(0.96, 0.24),
                    2.0 * n,
                )),
                Box::new(CertaintyEquivalent::from_probability(p_q)),
            )),
        ),
        (
            "measured-sum",
            Box::new(MeasuredSumController::new(MeasuredSum::new(
                (1.0 - true_flow.cov() * QosTarget::new(p_ce_robust.max(1e-300)).alpha()
                    / n.sqrt())
                .clamp(0.5, 1.0),
                t_h_tilde,
                t_c,
                true_flow.mean,
            ))),
        ),
    ]
}
