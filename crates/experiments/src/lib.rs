//! # mbac-experiments — figure-reproduction harness
//!
//! One binary per quantitative figure of Grossglauser & Tse (see
//! DESIGN.md §3 for the experiment index). This library holds the
//! shared machinery: parameter sweeps run in parallel across OS threads,
//! results written as CSV under `results/`, and compact ASCII rendering
//! of the series so each binary's stdout is directly comparable to the
//! paper's figure.

#![warn(missing_docs)]

pub mod figures;
pub mod output;
pub mod scenarios;
pub mod sweep;
pub mod topology;

pub use output::{ascii_plot, write_csv, Table};
pub use sweep::parallel_map;

/// Whether quick mode is on (`MBAC_QUICK=1`): experiment binaries then
/// shrink their sample budgets for smoke runs (CI, benches) at the cost
/// of statistical precision.
pub fn quick_mode() -> bool {
    std::env::var("MBAC_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Picks `full` normally, `quick` under [`quick_mode`]. A fractional
/// `MBAC_SCALE` (e.g. `0.2`) scales the full budget down — useful on
/// small machines where the full Monte Carlo budgets are impractical —
/// but never below the quick budget.
pub fn budget(full: u64, quick: u64) -> u64 {
    if quick_mode() {
        return quick;
    }
    match std::env::var("MBAC_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        Some(scale) if scale > 0.0 => ((full as f64 * scale) as u64).max(quick),
        _ => full,
    }
}

/// Standard paper parameters shared by the experiment binaries.
pub mod paper {
    /// Coefficient of variation σ/μ of the simulation sources (§5.2).
    pub const COV: f64 = 0.3;
    /// Per-flow mean rate (normalization; capacity is `n·MEAN`).
    pub const MEAN: f64 = 1.0;
    /// The QoS target used throughout the evaluation figures.
    pub const P_Q: f64 = 1e-3;
    /// Fig. 5's certainty-equivalent target.
    pub const FIG5_P_CE: f64 = 1e-3;
    /// Fig. 5's holding time.
    pub const FIG5_T_H: f64 = 1000.0;
    /// Fig. 5's correlation time-scale.
    pub const FIG5_T_C: f64 = 1.0;
}
