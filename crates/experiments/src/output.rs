//! Experiment output: CSV files under `results/` and ASCII rendering of
//! series for direct stdout comparison with the paper's figures.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple column-oriented result table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the headers.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// One column's values.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.headers.iter().position(|h| h == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Renders as CSV — the exact bytes [`write_csv`] puts on disk,
    /// also used by the golden-snapshot tests to compare against
    /// committed fixtures.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| format_value(*v)).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", h, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.headers.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Writes a [`Table`] as CSV to `results/<name>.csv` (creating the
/// directory), returning the path written.
pub fn write_csv(name: &str, table: &Table) -> std::io::Result<PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

/// Renders an ASCII scatter/line plot of `(x, y)` series. `log_y`
/// plots `log10(y)`; non-positive values are dropped in that mode.
/// Multiple series are overlaid with distinct glyphs.
pub fn ascii_plot(
    series: &[(&str, &[(f64, f64)])],
    log_y: bool,
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut pts: Vec<(usize, f64, f64)> = Vec::new();
    for (si, (_, s)) in series.iter().enumerate() {
        for &(x, y) in s.iter() {
            let y = if log_y {
                if y <= 0.0 {
                    continue;
                }
                y.log10()
            } else {
                y
            };
            if x.is_finite() && y.is_finite() {
                pts.push((si, x, y));
            }
        }
    }
    if pts.is_empty() {
        return "(no plottable points)\n".to_string();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 - x0 < 1e-12 {
        x1 = x0 + 1.0;
    }
    if y1 - y0 < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for &(si, x, y) in &pts {
        let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
        let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy;
        grid[row][cx] = GLYPHS[si % GLYPHS.len()];
    }
    let mut out = String::new();
    let y_label = |v: f64| {
        if log_y {
            format!("1e{v:.1}")
        } else {
            format_value(v)
        }
    };
    for (r, row) in grid.iter().enumerate() {
        let yv = y1 - (y1 - y0) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{:>9} |", y_label(yv)));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}  {:<w$.4}{:>r$.4}\n",
        "",
        x0,
        x1,
        w = width / 2,
        r = width - width / 2
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push(vec![1.0, 2.0]);
        t.push(vec![3.0, 4.0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.column("y").unwrap(), vec![2.0, 4.0]);
        assert!(t.column("z").is_none());
        let r = t.render();
        assert!(r.contains('x') && r.contains("4.0000"));
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn csv_written_to_results_dir() {
        let mut t = Table::new(vec!["p", "q"]);
        t.push(vec![0.5, 1e-5]);
        let path = write_csv("unit_test_output", &t).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("p,q\n"));
        assert!(text.contains("0.5,0.00001"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn plot_renders_points() {
        let s1 = [(0.0, 1.0), (1.0, 10.0), (2.0, 100.0)];
        let s2 = [(0.0, 2.0), (2.0, 50.0)];
        let p = ascii_plot(&[("theory", &s1), ("sim", &s2)], true, 40, 10);
        assert!(p.contains('*') && p.contains('o'));
        assert!(p.contains("theory") && p.contains("sim"));
    }

    #[test]
    fn plot_log_mode_drops_nonpositive() {
        let s = [(0.0, 0.0), (1.0, -5.0)];
        let p = ascii_plot(&[("bad", &s)], true, 20, 5);
        assert!(p.contains("no plottable points"));
    }

    #[test]
    fn format_value_ranges() {
        assert_eq!(format_value(0.0), "0");
        assert!(format_value(12345.0).contains('e'));
        assert!(format_value(1e-7).contains('e'));
        assert_eq!(format_value(1.5), "1.5000");
    }
}
