//! Parameterized figure builders.
//!
//! Each `figN_rows` function computes the data behind one paper figure
//! — same parameter grid, seeds and models as the corresponding
//! `exp_figN` binary, with the Monte Carlo budget (and, for the trace
//! figures, the trace length) as an argument. The matching `figN_table`
//! shapes rows into the exact [`Table`] the binary writes to
//! `results/figN.csv`, so the golden-snapshot tests in
//! `tests/golden.rs` exercise the same pipeline the binaries ship.

use crate::output::Table;
use crate::{paper, parallel_map};
use mbac_core::params::QosTarget;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::invert::{invert_pce, InvertMethod};
use mbac_sim::ContinuousReport;
use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
use mbac_traffic::trace::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use crate::scenarios::{ContinuousScenario, TraceScenario};

/// One fig-5 grid point: theory (both formulas) and simulation at a
/// memory window `T_m`.
pub struct Fig5Row {
    /// Estimator memory.
    pub t_m: f64,
    /// Closed-form prediction, eqn (38).
    pub pf_eqn38: f64,
    /// Numerically-integrated prediction, eqn (37).
    pub pf_eqn37: f64,
    /// Simulation outcome.
    pub report: ContinuousReport,
}

/// Fig. 5 sweep — `p_f` vs `T_m` at `n = 1000`, `T_h = 1000`.
pub fn fig5_rows(max_samples: u64) -> Vec<Fig5Row> {
    let n: f64 = 1000.0;
    let t_ms: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 31.6, 64.0];
    parallel_map(t_ms, |&t_m| {
        let sc = ContinuousScenario {
            n,
            t_h: paper::FIG5_T_H,
            t_c: paper::FIG5_T_C,
            t_m,
            p_ce: paper::FIG5_P_CE,
            p_q: paper::FIG5_P_CE,
            max_samples,
            seed: 0x0F15 + (t_m * 64.0) as u64,
        };
        Fig5Row {
            t_m,
            pf_eqn38: sc.theory_pf_closed(),
            pf_eqn37: sc.theory_pf_general(),
            report: sc.run(),
        }
    })
}

/// The `results/fig5.csv` layout.
pub fn fig5_table(rows: &[Fig5Row]) -> Table {
    let mut table = Table::new(vec![
        "t_m", "pf_eqn38", "pf_eqn37", "pf_sim", "util", "samples",
    ]);
    for r in rows {
        table.push(vec![
            r.t_m,
            r.pf_eqn38,
            r.pf_eqn37,
            r.report.pf.value,
            r.report.mean_utilization,
            r.report.pf.samples as f64,
        ]);
    }
    table
}

/// One fig-6 grid point: the adjusted certainty-equivalent target.
pub struct Fig6Row {
    /// System size.
    pub n: f64,
    /// Mean holding time.
    pub t_h: f64,
    /// Estimator memory.
    pub t_m: f64,
    /// `ln p_ce` of the adjusted target.
    pub ln_pce: f64,
    /// The adjusted target itself.
    pub pce: f64,
    /// The matching Gaussian quantile.
    pub alpha_ce: f64,
    /// Whether the inversion succeeded (`false` = repair-dominated, no
    /// adjustment needed; the row then carries the nominal `p_q`).
    pub inverted: bool,
}

/// Fig. 6 grid — inversion of eqn (38) over `(n, T_h) × T_m`. Pure
/// theory; no Monte Carlo budget.
pub fn fig6_rows() -> Vec<Fig6Row> {
    let p_q = paper::P_Q;
    let t_c = paper::FIG5_T_C;
    let grid: Vec<(f64, f64)> = vec![(100.0, 1e3), (100.0, 1e4), (1000.0, 1e3), (1000.0, 1e4)];
    let t_ms: Vec<f64> = (0..=14).map(|k| 2f64.powi(k - 2)).collect();
    let mut rows = Vec::new();
    for &(n, t_h) in &grid {
        let model = ContinuousModel::new(paper::COV, t_h / n.sqrt(), t_c);
        for &t_m in &t_ms {
            rows.push(
                match invert_pce(&model, t_m, p_q, InvertMethod::Separated) {
                    Ok(adj) => Fig6Row {
                        n,
                        t_h,
                        t_m,
                        ln_pce: adj.ln_pce,
                        pce: adj.p_ce,
                        alpha_ce: adj.alpha_ce,
                        inverted: true,
                    },
                    Err(_) => Fig6Row {
                        n,
                        t_h,
                        t_m,
                        ln_pce: p_q.ln(),
                        pce: p_q,
                        alpha_ce: mbac_num::inv_q(p_q),
                        inverted: false,
                    },
                },
            );
        }
    }
    rows
}

/// The `results/fig6.csv` layout.
pub fn fig6_table(rows: &[Fig6Row]) -> Table {
    let mut table = Table::new(vec!["n", "t_h", "t_m", "ln_pce", "pce", "alpha_ce"]);
    for r in rows {
        table.push(vec![r.n, r.t_h, r.t_m, r.ln_pce, r.pce, r.alpha_ce]);
    }
    table
}

/// One fig-7 point: the simulator run at the fig-6-adjusted target.
pub struct Fig7Row {
    /// Estimator memory.
    pub t_m: f64,
    /// The adjusted `p_ce` fed to the controller.
    pub pce_adjusted: f64,
    /// Simulation outcome.
    pub report: ContinuousReport,
}

/// Fig. 7 sweep — simulated `p_f` under the adjusted target.
pub fn fig7_rows(max_samples: u64) -> Vec<Fig7Row> {
    let p_q = paper::P_Q;
    let n: f64 = 1000.0;
    let t_h = 1000.0;
    let t_c = paper::FIG5_T_C;
    let t_h_tilde = t_h / n.sqrt();
    let t_ms: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 31.6, 64.0];
    parallel_map(t_ms, move |&t_m| {
        let model = ContinuousModel::new(paper::COV, t_h_tilde, t_c);
        let adjusted = invert_pce(&model, t_m, p_q, InvertMethod::Separated)
            .map(|a| a.p_ce)
            .unwrap_or(p_q)
            .max(1e-300);
        let sc = ContinuousScenario {
            n,
            t_h,
            t_c,
            t_m,
            p_ce: adjusted,
            p_q,
            max_samples,
            seed: 0x0F17 + (t_m * 64.0) as u64,
        };
        Fig7Row {
            t_m,
            pce_adjusted: adjusted,
            report: sc.run(),
        }
    })
}

/// The `results/fig7.csv` layout.
pub fn fig7_table(rows: &[Fig7Row]) -> Table {
    let mut table = Table::new(vec!["t_m", "pce_adjusted", "pf_sim", "target", "util"]);
    for r in rows {
        table.push(vec![
            r.t_m,
            r.pce_adjusted,
            r.report.pf.value,
            paper::P_Q,
            r.report.mean_utilization,
        ]);
    }
    table
}

/// One fig-9 grid point of the theoretical `(T_m/T̃_h, T_c)` surface.
pub struct Fig9Row {
    /// Memory as a fraction of the critical time-scale.
    pub ratio: f64,
    /// Traffic correlation time-scale.
    pub t_c: f64,
    /// Predicted overflow probability, eqn (37).
    pub pf: f64,
}

/// Fig. 9 grid — numerical integration of eqn (37). Pure theory.
pub fn fig9_rows() -> Vec<Fig9Row> {
    let alpha = QosTarget::new(paper::P_Q).alpha();
    let t_h_tilde = 31.6;
    let ratios: Vec<f64> = vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0];
    let t_cs: Vec<f64> = vec![0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];
    let mut rows = Vec::new();
    for &r in &ratios {
        for &t_c in &t_cs {
            let model = ContinuousModel::new(paper::COV, t_h_tilde, t_c);
            rows.push(Fig9Row {
                ratio: r,
                t_c,
                pf: model.pf_with_memory(alpha, r * t_h_tilde),
            });
        }
    }
    rows
}

/// The `results/fig9.csv` layout.
pub fn fig9_table(rows: &[Fig9Row]) -> Table {
    let mut table = Table::new(vec!["tm_over_thtilde", "t_c", "pf"]);
    for r in rows {
        table.push(vec![r.ratio, r.t_c, r.pf]);
    }
    table
}

/// One fig-10 grid point: simulation over the `(T_m/T̃_h, T_c)` plane.
pub struct Fig10Row {
    /// Memory as a fraction of the critical time-scale.
    pub ratio: f64,
    /// Traffic correlation time-scale.
    pub t_c: f64,
    /// Simulation outcome.
    pub report: ContinuousReport,
}

/// The `T_c` column grid shared by fig-10's matrix printout.
pub const FIG10_T_CS: [f64; 5] = [0.1, 0.3, 1.0, 3.0, 10.0];
/// The `T_m/T̃_h` row grid of fig-10.
pub const FIG10_RATIOS: [f64; 4] = [0.01, 0.1, 0.5, 1.0];

/// Fig. 10 sweep — simulated counterpart of the fig-9 surface.
pub fn fig10_rows(max_samples: u64) -> Vec<Fig10Row> {
    let n: f64 = 400.0;
    let t_h = 400.0 * 31.6 / 20.0;
    let t_h_tilde = t_h / n.sqrt();
    let mut points = Vec::new();
    for &r in &FIG10_RATIOS {
        for &t_c in &FIG10_T_CS {
            points.push((r, t_c));
        }
    }
    parallel_map(points, move |&(r, t_c)| {
        let sc = ContinuousScenario {
            n,
            t_h,
            t_c,
            t_m: r * t_h_tilde,
            p_ce: paper::P_Q,
            p_q: paper::P_Q,
            max_samples,
            seed: 0x0F20 + (r * 1000.0) as u64 + (t_c * 17.0) as u64,
        };
        Fig10Row {
            ratio: r,
            t_c,
            report: sc.run(),
        }
    })
}

/// The `results/fig10.csv` layout.
pub fn fig10_table(rows: &[Fig10Row]) -> Table {
    let mut table = Table::new(vec!["tm_over_thtilde", "t_c", "pf_sim", "util"]);
    for r in rows {
        table.push(vec![
            r.ratio,
            r.t_c,
            r.report.pf.value,
            r.report.mean_utilization,
        ]);
    }
    table
}

/// The deterministic synthetic Starwars-like trace shared by the
/// fig-11/fig-12 sweeps (seed `0x57A7`, `slots` samples).
pub fn lrd_trace(slots: usize) -> Arc<Trace> {
    let cfg = StarwarsConfig {
        slots,
        ..StarwarsConfig::default()
    };
    Arc::new(generate_starwars_like(
        &cfg,
        &mut StdRng::seed_from_u64(0x57A7),
    ))
}

/// One fig-11/fig-12 point of the holding-time sweep.
pub struct FigLrdRow {
    /// Mean holding time.
    pub t_h: f64,
    /// The critical time-scale `T̃_h` at this `T_h`.
    pub t_h_tilde: f64,
    /// The certainty-equivalent target the controller ran with (the
    /// nominal `p_q` for fig-11, the eqn (38)-inverted value for
    /// fig-12).
    pub p_ce: f64,
    /// Simulation outcome.
    pub report: ContinuousReport,
}

/// The holding-time sweep shared by figs 11–12.
pub const LRD_T_HS: [f64; 6] = [8_000.0, 4_000.0, 2_000.0, 1_000.0, 500.0, 250.0];

/// Fig. 11 sweep — LRD trace under memoryless estimation.
pub fn fig11_rows(trace: &Arc<Trace>, max_samples: u64) -> Vec<FigLrdRow> {
    let p_q = paper::P_Q;
    let n: f64 = 400.0;
    let trace = trace.clone();
    parallel_map(LRD_T_HS.to_vec(), move |&t_h| {
        let sc = TraceScenario {
            trace: trace.clone(),
            n,
            t_h,
            t_m: 0.0,
            p_ce: p_q,
            p_q,
            max_samples,
            seed: 0x0F11 + t_h as u64,
        };
        FigLrdRow {
            t_h,
            t_h_tilde: sc.t_h_tilde(),
            p_ce: p_q,
            report: sc.run(),
        }
    })
}

/// The `results/fig11.csv` layout.
pub fn fig11_table(rows: &[FigLrdRow]) -> Table {
    let mut table = Table::new(vec!["t_h", "inv_thtilde", "pf_sim", "target", "util"]);
    for r in rows {
        table.push(vec![
            r.t_h,
            1.0 / r.t_h_tilde,
            r.report.pf.value,
            paper::P_Q,
            r.report.mean_utilization,
        ]);
    }
    table
}

/// Fig. 12 sweep — LRD trace with the robust rule `T_m = T̃_h` and the
/// eqn (38)-inverted target.
pub fn fig12_rows(trace: &Arc<Trace>, max_samples: u64) -> Vec<FigLrdRow> {
    let p_q = paper::P_Q;
    let n: f64 = 400.0;
    let cov = trace.variance().sqrt() / trace.mean();
    let trace = trace.clone();
    parallel_map(LRD_T_HS.to_vec(), move |&t_h| {
        let t_h_tilde = t_h / n.sqrt();
        let model = ContinuousModel::new(cov, t_h_tilde, trace.slot());
        let p_ce = invert_pce(&model, t_h_tilde, p_q, InvertMethod::Separated)
            .map(|a| a.p_ce)
            .unwrap_or(p_q)
            .max(1e-300);
        let sc = TraceScenario {
            trace: trace.clone(),
            n,
            t_h,
            t_m: t_h_tilde,
            p_ce,
            p_q,
            max_samples,
            seed: 0x0F12 + t_h as u64,
        };
        FigLrdRow {
            t_h,
            t_h_tilde,
            p_ce,
            report: sc.run(),
        }
    })
}

/// The `results/fig12.csv` layout.
pub fn fig12_table(rows: &[FigLrdRow]) -> Table {
    let mut table = Table::new(vec![
        "t_h",
        "inv_thtilde",
        "t_m",
        "pce_adj",
        "pf_sim",
        "target",
        "util",
    ]);
    for r in rows {
        table.push(vec![
            r.t_h,
            1.0 / r.t_h_tilde,
            r.t_h_tilde,
            r.p_ce,
            r.report.pf.value,
            paper::P_Q,
            r.report.mean_utilization,
        ]);
    }
    table
}
