//! The multi-hop topology experiment: does the robust memory rule
//! `T_m = T̃_h` survive path composition?
//!
//! The paper's analysis is single-link: one estimator, one capacity,
//! one admission decision. On a routed network each link runs its own
//! measurement-based controller and a flow is admitted only when
//! *every* hop on its route accepts — shared links see correlated load
//! from routes they have in common, and a multi-hop flow couples the
//! occupancy of links whose estimators never exchange a byte. The sweep
//! asks whether the single-link sizing rule, applied hop by hop, still
//! pins the *worst link's* overflow probability near the target, on the
//! two canonical shapes:
//!
//! * **parking-lot(3)** — one 3-hop route crossing three links, plus
//!   single-hop cross traffic on each link (the classic fairness/
//!   composition stress shape);
//! * **star(4)** — four 2-hop routes, each crossing its own access leg
//!   and the shared hub (the aggregation stress shape: the hub carries
//!   every route).
//!
//! Each grid point is a closed-loop [`RoutedNetworkLoad`] run: per-link
//! certainty-equivalent controllers at memory `T_m = ratio · T̃_h`,
//! continuous admission pressure on every route, overflow counted per
//! link. The headline comparison is `max_pf` vs `ratio` — the paper's
//! fig-5 shape (steep improvement up to the knee at the critical
//! time-scale, flat beyond) should reappear per *network*, not just per
//! link, if the rule composes.

use crate::output::Table;
use crate::{paper, parallel_map};
use mbac_sim::{
    RoutedNetworkConfig, RoutedNetworkLoad, RoutedNetworkReport, SessionBuilder, Topology,
};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use std::sync::Arc;

/// The `T_m / T̃_h` grid of the sweep (0 = memoryless).
pub const TOPOLOGY_RATIOS: [f64; 6] = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0];

/// Per-link capacity, in mean-rate units (`n` per link).
pub const TOPOLOGY_N: f64 = 16.0;

/// Mean flow holding time `T_h`.
pub const TOPOLOGY_T_H: f64 = 10.0;

/// Certainty-equivalent target used per hop (kept loose enough for the
/// smoke-budget runs to resolve).
pub const TOPOLOGY_P_CE: f64 = 1e-2;

/// The two swept shapes, by row id.
pub fn topology_shape(topo_id: usize) -> (&'static str, Topology) {
    match topo_id {
        0 => ("parking-lot:3", Topology::parking_lot(3, TOPOLOGY_N)),
        _ => ("star:4", Topology::star(4, TOPOLOGY_N)),
    }
}

/// One grid point of the topology sweep.
pub struct TopologyRow {
    /// Shape id (0 = parking-lot(3), 1 = star(4)).
    pub topo_id: usize,
    /// Shape name (the CLI's `--topology` spec).
    pub topo_name: &'static str,
    /// `T_m` as a fraction of the critical time-scale `T̃_h`.
    pub t_m_ratio: f64,
    /// The memory window itself.
    pub t_m: f64,
    /// The folded network report.
    pub report: RoutedNetworkReport,
}

impl TopologyRow {
    /// Mean utilization across links.
    pub fn mean_utilization(&self) -> f64 {
        let links = self.report.per_link.len() as f64;
        self.report
            .per_link
            .iter()
            .map(|l| l.utilization)
            .sum::<f64>()
            / links
    }

    /// Blocked fraction of route 0 — the multi-hop route (the long
    /// parking-lot route; a leg-plus-hub route on the star).
    pub fn long_route_block(&self) -> f64 {
        let r = &self.report.per_route[0];
        let total = r.admitted + r.blocked;
        if total > 0 {
            r.blocked as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Mean blocked fraction over the remaining routes.
    pub fn other_routes_block(&self) -> f64 {
        let rest = &self.report.per_route[1..];
        if rest.is_empty() {
            return 0.0;
        }
        rest.iter()
            .map(|r| {
                let total = r.admitted + r.blocked;
                if total > 0 {
                    r.blocked as f64 / total as f64
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / rest.len() as f64
    }
}

/// The sweep: `{parking-lot(3), star(4)} × TOPOLOGY_RATIOS`, each point
/// an independent closed-loop routed network run of `ticks` measurement
/// ticks (the Monte Carlo budget knob).
pub fn topology_rows(ticks: u64) -> Vec<TopologyRow> {
    let t_h_tilde = TOPOLOGY_T_H / TOPOLOGY_N.sqrt();
    let mut points = Vec::new();
    for topo_id in 0..2 {
        for &ratio in &TOPOLOGY_RATIOS {
            points.push((topo_id, ratio));
        }
    }
    parallel_map(points, move |&(topo_id, ratio)| {
        let (topo_name, topology) = topology_shape(topo_id);
        let model = RcbrModel::new(RcbrConfig {
            mean: paper::MEAN,
            std_dev: paper::COV * paper::MEAN,
            t_c: 1.0,
            truncate_at_zero: true,
        });
        let t_m = ratio * t_h_tilde;
        let ticks = ticks as usize;
        let cfg = RoutedNetworkConfig {
            topology: Arc::new(topology),
            ticks,
            tick: 0.25,
            warmup_ticks: ticks / 4,
            // A warm start well under capacity: the closed loop fills
            // the rest through admissions (the hub of the star sums
            // every route's seed, so keep it low).
            initial_flows_per_route: 3,
            mean_holding: TOPOLOGY_T_H,
            attempts_per_tick: 2,
            noise_sd: 0.0,
            t_m,
            p_ce: TOPOLOGY_P_CE,
            replications: 4,
            seed: 0x7070 + topo_id as u64 * 1000 + (ratio * 100.0) as u64,
        };
        let load = RoutedNetworkLoad { model: &model, cfg };
        let report = SessionBuilder::new()
            .run(&load)
            .expect("valid sweep config");
        TopologyRow {
            topo_id,
            topo_name,
            t_m_ratio: ratio,
            t_m,
            report,
        }
    })
}

/// The `results/topology.csv` layout.
pub fn topology_table(rows: &[TopologyRow]) -> Table {
    let mut table = Table::new(vec![
        "topo_id",
        "tm_over_thtilde",
        "t_m",
        "max_pf",
        "target",
        "mean_util",
        "long_route_block",
        "other_routes_block",
    ]);
    for r in rows {
        table.push(vec![
            r.topo_id as f64,
            r.t_m_ratio,
            r.t_m,
            r.report.max_pf(),
            TOPOLOGY_P_CE,
            r.mean_utilization(),
            r.long_route_block(),
            r.other_routes_block(),
        ]);
    }
    table
}
