//! Integration tests for the streaming sink's bounded-memory contract:
//! a full ring drops records *visibly* — the summary line carries the
//! count — and never blocks or grows.

use mbac_metrics::{FieldBuf, StreamConfig, StreamItem, StreamSink};
use std::io::{self, Write};
use std::sync::{Arc, Condvar, Mutex};

/// A writer that blocks until the test releases it, so the ring behind
/// it fills deterministically.
struct GatedWriter {
    gate: Arc<(Mutex<bool>, Condvar)>,
    out: Arc<Mutex<Vec<u8>>>,
}

impl Write for GatedWriter {
    fn write(&mut self, b: &[u8]) -> io::Result<usize> {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        self.out.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn sample(seq: u64) -> StreamItem {
    let mut fields = FieldBuf::new();
    fields.push("load", seq as f64);
    StreamItem::Sample {
        stream: 0,
        seq,
        t: seq as f64,
        fields,
    }
}

#[test]
fn full_ring_drops_are_counted_and_reported_in_summary() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let out = Arc::new(Mutex::new(Vec::new()));
    let cfg = StreamConfig {
        ring_capacity: 4,
        sample_fraction: 1.0,
        ..StreamConfig::default()
    };
    let sink = StreamSink::to_writer(
        cfg,
        Box::new(GatedWriter {
            gate: Arc::clone(&gate),
            out: Arc::clone(&out),
        }),
    );
    let h = sink.handle();

    // Writer is stalled on the gate (it blocks writing the header), so
    // once the ring's 4 slots fill, every further emit must drop.
    for seq in 0..64 {
        h.emit(sample(seq));
    }
    assert!(
        h.dropped() >= 60,
        "expected most of 64 emits to drop into a capacity-4 ring, got {}",
        h.dropped()
    );
    let dropped_before_finish = h.dropped();

    // Open the gate; the writer drains the ring and writes the summary.
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    let stats = sink.finish().unwrap();
    assert_eq!(stats.dropped, dropped_before_finish);
    assert_eq!(stats.samples + stats.dropped, 64);
    assert_eq!(stats.ring_capacity, 4);

    let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    let summary = text
        .lines()
        .last()
        .expect("stream ends with a summary line");
    assert!(summary.contains("\"k\": \"summary\""), "{summary}");
    assert!(
        summary.contains(&format!("\"dropped\": {}", stats.dropped)),
        "summary must carry the drop counter: {summary}"
    );
}

#[test]
fn unblocked_stream_drops_nothing() {
    let dir = std::env::temp_dir().join(format!("mbac-stream-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ok.jsonl");
    let cfg = StreamConfig {
        ring_capacity: 1024,
        sample_fraction: 1.0,
        ..StreamConfig::default()
    };
    let sink = StreamSink::to_path(cfg, &path).unwrap();
    let h = sink.handle();
    for seq in 0..200 {
        h.emit(sample(seq));
        if seq % 16 == 0 {
            // Give the writer a chance to drain; capacity 1024 for 200
            // records cannot fill regardless.
            std::thread::yield_now();
        }
    }
    let stats = sink.finish().unwrap();
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.samples, 200);
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 202, "header + 200 samples + summary");
    std::fs::remove_dir_all(&dir).ok();
}
