//! Allocation-regression guard for `MetricsSnapshot::merge_prefixed`.
//!
//! The routed simulator merges per-link/per-route instrument bundles
//! under a prefix once per replication; at million-flow scale the old
//! implementation's fresh `String` key per entry per merge was real
//! allocator pressure. The rewrite probes with one reused buffer, so a
//! steady-state merge (every prefixed name already present) allocates
//! O(1), not O(entries).
//!
//! This file deliberately holds a single `#[test]`: the counting global
//! allocator sees every thread in the test binary, and a second
//! concurrent test would pollute the delta.

use mbac_metrics::{Aggregated, Counter, MetricValue, MetricsSnapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn bundle(entries: usize) -> MetricsSnapshot {
    let mut s = MetricsSnapshot::new();
    for i in 0..entries {
        let mut c = Counter::new();
        c.add(i as u64 + 1);
        s.insert(format!("metric{i:04}"), MetricValue::Counter(c.snapshot()));
    }
    s
}

#[test]
fn steady_state_merge_prefixed_allocates_o1_not_o_entries() {
    const ENTRIES: usize = 1024;
    let other = bundle(ENTRIES);
    let mut target = MetricsSnapshot::new();
    // First merge under the prefix: every name is new, keys are paid
    // for here once.
    target.merge_prefixed("net.link0", &other);
    assert_eq!(target.len(), ENTRIES);

    // Steady state: all prefixed names exist, so the merge should only
    // allocate the one probe buffer (plus small constant noise).
    let before = ALLOCS.load(Ordering::Relaxed);
    target.merge_prefixed("net.link0", &other);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(
        delta < 64,
        "steady-state merge_prefixed allocated {delta} times for {ENTRIES} entries"
    );

    // And the merge itself still merged (counts doubled, not replaced).
    match target.get("net.link0.metric0000") {
        Some(MetricValue::Counter(c)) => assert_eq!(c.count, 2),
        other => panic!("{other:?}"),
    }
}
