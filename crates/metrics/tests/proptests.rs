//! Property-based tests for the metrics instruments: merge algebra of
//! snapshots (associativity, order-insensitivity) and P² accuracy
//! against exact quantiles.

use mbac_metrics::{
    Aggregated, Counter, Gauge, Histogram, Mergeable, MetricValue, MetricsSnapshot, P2Quantile,
    TimeSeries,
};
use proptest::prelude::*;

fn histogram_of(xs: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &x in xs {
        h.record(x);
    }
    h
}

fn gauge_of(xs: &[f64]) -> Gauge {
    let mut g = Gauge::new();
    for &x in xs {
        g.set(x);
    }
    g
}

fn exact_quantile(xs: &[f64], p: f64) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let h = p * (s.len() - 1) as f64;
    let (lo, hi) = (h.floor() as usize, h.ceil() as usize);
    if lo == hi {
        s[lo]
    } else {
        s[lo] + (h - lo as f64) * (s[hi] - s[lo])
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a.is_nan() && b.is_nan()) || (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    /// Histogram snapshot merge is associative: integer state (count,
    /// bins, min, max) exactly, the f64 sum up to rounding.
    #[test]
    fn histogram_merge_associative(
        xs in proptest::collection::vec(-1e4f64..1e4, 0..40),
        ys in proptest::collection::vec(-1e4f64..1e4, 0..40),
        zs in proptest::collection::vec(-1e4f64..1e4, 0..40),
    ) {
        let (a, b, c) = (
            histogram_of(&xs).snapshot(),
            histogram_of(&ys).snapshot(),
            histogram_of(&zs).snapshot(),
        );
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(&left.bins, &right.bins);
        prop_assert_eq!(left.min.to_bits(), right.min.to_bits());
        prop_assert_eq!(left.max.to_bits(), right.max.to_bits());
        prop_assert!(close(left.sum, right.sum, 1e-12), "{} vs {}", left.sum, right.sum);
    }

    /// Histogram snapshot merge is order-insensitive (commutative).
    #[test]
    fn histogram_merge_commutative(
        xs in proptest::collection::vec(-1e4f64..1e4, 0..40),
        ys in proptest::collection::vec(-1e4f64..1e4, 0..40),
    ) {
        let (a, b) = (histogram_of(&xs).snapshot(), histogram_of(&ys).snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(&ab.bins, &ba.bins);
        prop_assert_eq!(ab.min.to_bits(), ba.min.to_bits());
        prop_assert_eq!(ab.max.to_bits(), ba.max.to_bits());
        // f64 addition commutes exactly.
        prop_assert_eq!(ab.sum.to_bits(), ba.sum.to_bits());
    }

    /// Gauge distribution state obeys the same algebra, and counter
    /// merges are exactly associative and commutative.
    #[test]
    fn gauge_and_counter_merge_algebra(
        xs in proptest::collection::vec(-50.0f64..50.0, 0..20),
        ys in proptest::collection::vec(-50.0f64..50.0, 0..20),
        na in 0u64..1_000_000,
        nb in 0u64..1_000_000,
    ) {
        let (a, b) = (gauge_of(&xs).snapshot(), gauge_of(&ys).snapshot());
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(ab.min.to_bits(), ba.min.to_bits());
        prop_assert_eq!(ab.max.to_bits(), ba.max.to_bits());
        prop_assert_eq!(ab.sum.to_bits(), ba.sum.to_bits());

        let mut ca = Counter::new();
        ca.add(na);
        let mut cb = Counter::new();
        cb.add(nb);
        let mut sab = ca.snapshot();
        sab.merge(&cb.snapshot());
        let mut sba = cb.snapshot();
        sba.merge(&ca.snapshot());
        prop_assert_eq!(sab, sba);
        prop_assert_eq!(sab.count, na + nb);
    }

    /// Splitting one stream across k snapshots and folding them back
    /// (in any split) reproduces the unsplit snapshot — the property the
    /// parallel replication workers rely on.
    #[test]
    fn histogram_split_fold_equals_whole(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..60),
        k in 1usize..5,
    ) {
        let whole = histogram_of(&xs).snapshot();
        let mut parts: Vec<Histogram> = (0..k).map(|_| Histogram::new()).collect();
        for (i, &x) in xs.iter().enumerate() {
            parts[i % k].record(x);
        }
        let mut folded = parts[0].snapshot();
        for p in &parts[1..] {
            folded.merge(&p.snapshot());
        }
        prop_assert_eq!(folded.count, whole.count);
        prop_assert_eq!(&folded.bins, &whole.bins);
        prop_assert_eq!(folded.min.to_bits(), whole.min.to_bits());
        prop_assert_eq!(folded.max.to_bits(), whole.max.to_bits());
        prop_assert!(close(folded.sum, whole.sum, 1e-12));
    }

    /// Snapshot-container merge inherits associativity from the values
    /// it contains, including names present on only one side.
    #[test]
    fn container_merge_associative(
        xs in proptest::collection::vec(0.0f64..100.0, 0..25),
        ys in proptest::collection::vec(0.0f64..100.0, 0..25),
        zs in proptest::collection::vec(0.0f64..100.0, 0..25),
    ) {
        let pack = |vals: &[f64], extra: bool| {
            let mut s = MetricsSnapshot::new();
            s.insert("h", MetricValue::Histogram(histogram_of(vals).snapshot()));
            if extra {
                let mut c = Counter::new();
                c.add(vals.len() as u64);
                s.insert("c", MetricValue::Counter(c.snapshot()));
            }
            s
        };
        let (a, b, c) = (pack(&xs, true), pack(&ys, false), pack(&zs, true));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // Integer state is exactly associative; f64 sums agree up to
        // one rounding per merge, which the JSON view would surface in
        // the last digit — compare structurally instead.
        prop_assert_eq!(left.names().collect::<Vec<_>>(), right.names().collect::<Vec<_>>());
        match (left.get("h"), right.get("h")) {
            (Some(MetricValue::Histogram(l)), Some(MetricValue::Histogram(r))) => {
                prop_assert_eq!(l.count, r.count);
                prop_assert_eq!(&l.bins, &r.bins);
                prop_assert!(close(l.sum, r.sum, 1e-12));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
        prop_assert_eq!(left.get("c"), right.get("c"));
    }

    /// P² stays within bounds of the exact quantile on generated
    /// samples: always inside the sample range, and within a modest
    /// relative band of the exact order statistic once the stream is
    /// long enough for the markers to settle.
    #[test]
    fn p2_tracks_exact_quantile(
        base in proptest::collection::vec(0.01f64..100.0, 50..300),
        p in 0.05f64..0.95,
    ) {
        let mut est = P2Quantile::new(p);
        for &x in &base {
            est.observe(x);
        }
        let got = est.estimate();
        let lo = base.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = base.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(got >= lo && got <= hi, "{got} outside [{lo}, {hi}]");
        let exact = exact_quantile(&base, p);
        // Bracket by neighbouring order statistics widened by a band:
        // P² is an approximation, but it must not wander to a different
        // part of the distribution.
        let slack = 0.35;
        let lo_b = exact_quantile(&base, (p - slack).max(0.0));
        let hi_b = exact_quantile(&base, (p + slack).min(1.0));
        prop_assert!(
            got >= lo_b - 1e-9 && got <= hi_b + 1e-9,
            "p2 {got} for p={p} outside [{lo_b}, {hi_b}] (exact {exact})"
        );
    }

    /// Time-series merge is order-insensitive and capacity-bounded.
    #[test]
    fn series_merge_commutative_and_bounded(
        ta in proptest::collection::vec(0.0f64..1e3, 0..50),
        tb in proptest::collection::vec(0.0f64..1e3, 0..50),
    ) {
        let fill = |ts: &[f64]| {
            let mut s = TimeSeries::new(16);
            for (i, &t) in ts.iter().enumerate() {
                s.record(t, i as f64);
            }
            s.snapshot()
        };
        let (a, b) = (fill(&ta), fill(&tb));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab.points, &ba.points);
        prop_assert!(ab.points.len() <= 16);
        // Timestamps stay sorted.
        for w in ab.points.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }
}
