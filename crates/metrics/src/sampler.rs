//! Deterministic entry sampling for raw-event traceability.
//!
//! Aggregates stay exact — every unit-of-work entry folds into the
//! mergeable instruments — but emitting every raw entry at 10⁶ flows
//! would drown any sink. The [`Sampler`] keeps a configurable fraction
//! of entries *deterministically*: the keep/skip decision for entry
//! `seq` is a pure function of `(key, seq)`, so the same simulation
//! (same seed, any worker count, either flow engine) samples the same
//! entries. That preserves the worker/engine invariance contract the
//! rest of the metrics pipeline guarantees.
//!
//! The hash is the SplitMix64 finalizer — the same mixer the simulator
//! uses for per-replication seed derivation — which passes avalanche
//! tests, so `splitmix64(key ^ splitmix64(seq))` is uniform over `u64`
//! and comparing against `fraction · 2⁶⁴` keeps each entry independently
//! with probability `fraction`.

/// The SplitMix64 finalizer: a bijective avalanche mixer over `u64`.
///
/// Public because the sampler's callers derive per-stream keys the same
/// way the simulator derives per-replication seeds:
/// `splitmix64(base ^ splitmix64(stream_index))`.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic keep-fraction filter over entry sequence numbers.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    key: u64,
    /// Keep iff `hash < threshold`; `u64::MAX` plus [`Self::always`]
    /// encodes "keep everything" exactly.
    threshold: u64,
    always: bool,
}

impl Sampler {
    /// Builds a sampler keeping roughly `fraction` of entries
    /// (clamped to `[0, 1]`; `1.0` keeps everything, `0.0` nothing),
    /// keyed so distinct streams sample independently.
    pub fn new(fraction: f64, key: u64) -> Self {
        let fraction = if fraction.is_finite() {
            fraction.clamp(0.0, 1.0)
        } else {
            0.0
        };
        Sampler {
            key,
            // 2⁶⁴·fraction saturates to u64::MAX at fraction = 1.0; the
            // `always` flag closes the 1/2⁶⁴ gap exactly.
            threshold: (fraction * (u64::MAX as f64 + 1.0)) as u64,
            always: fraction >= 1.0,
        }
    }

    /// Whether entry `seq` is kept. Pure in `(key, seq)`.
    #[inline]
    pub fn keep(&self, seq: u64) -> bool {
        self.always || splitmix64(self.key ^ splitmix64(seq)) < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_keep_all_or_nothing() {
        let all = Sampler::new(1.0, 7);
        let none = Sampler::new(0.0, 7);
        for seq in 0..1000 {
            assert!(all.keep(seq));
            assert!(!none.keep(seq));
        }
    }

    #[test]
    fn fraction_is_roughly_honored() {
        let s = Sampler::new(0.1, 42);
        let kept = (0..100_000).filter(|&q| s.keep(q)).count();
        // 100k Bernoulli(0.1) draws: mean 10_000, sd ≈ 95.
        assert!((9_400..=10_600).contains(&kept), "kept {kept}");
    }

    #[test]
    fn decision_is_deterministic_and_key_dependent() {
        let a = Sampler::new(0.5, 1);
        let b = Sampler::new(0.5, 2);
        let kept_a: Vec<bool> = (0..64).map(|q| a.keep(q)).collect();
        let kept_a2: Vec<bool> = (0..64).map(|q| a.keep(q)).collect();
        let kept_b: Vec<bool> = (0..64).map(|q| b.keep(q)).collect();
        assert_eq!(kept_a, kept_a2);
        assert_ne!(kept_a, kept_b, "distinct keys must sample differently");
    }

    #[test]
    fn garbage_fractions_degrade_to_never() {
        assert!(!Sampler::new(f64::NAN, 0).keep(3));
        assert!(!Sampler::new(f64::INFINITY, 0).keep(3));
        assert!(Sampler::new(2.0, 0).keep(3), "clamped to 1.0");
        assert!(!Sampler::new(-1.0, 0).keep(3), "clamped to 0.0");
    }
}
