//! Typed simulation instruments with associatively mergeable snapshots.
//!
//! The crate separates *live* instruments (cheap to update on the hot
//! path, owned by one thread) from their *frozen snapshots* (plain data
//! that merges associatively, crosses thread boundaries, and serializes
//! to stable JSON). The split is what lets the simulator's parallel
//! replication workers each record locally and still produce a result
//! that is bit-identical for any worker count: workers snapshot, the
//! harness folds the snapshots in replication input order.
//!
//! Instruments:
//! - [`Counter`] — monotone event count.
//! - [`Gauge`] — last-value instrument whose snapshot keeps the value
//!   distribution (count/sum/min/max).
//! - [`Histogram`] — full distribution: moments, extremes, fixed
//!   log-scale bins (exactly mergeable), plus live P² quantile
//!   estimators ([`P2Quantile`]) for in-flight queries.
//! - [`TimeSeries`] — bounded-memory (t, v) trace with stride-doubling
//!   decimation.
//!
//! Snapshots are collected into a named [`MetricsSnapshot`], merged with
//! [`MetricsSnapshot::merge`], and emitted as `mbac-metrics/v1` JSON via
//! [`MetricsSnapshot::to_json`] (see `results/METRICS_schema.md`).
//!
//! For runs too large to hold a growing snapshot in memory, the
//! [`stream`] module adds a bounded alternative: unit-of-work entries
//! still fold into the mergeable instruments, a deterministic
//! [`Sampler`] emits a fraction of raw entries for traceability, and a
//! [`StreamSink`] drains cumulative interval flushes through a
//! fixed-capacity [`IngestRing`] to `mbac-metrics/v2-stream` JSONL with
//! visible drop counters.

#![warn(missing_docs)]

pub mod instruments;
pub mod p2;
pub mod ring;
pub mod sampler;
pub mod snapshot;
pub mod stream;

pub use instruments::{
    bin_index, bin_representative, Aggregated, Counter, CounterSnapshot, Gauge, GaugeSnapshot,
    Histogram, HistogramSnapshot, Mergeable, SeriesSnapshot, TimeSeries,
};
pub use p2::P2Quantile;
pub use ring::IngestRing;
pub use sampler::{splitmix64, Sampler};
pub use snapshot::{MetricValue, MetricsSnapshot};
pub use stream::{
    refold_intervals, FieldBuf, StreamConfig, StreamHandle, StreamItem, StreamSink, StreamStats,
    MAX_SAMPLE_FIELDS, STREAM_SCHEMA,
};
