//! The typed instruments and their mergeable snapshots.
//!
//! Each instrument implements [`Aggregated`]: cheap O(1) recording on
//! the hot path, and a [`snapshot`](Aggregated::snapshot) that freezes
//! the state into a value implementing [`Mergeable`]. Snapshots from
//! independent workers (e.g. parallel simulation replications) combine
//! with [`Mergeable::merge`]; all integer state (counts, histogram
//! bins) merges exactly associatively and commutatively, and float
//! accumulators (sums) are associative up to one rounding per merge.

use crate::p2::P2Quantile;
use std::collections::BTreeMap;

/// An instrument whose state can be frozen into a mergeable snapshot —
/// the aggregation contract every metric type implements.
pub trait Aggregated {
    /// The frozen, mergeable form of this instrument's state.
    type Snapshot: Mergeable;

    /// Freezes the current state (the instrument keeps recording).
    fn snapshot(&self) -> Self::Snapshot;
}

/// Snapshots that combine associatively and order-insensitively, so
/// per-worker metrics can be reduced in any grouping. The simulator
/// always folds in input (replication) order, which additionally makes
/// the float sums bit-deterministic for any worker count.
pub trait Mergeable: Clone {
    /// Absorbs `other` into `self`.
    fn merge(&mut self, other: &Self);
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// A monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.n += 1;
    }

    /// Adds `k`.
    #[inline]
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.n
    }
}

/// Frozen [`Counter`] state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Total count.
    pub count: u64,
}

impl Aggregated for Counter {
    type Snapshot = CounterSnapshot;
    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot { count: self.n }
    }
}

impl Mergeable for CounterSnapshot {
    fn merge(&mut self, other: &Self) {
        self.count += other.count;
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// A sampled level (occupancy, admissible count, …): tracks the last
/// set value plus the distribution of all set values.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    last: f64,
    snap: GaugeSnapshot,
}

impl Gauge {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        Gauge {
            last: f64::NAN,
            snap: GaugeSnapshot::default(),
        }
    }

    /// Records a new level. Non-finite values are ignored.
    #[inline]
    pub fn set(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.last = v;
        self.snap.absorb(v);
    }

    /// The most recently set value (`NaN` before the first set). The
    /// last value is inherently per-instance and is *not* part of the
    /// mergeable snapshot.
    pub fn last(&self) -> f64 {
        self.last
    }
}

/// Frozen [`Gauge`] state: the distribution of set values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSnapshot {
    /// Number of sets.
    pub count: u64,
    /// Sum of set values.
    pub sum: f64,
    /// Welford sum of squared deviations (for [`variance`](Self::variance)).
    pub m2: f64,
    /// Smallest set value (`+∞` when empty).
    pub min: f64,
    /// Largest set value (`-∞` when empty).
    pub max: f64,
}

impl Default for GaugeSnapshot {
    fn default() -> Self {
        GaugeSnapshot {
            count: 0,
            sum: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl GaugeSnapshot {
    #[inline]
    fn absorb(&mut self, v: f64) {
        let mean0 = if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        };
        self.count += 1;
        self.sum += v;
        self.m2 += (v - mean0) * (v - self.sum / self.count as f64);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the set values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Unbiased sample variance (n−1 denominator; 0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Aggregated for Gauge {
    type Snapshot = GaugeSnapshot;
    fn snapshot(&self) -> GaugeSnapshot {
        self.snap
    }
}

impl Mergeable for GaugeSnapshot {
    fn merge(&mut self, other: &Self) {
        // Chan's parallel variance merge, before count/sum mutate.
        if other.count > 0 {
            if self.count == 0 {
                self.m2 = other.m2;
            } else {
                let (n1, n2) = (self.count as f64, other.count as f64);
                let delta = other.sum / n2 - self.sum / n1;
                self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Sub-buckets per octave of the fixed log-scale binning: 8 gives a
/// worst-case relative bucket error of `2^(1/16) − 1 ≈ 4.4%`.
const SUBS: f64 = 8.0;
/// Clamp for the scaled exponent (covers every normal f64 magnitude).
const BIN_CLAMP: i32 = 8191;

/// The fixed log-scale bin index of a finite value. The mapping is a
/// pure function of the value (no data-dependent bucket boundaries), so
/// bin counts from any two histograms add exactly.
pub fn bin_index(v: f64) -> i32 {
    if v == 0.0 {
        return 0;
    }
    let k = (SUBS * v.abs().log2()).floor() as i32;
    let inner = 1 + (k.clamp(-BIN_CLAMP, BIN_CLAMP) + BIN_CLAMP + 1);
    if v > 0.0 {
        inner
    } else {
        -inner
    }
}

/// The representative value (geometric bucket midpoint) of a bin index.
pub fn bin_representative(key: i32) -> f64 {
    if key == 0 {
        return 0.0;
    }
    let inner = key.abs();
    let k = (inner - 2 - BIN_CLAMP) as f64;
    let rep = ((k + 0.5) / SUBS).exp2();
    if key > 0 {
        rep
    } else {
        -rep
    }
}

/// A value distribution: running moments, fixed log-scale bins (the
/// mergeable quantile substrate), and live P² estimators for the
/// p50/p90/p99 quantiles.
#[derive(Debug, Clone)]
pub struct Histogram {
    snap: HistogramSnapshot,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            snap: HistogramSnapshot::default(),
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Records one sample. Non-finite samples are ignored.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mean0 = if self.snap.count == 0 {
            0.0
        } else {
            self.snap.sum / self.snap.count as f64
        };
        self.snap.count += 1;
        self.snap.sum += v;
        self.snap.m2 += (v - mean0) * (v - self.snap.sum / self.snap.count as f64);
        self.snap.min = self.snap.min.min(v);
        self.snap.max = self.snap.max.max(v);
        *self.snap.bins.entry(bin_index(v)).or_insert(0) += 1;
        self.p50.observe(v);
        self.p90.observe(v);
        self.p99.observe(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.snap.count
    }

    /// The live P² estimate for one of the maintained quantiles
    /// (`0.5`, `0.9`, `0.99`); finer than the binned snapshot quantile
    /// but order-sensitive and not mergeable.
    ///
    /// # Panics
    /// Panics for any other `p`.
    pub fn live_quantile(&self, p: f64) -> f64 {
        match p {
            _ if p == 0.5 => self.p50.estimate(),
            _ if p == 0.9 => self.p90.estimate(),
            _ if p == 0.99 => self.p99.estimate(),
            _ => panic!("live quantiles are maintained for p ∈ {{0.5, 0.9, 0.99}}, got {p}"),
        }
    }
}

/// Frozen [`Histogram`] state. Quantiles are derived from the fixed
/// log-scale bins, so they survive merging (at bucket resolution,
/// ≈ 4.4% worst-case relative error).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Welford sum of squared deviations (for [`variance`](Self::variance)).
    pub m2: f64,
    /// Smallest sample (`+∞` when empty).
    pub min: f64,
    /// Largest sample (`-∞` when empty).
    pub max: f64,
    /// Log-scale bin counts, keyed by [`bin_index`].
    pub bins: BTreeMap<i32, u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            bins: BTreeMap::new(),
        }
    }
}

impl HistogramSnapshot {
    /// Mean of the samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Unbiased sample variance (n−1 denominator; 0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Quantile estimate from the bins: the representative of the bin
    /// containing the `⌈p·count⌉`-th order statistic, clamped to the
    /// observed `[min, max]`. `NaN` when empty.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
        if self.count == 0 {
            return f64::NAN;
        }
        if p <= 0.0 {
            return self.min;
        }
        if p >= 1.0 {
            return self.max;
        }
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (&key, &n) in &self.bins {
            cum += n;
            if cum >= rank {
                return bin_representative(key).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl Aggregated for Histogram {
    type Snapshot = HistogramSnapshot;
    fn snapshot(&self) -> HistogramSnapshot {
        self.snap.clone()
    }
}

impl Mergeable for HistogramSnapshot {
    fn merge(&mut self, other: &Self) {
        // Chan's parallel variance merge, before count/sum mutate.
        if other.count > 0 {
            if self.count == 0 {
                self.m2 = other.m2;
            } else {
                let (n1, n2) = (self.count as f64, other.count as f64);
                let delta = other.sum / n2 - self.sum / n1;
                self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&key, &n) in &other.bins {
            *self.bins.entry(key).or_insert(0) += n;
        }
    }
}

// ---------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------

/// A `(t, value)` series with a fixed point budget: once the budget is
/// hit the retention stride doubles (every second retained point is
/// dropped), so an arbitrarily long run keeps a bounded, evenly-spaced
/// sketch of the trajectory. Record in non-decreasing time order.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    capacity: usize,
    stride: u64,
    seen: u64,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates a series keeping at most `capacity ≥ 2` points.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "time series capacity must be ≥ 2");
        TimeSeries {
            capacity,
            stride: 1,
            seen: 0,
            points: Vec::new(),
        }
    }

    /// Records one sample. Non-finite values are ignored.
    #[inline]
    pub fn record(&mut self, t: f64, v: f64) {
        if !t.is_finite() || !v.is_finite() {
            return;
        }
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() == self.capacity {
                // Halve the resolution: keep every other point.
                let mut i = 0;
                self.points.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                self.stride *= 2;
                if !self.seen.is_multiple_of(self.stride) {
                    self.seen += 1;
                    return;
                }
            }
            self.points.push((t, v));
        }
        self.seen += 1;
    }

    /// Points currently retained.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The retention stride (1 until the budget is first hit).
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

/// Frozen [`TimeSeries`] state.
///
/// Merging interleaves the two series by time and re-downsamples to the
/// larger capacity. The result is a pure function of the combined point
/// multiset (order-insensitive), but unlike the other snapshots it is
/// only approximately associative once downsampling triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Point budget.
    pub capacity: usize,
    /// Retained `(t, value)` points, ascending in time.
    pub points: Vec<(f64, f64)>,
}

impl Aggregated for TimeSeries {
    type Snapshot = SeriesSnapshot;
    fn snapshot(&self) -> SeriesSnapshot {
        SeriesSnapshot {
            capacity: self.capacity,
            points: self.points.clone(),
        }
    }
}

impl Mergeable for SeriesSnapshot {
    fn merge(&mut self, other: &Self) {
        self.capacity = self.capacity.max(other.capacity);
        self.points.extend_from_slice(&other.points);
        self.points
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        while self.points.len() > self.capacity {
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges() {
        let mut a = Counter::new();
        a.inc();
        a.add(4);
        let mut b = Counter::new();
        b.add(10);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 15);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_tracks_last_and_distribution() {
        let mut g = Gauge::new();
        assert!(g.last().is_nan());
        g.set(3.0);
        g.set(1.0);
        g.set(f64::NAN); // ignored
        g.set(2.0);
        assert_eq!(g.last(), 2.0);
        let s = g.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bin_index_orders_like_values() {
        let values = [
            -1e9, -42.0, -1.0, -1e-6, 0.0, 1e-9, 0.5, 1.0, 1.5, 2.0, 1e12,
        ];
        for w in values.windows(2) {
            assert!(bin_index(w[0]) <= bin_index(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn bin_representative_lands_in_bucket() {
        for &v in &[1e-8, 0.3, 1.0, 7.5, 1234.5, 9.9e7, -0.25, -3e4] {
            let key = bin_index(v);
            let rep = bin_representative(key);
            assert_eq!(bin_index(rep), key, "rep {rep} of {v} left its bucket");
            assert!(
                (rep / v > 0.0) && (rep / v) < 1.1 && (rep / v) > 0.9,
                "rep {rep} far from {v}"
            );
        }
        assert_eq!(bin_representative(bin_index(0.0)), 0.0);
    }

    #[test]
    fn histogram_moments_and_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // Binned quantiles: within the ±4.4% bucket resolution.
        assert!((s.quantile(0.5) / 500.0 - 1.0).abs() < 0.05);
        assert!((s.quantile(0.99) / 990.0 - 1.0).abs() < 0.05);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 1000.0);
        // Live P² estimates are finer.
        assert!((h.live_quantile(0.5) / 500.0 - 1.0).abs() < 0.02);
    }

    #[test]
    fn welford_variance_matches_two_pass() {
        let xs = [1.0, 2.5, -0.5, 4.0, 4.0, 0.0, 7.25];
        let mut h = Histogram::new();
        let mut g = Gauge::new();
        for &x in &xs {
            h.record(x);
            g.set(x);
        }
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((h.snapshot().variance() - var).abs() < 1e-12);
        assert!((g.snapshot().variance() - var).abs() < 1e-12);
        assert_eq!(Histogram::new().snapshot().variance(), 0.0);
    }

    #[test]
    fn variance_survives_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..200 {
            let v = ((i * 53) % 97) as f64 * 0.5;
            whole.record(v);
            if i < 80 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        let w = whole.snapshot();
        assert!(
            (s.variance() - w.variance()).abs() < 1e-9 * (1.0 + w.variance()),
            "{} vs {}",
            s.variance(),
            w.variance()
        );
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..500 {
            let v = ((i * 37) % 101) as f64 * 0.25 - 5.0;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        let w = whole.snapshot();
        assert_eq!(s.count, w.count);
        assert_eq!(s.bins, w.bins);
        assert_eq!(s.min, w.min);
        assert_eq!(s.max, w.max);
        assert!((s.sum - w.sum).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let s = Histogram::new().snapshot();
        assert!(s.mean().is_nan());
        assert!(s.quantile(0.5).is_nan());
        let mut m = s.clone();
        m.merge(&s);
        assert_eq!(m.count, 0);
    }

    #[test]
    fn time_series_downsamples_to_budget() {
        let mut ts = TimeSeries::new(8);
        for i in 0..1000 {
            ts.record(i as f64, (i * i) as f64);
        }
        assert!(ts.points().len() <= 8);
        assert!(ts.stride() >= 128);
        // Retained points are evenly strided from t = 0.
        for w in ts.points().windows(2) {
            assert_eq!((w[1].0 - w[0].0) as u64, ts.stride());
        }
    }

    #[test]
    fn series_merge_is_time_sorted_and_bounded() {
        let mut a = TimeSeries::new(16);
        let mut b = TimeSeries::new(16);
        for i in 0..10 {
            a.record(2.0 * i as f64, 1.0);
            b.record(2.0 * i as f64 + 1.0, 2.0);
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert!(s.points.len() <= 16);
        for w in s.points.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Order-insensitivity.
        let mut r = b.snapshot();
        r.merge(&a.snapshot());
        assert_eq!(s, r);
    }
}
