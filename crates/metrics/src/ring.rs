//! The bounded lock-free ingest ring.
//!
//! A fixed-capacity multi-producer queue (Vyukov's bounded MPMC
//! algorithm, used here with a single consumer). It carries two
//! workloads: the decision plane's measurement ingest in `mbac-serve`
//! (which re-exports it) and the streaming metrics sink's record feed
//! ([`crate::stream`]). Two properties carry both correctness
//! arguments:
//!
//! * **per-producer FIFO** — a producer's pushes are claimed at strictly
//!   increasing cursor positions, and the consumer drains positions in
//!   order, so every producer's items come out in its program order
//!   (global order across producers is some interleaving, which is all
//!   the sharding proof needs — each link has one producer);
//! * **loss-free** — the ring never drops silently:
//!   [`IngestRing::try_push`] fails *visibly* when full (the
//!   backpressure signal; the streaming sink turns it into a drop
//!   counter) and [`IngestRing::push_spin`] spins until space frees.
//!
//! The implementation is allocation-free after construction and uses no
//! locks: each slot carries a sequence number that encodes whether it is
//! ready for the current lap's producer or consumer.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads the cursors to their own cache lines so producers hammering the
/// enqueue cursor do not false-share with the consumer's dequeue cursor.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Lap marker: `pos` when writable by the producer claiming `pos`,
    /// `pos + 1` when readable, `pos + capacity` when writable again on
    /// the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer queue (single consumer by
/// convention; the algorithm is safe for multiple consumers too).
pub struct IngestRing<T> {
    slots: Box<[Slot<T>]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    enqueue: CachePadded<AtomicUsize>,
    dequeue: CachePadded<AtomicUsize>,
}

// The ring hands each value from exactly one producer to exactly one
// consumer (ownership transfer), so `T: Send` suffices.
unsafe impl<T: Send> Send for IngestRing<T> {}
unsafe impl<T: Send> Sync for IngestRing<T> {}

impl<T> IngestRing<T> {
    /// Creates a ring holding at least `capacity` items (rounded up to
    /// the next power of two, minimum 2).
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1");
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        IngestRing {
            slots,
            mask: cap - 1,
            enqueue: CachePadded(AtomicUsize::new(0)),
            dequeue: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate number of items currently queued (exact when no
    /// operation is in flight).
    pub fn len(&self) -> usize {
        let tail = self.enqueue.0.load(Ordering::Acquire);
        let head = self.dequeue.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the ring is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or returns it when the ring is full — the
    /// backpressure signal of the closed loop. Callable from any thread.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut pos = self.enqueue.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot is writable for exactly this position: claim it.
                match self.enqueue.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot until the seq store below.
                        unsafe { (*slot.value.get()).write(item) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // Consumer has not freed this slot from the previous
                // lap: the ring is full.
                return Err(item);
            } else {
                // Another producer claimed `pos`; chase the cursor.
                pos = self.enqueue.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueues `item`, spinning while the ring is full.
    pub fn push_spin(&self, mut item: T) {
        loop {
            match self.try_push(item) {
                Ok(()) => return,
                Err(back) => {
                    item = back;
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Dequeues the oldest item, or `None` when the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        let mut pos = self.dequeue.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.dequeue.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Free the slot for the producer's next lap.
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // Producer has not published this position yet: empty.
                return None;
            } else {
                pos = self.dequeue.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for IngestRing<T> {
    fn drop(&mut self) {
        // Drain whatever was published but never consumed.
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(IngestRing::<u32>::with_capacity(1).capacity(), 2);
        assert_eq!(IngestRing::<u32>::with_capacity(5).capacity(), 8);
        assert_eq!(IngestRing::<u32>::with_capacity(8).capacity(), 8);
    }

    #[test]
    fn fifo_within_one_thread() {
        let ring = IngestRing::with_capacity(8);
        for i in 0..8 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.len(), 8);
        for i in 0..8 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn full_ring_rejects_with_the_item() {
        let ring = IngestRing::with_capacity(2);
        ring.try_push(10).unwrap();
        ring.try_push(11).unwrap();
        assert_eq!(ring.try_push(12), Err(12));
        assert_eq!(ring.try_pop(), Some(10));
        ring.try_push(12).unwrap();
        assert_eq!(ring.try_pop(), Some(11));
        assert_eq!(ring.try_pop(), Some(12));
    }

    #[test]
    fn wraps_around_many_laps() {
        let ring = IngestRing::with_capacity(4);
        for lap in 0u64..100 {
            for i in 0..3 {
                ring.try_push(lap * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(ring.try_pop(), Some(lap * 10 + i));
            }
        }
        assert!(ring.is_empty());
    }

    /// Unconsumed items are dropped with the ring (no leak): count drops
    /// of a guard type.
    #[test]
    fn drop_releases_unpopped_items() {
        struct Guard(Arc<AtomicU64>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let ring = IngestRing::with_capacity(8);
        for _ in 0..5 {
            assert!(ring.try_push(Guard(Arc::clone(&drops))).is_ok());
        }
        drop(ring.try_pop()); // one consumed
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(ring);
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }
}
