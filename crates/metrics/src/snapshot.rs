//! Named collections of frozen instrument states, with merge and
//! structured-JSON emission.
//!
//! A [`MetricsSnapshot`] is what crosses thread/process boundaries: the
//! simulator's per-replication workers each produce one, the harness
//! folds them in replication order with [`MetricsSnapshot::merge`], and
//! the CLI serializes the result with [`MetricsSnapshot::to_json`]
//! (contract: `results/METRICS_schema.md`).

use crate::instruments::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Mergeable, SeriesSnapshot,
};
use std::collections::BTreeMap;

/// One frozen instrument, tagged by kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A [`crate::Counter`] snapshot.
    Counter(CounterSnapshot),
    /// A [`crate::Gauge`] snapshot.
    Gauge(GaugeSnapshot),
    /// A [`crate::Histogram`] snapshot.
    Histogram(HistogramSnapshot),
    /// A [`crate::TimeSeries`] snapshot.
    Series(SeriesSnapshot),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Series(_) => "series",
        }
    }

    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => a.merge(b),
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => a.merge(b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (MetricValue::Series(a), MetricValue::Series(b)) => a.merge(b),
            (a, b) => panic!(
                "cannot merge metric kinds {} and {} under one name",
                a.kind(),
                b.kind()
            ),
        }
    }
}

/// A named, mergeable collection of frozen instruments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Inserts (or replaces) one named metric.
    pub fn insert<S: Into<String>>(&mut self, name: S, value: MetricValue) {
        self.entries.insert(name.into(), value);
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Metric names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges `other` into `self`, metric by metric (union of names).
    ///
    /// # Panics
    /// Panics if a name is bound to different instrument kinds.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.entries {
            match self.entries.get_mut(name) {
                Some(mine) => mine.merge(value),
                None => {
                    self.entries.insert(name.clone(), value.clone());
                }
            }
        }
    }

    /// Merges `other` into `self` with every incoming name rewritten to
    /// `<prefix>.<name>` — the namespacing primitive for components that
    /// publish one instrument bundle per unit (the decision plane's
    /// per-shard `serve.shard<i>.*` entries, for example) without
    /// hand-formatting every key at each record site.
    ///
    /// # Panics
    /// Panics if a rewritten name collides with an existing entry of a
    /// different instrument kind (same contract as
    /// [`MetricsSnapshot::merge`]).
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsSnapshot) {
        if other.entries.is_empty() {
            return;
        }
        // One probe buffer for the whole merge: `BTreeMap<String, _>`
        // looks up by `&str`, so the steady state (every prefixed name
        // already present — per-link bundles merged once per
        // replication) allocates exactly once per call instead of once
        // per entry. Only a first-seen name pays for its key.
        let longest = other.entries.keys().map(String::len).max().unwrap_or(0);
        let mut key = String::with_capacity(prefix.len() + 1 + longest);
        key.push_str(prefix);
        key.push('.');
        let base = key.len();
        for (name, value) in &other.entries {
            key.truncate(base);
            key.push_str(name);
            match self.entries.get_mut(key.as_str()) {
                Some(mine) => mine.merge(value),
                None => {
                    self.entries.insert(key.clone(), value.clone());
                }
            }
        }
    }

    /// Serializes per the `mbac-metrics/v1` contract
    /// (`results/METRICS_schema.md`): a stable, name-sorted JSON object.
    /// Non-finite floats (e.g. the min of an empty histogram) become
    /// `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"mbac-metrics/v1\",\n  \"metrics\": {");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(": ");
            json_value(&mut out, value);
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Appends the bare name-sorted metrics object (the value of the v1
    /// `"metrics"` key, single-line) — the encoding the v2 streaming
    /// JSONL embeds in its interval records.
    pub fn write_metrics_object(&self, out: &mut String) {
        out.push('{');
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json_string(out, name);
            out.push_str(": ");
            json_value(out, value);
        }
        out.push('}');
    }
}

pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest-round-trip float formatting; non-finite → `null` (JSON has
/// no NaN/Infinity).
pub(crate) fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn json_value(out: &mut String, value: &MetricValue) {
    match value {
        MetricValue::Counter(c) => {
            out.push_str(&format!(
                "{{\"type\": \"counter\", \"count\": {}}}",
                c.count
            ));
        }
        MetricValue::Gauge(g) => {
            out.push_str(&format!("{{\"type\": \"gauge\", \"count\": {}, ", g.count));
            out.push_str("\"sum\": ");
            json_f64(out, g.sum);
            out.push_str(", \"min\": ");
            json_f64(out, g.min);
            out.push_str(", \"max\": ");
            json_f64(out, g.max);
            out.push_str(", \"mean\": ");
            json_f64(out, g.mean());
            out.push_str(", \"var\": ");
            json_f64(out, g.variance());
            out.push('}');
        }
        MetricValue::Histogram(h) => {
            out.push_str(&format!(
                "{{\"type\": \"histogram\", \"count\": {}, ",
                h.count
            ));
            out.push_str("\"sum\": ");
            json_f64(out, h.sum);
            out.push_str(", \"min\": ");
            json_f64(out, h.min);
            out.push_str(", \"max\": ");
            json_f64(out, h.max);
            out.push_str(", \"mean\": ");
            json_f64(out, h.mean());
            out.push_str(", \"var\": ");
            json_f64(out, h.variance());
            out.push_str(", \"p50\": ");
            json_f64(out, h.quantile(0.5));
            out.push_str(", \"p90\": ");
            json_f64(out, h.quantile(0.9));
            out.push_str(", \"p99\": ");
            json_f64(out, h.quantile(0.99));
            out.push_str(", \"bins\": [");
            for (i, (&key, &n)) in h.bins.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{key}, {n}]"));
            }
            out.push_str("]}");
        }
        MetricValue::Series(s) => {
            out.push_str(&format!(
                "{{\"type\": \"series\", \"capacity\": {}, \"points\": [",
                s.capacity
            ));
            for (i, &(t, v)) in s.points.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                json_f64(out, t);
                out.push_str(", ");
                json_f64(out, v);
                out.push(']');
            }
            out.push_str("]}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruments::{Aggregated, Counter, Gauge, Histogram, TimeSeries};

    fn sample() -> MetricsSnapshot {
        let mut c = Counter::new();
        c.add(7);
        let mut g = Gauge::new();
        g.set(2.5);
        g.set(3.5);
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let mut ts = TimeSeries::new(4);
        ts.record(0.0, 1.0);
        ts.record(1.0, 2.0);
        let mut snap = MetricsSnapshot::new();
        snap.insert("a.count", MetricValue::Counter(c.snapshot()));
        snap.insert("b.level", MetricValue::Gauge(g.snapshot()));
        snap.insert("c.dist", MetricValue::Histogram(h.snapshot()));
        snap.insert("d.series", MetricValue::Series(ts.snapshot()));
        snap
    }

    #[test]
    fn merge_unions_names_and_sums() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        match a.get("a.count") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 14),
            other => panic!("{other:?}"),
        }
        match a.get("c.dist") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 200),
            other => panic!("{other:?}"),
        }
        let mut lone = MetricsSnapshot::new();
        lone.insert(
            "only.here",
            MetricValue::Counter(CounterSnapshot { count: 1 }),
        );
        a.merge(&lone);
        assert!(a.get("only.here").is_some());
    }

    #[test]
    fn merge_prefixed_rewrites_names_and_sums_on_collision() {
        let mut plane = MetricsSnapshot::new();
        let shard = sample();
        plane.merge_prefixed("serve.shard0", &shard);
        plane.merge_prefixed("serve.shard1", &shard);
        // Second bundle under an existing prefix merges, not replaces.
        plane.merge_prefixed("serve.shard0", &shard);
        assert!(plane.get("a.count").is_none(), "unprefixed name leaked");
        match plane.get("serve.shard0.a.count") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 14),
            other => panic!("{other:?}"),
        }
        match plane.get("serve.shard1.a.count") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 7),
            other => panic!("{other:?}"),
        }
        assert_eq!(plane.len(), 2 * sample().len());
    }

    #[test]
    #[should_panic(expected = "cannot merge metric kinds")]
    fn kind_mismatch_panics() {
        let mut a = MetricsSnapshot::new();
        a.insert("x", MetricValue::Counter(CounterSnapshot { count: 1 }));
        let mut b = MetricsSnapshot::new();
        b.insert("x", MetricValue::Gauge(GaugeSnapshot::default()));
        a.merge(&b);
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let snap = sample();
        let json = snap.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"mbac-metrics/v1\""));
        for key in [
            "\"a.count\"",
            "\"b.level\"",
            "\"c.dist\"",
            "\"d.series\"",
            "\"type\": \"histogram\"",
            "\"p99\"",
            "\"bins\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Stable across identical snapshots.
        assert_eq!(json, sample().to_json());
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_renders_empty_extremes_as_null() {
        let mut snap = MetricsSnapshot::new();
        snap.insert(
            "empty",
            MetricValue::Histogram(HistogramSnapshot::default()),
        );
        let json = snap.to_json();
        assert!(json.contains("\"min\": null"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\u000ad\"");
    }
}
