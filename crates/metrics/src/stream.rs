//! Bounded-memory streaming emission: a JSONL writer fed by a
//! fixed-capacity ring.
//!
//! The snapshot pipeline accumulates everything in memory and emits one
//! merged `mbac-metrics/v1` document at the end — exactly right for
//! deterministic goldens, exactly wrong at 10⁶ flows where the metrics
//! themselves become the memory ceiling. Streaming mode inverts the
//! shape: unit-of-work entries still fold into worker-local mergeable
//! instruments (aggregates stay *exact* and bit-identical to snapshot
//! mode), but what crosses to the sink is bounded:
//!
//! * **samples** — a deterministic fraction of raw entries
//!   ([`crate::Sampler`]), fixed-size records for traceability;
//! * **intervals** — periodic flushes of the *cumulative* per-stream
//!   aggregate. Cumulative (Prometheus-style), not deltas: the last
//!   interval of each stream, merged in stream order, reproduces the
//!   snapshot-mode aggregate bit for bit ([`refold_intervals`]), and a
//!   torn run still has exact aggregates up to its last flush.
//!
//! Producers feed a fixed-capacity [`IngestRing`]; one writer thread
//! drains it to JSONL (`mbac-metrics/v2-stream`, see
//! `results/METRICS_schema.md`), polling at 50µs when records flow and
//! backing off to 5ms when idle (so an idle stream costs no scheduler
//! churn). A full ring never blocks the simulation and never grows: the
//! record is dropped and a visible drop counter increments, reported in
//! the final `summary` line. Retained state is therefore bounded by the
//! ring capacity plus one live instrument bundle per worker —
//! independent of flow count. Size the ring for the burst rate, not the
//! average: a burst landing after an idle stretch must fit in the ring
//! for up to the full backoff before the writer re-engages.

use crate::ring::IngestRing;
use crate::sampler::{splitmix64, Sampler};
use crate::snapshot::{json_f64, json_string, MetricsSnapshot};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Schema tag on the header line of every v2 stream.
pub const STREAM_SCHEMA: &str = "mbac-metrics/v2-stream";

/// Field capacity of a sample record (fixed so records stay
/// allocation-free on the hot path).
pub const MAX_SAMPLE_FIELDS: usize = 12;

/// A fixed-capacity list of named values — the allocation-free payload
/// of a sample record. Non-finite values and pushes past
/// [`MAX_SAMPLE_FIELDS`] are silently ignored.
#[derive(Debug, Clone, Copy)]
pub struct FieldBuf {
    len: usize,
    items: [(&'static str, f64); MAX_SAMPLE_FIELDS],
}

impl Default for FieldBuf {
    fn default() -> Self {
        FieldBuf {
            len: 0,
            items: [("", 0.0); MAX_SAMPLE_FIELDS],
        }
    }
}

impl FieldBuf {
    /// An empty field list.
    pub fn new() -> Self {
        FieldBuf::default()
    }

    /// Appends one named value (no-op when full or `v` is non-finite).
    #[inline]
    pub fn push(&mut self, name: &'static str, v: f64) {
        if self.len < MAX_SAMPLE_FIELDS && v.is_finite() {
            self.items[self.len] = (name, v);
            self.len += 1;
        }
    }

    /// Number of recorded fields.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no field has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The recorded `(name, value)` pairs, in push order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.items[..self.len].iter().copied()
    }
}

/// One record crossing the ring from a producer to the writer.
///
/// The `Sample` variant is deliberately inline-large (a [`FieldBuf`] is
/// ~200 bytes): samples are the hot-path record, and boxing the fields
/// would put an allocation on every sampled entry — the ring's slots
/// are sized for the largest variant either way.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// A sampled raw unit-of-work entry.
    Sample {
        /// Producer stream index (replication or shard).
        stream: u64,
        /// Entry sequence number within the stream.
        seq: u64,
        /// Simulation/measurement time of the entry.
        t: f64,
        /// The entry's finite fields.
        fields: FieldBuf,
    },
    /// A cumulative aggregate flush: every instrument of `stream` folded
    /// from its start through entry `seq`.
    Interval {
        /// Producer stream index (replication or shard).
        stream: u64,
        /// Entries folded into this flush (cumulative count).
        seq: u64,
        /// Time of the last folded entry.
        t: f64,
        /// The cumulative per-stream aggregate.
        metrics: MetricsSnapshot,
    },
}

/// Streaming sink shape: ring size, sampling fraction, flush cadence.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Ring capacity in records (rounded up to a power of two, min 2).
    pub ring_capacity: usize,
    /// Fraction of raw entries emitted as samples (deterministic, see
    /// [`Sampler`]); `0.0` disables sampling.
    pub sample_fraction: f64,
    /// Entries between cumulative interval flushes; `0` flushes only
    /// the final per-stream interval.
    pub flush_interval: u64,
    /// Base key for per-stream sampler derivation.
    pub key: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            ring_capacity: 1024,
            sample_fraction: 0.0,
            flush_interval: 0,
            key: 0x6D62_6163, // "mbac"
        }
    }
}

/// What a finished stream emitted (and dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Sample records written.
    pub samples: u64,
    /// Interval records written.
    pub intervals: u64,
    /// Records dropped at a full ring (visible backpressure).
    pub dropped: u64,
    /// The ring's actual capacity (after power-of-two rounding).
    pub ring_capacity: usize,
}

struct Shared {
    ring: IngestRing<StreamItem>,
    dropped: AtomicU64,
    done: AtomicBool,
}

/// The producer side of a streaming sink: cheap to clone, safe to share
/// across workers. Emission never blocks — a full ring counts a drop.
#[derive(Clone)]
pub struct StreamHandle {
    shared: Arc<Shared>,
    cfg: StreamConfig,
}

impl std::fmt::Debug for StreamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHandle")
            .field("cfg", &self.cfg)
            .field("queued", &self.shared.ring.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl StreamHandle {
    /// The sink's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The sampler for producer stream `stream`, derived so the keep
    /// decisions are a pure function of `(config key, stream, seq)` —
    /// invariant under worker count and engine choice.
    pub fn sampler_for(&self, stream: u64) -> Sampler {
        Sampler::new(
            self.cfg.sample_fraction,
            splitmix64(self.cfg.key ^ splitmix64(stream)),
        )
    }

    /// Entries between cumulative interval flushes (0 = final only).
    pub fn flush_interval(&self) -> u64 {
        self.cfg.flush_interval
    }

    /// Enqueues one record; a full ring drops it and increments the
    /// visible drop counter instead of blocking the producer.
    #[inline]
    pub fn emit(&self, item: StreamItem) {
        if self.shared.ring.try_push(item).is_err() {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records dropped so far at a full ring.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

enum Backend {
    Jsonl(Box<dyn Write + Send>),
    Collect(Arc<Mutex<Vec<StreamItem>>>),
}

/// The consumer side: owns the writer thread draining the ring. Create
/// one per run, hand [`StreamSink::handle`] clones to producers, then
/// call [`StreamSink::finish`] after every producer has stopped.
pub struct StreamSink {
    handle: StreamHandle,
    writer: Option<JoinHandle<io::Result<(u64, u64)>>>,
}

impl StreamSink {
    fn spawn(cfg: StreamConfig, mut backend: Backend) -> Self {
        let shared = Arc::new(Shared {
            ring: IngestRing::with_capacity(cfg.ring_capacity),
            dropped: AtomicU64::new(0),
            done: AtomicBool::new(false),
        });
        let handle = StreamHandle {
            shared: Arc::clone(&shared),
            cfg,
        };
        let ring_capacity = shared.ring.capacity();
        let writer = std::thread::spawn(move || -> io::Result<(u64, u64)> {
            let mut line = String::new();
            if let Backend::Jsonl(w) = &mut backend {
                header_line(&mut line, &cfg, ring_capacity);
                w.write_all(line.as_bytes())?;
            }
            let (mut samples, mut intervals) = (0u64, 0u64);
            // Idle sleep backs off exponentially: a hot stream is drained
            // at 50µs latency, but an idle stream (the common case — the
            // default config emits only final intervals) must not keep
            // waking the writer and context-switching against the
            // producers, which on a single-core host costs more than the
            // entire fold path. The first pop resets the backoff; the
            // price is that records produced in a burst after a long idle
            // can see up to `IDLE_MAX` of ring residency before draining
            // (size the ring for the burst, not the average).
            const IDLE_MIN: Duration = Duration::from_micros(50);
            const IDLE_MAX: Duration = Duration::from_millis(5);
            let mut idle = IDLE_MIN;
            loop {
                match shared.ring.try_pop() {
                    Some(item) => {
                        idle = IDLE_MIN;
                        match &item {
                            StreamItem::Sample { .. } => samples += 1,
                            StreamItem::Interval { .. } => intervals += 1,
                        }
                        match &mut backend {
                            Backend::Jsonl(w) => {
                                line.clear();
                                item_line(&mut line, &item);
                                w.write_all(line.as_bytes())?;
                            }
                            Backend::Collect(out) => {
                                out.lock().expect("collector poisoned").push(item);
                            }
                        }
                    }
                    None => {
                        if shared.done.load(Ordering::Acquire) && shared.ring.is_empty() {
                            break;
                        }
                        std::thread::sleep(idle);
                        idle = (idle * 2).min(IDLE_MAX);
                    }
                }
            }
            if let Backend::Jsonl(w) = &mut backend {
                line.clear();
                summary_line(
                    &mut line,
                    samples,
                    intervals,
                    shared.dropped.load(Ordering::Relaxed),
                    ring_capacity,
                );
                w.write_all(line.as_bytes())?;
                w.flush()?;
            }
            Ok((samples, intervals))
        });
        StreamSink {
            handle,
            writer: Some(writer),
        }
    }

    /// A sink writing v2 JSONL records to `w`.
    pub fn to_writer(cfg: StreamConfig, w: Box<dyn Write + Send>) -> Self {
        StreamSink::spawn(cfg, Backend::Jsonl(w))
    }

    /// A sink writing v2 JSONL records to the file at `path`
    /// (truncating), buffered.
    pub fn to_path(cfg: StreamConfig, path: &std::path::Path) -> io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(StreamSink::to_writer(cfg, Box::new(io::BufWriter::new(f))))
    }

    /// A sink collecting the raw [`StreamItem`]s in memory instead of
    /// serializing — for tests asserting on record structure (e.g. the
    /// interval re-fold identity).
    pub fn collecting(cfg: StreamConfig) -> (Self, Arc<Mutex<Vec<StreamItem>>>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let sink = StreamSink::spawn(cfg, Backend::Collect(Arc::clone(&out)));
        (sink, out)
    }

    /// A producer handle for this sink.
    pub fn handle(&self) -> StreamHandle {
        self.handle.clone()
    }

    /// Stops the writer once the ring drains and returns what was
    /// emitted. Call after every producer has stopped emitting (drops
    /// counted after the writer exits would go unreported).
    pub fn finish(mut self) -> io::Result<StreamStats> {
        self.handle.shared.done.store(true, Ordering::Release);
        let writer = self.writer.take().expect("finish called once");
        let (samples, intervals) = writer.join().expect("stream writer panicked")?;
        Ok(StreamStats {
            samples,
            intervals,
            dropped: self.handle.dropped(),
            ring_capacity: self.handle.shared.ring.capacity(),
        })
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        // A sink dropped without `finish` still stops its thread.
        if let Some(writer) = self.writer.take() {
            self.handle.shared.done.store(true, Ordering::Release);
            let _ = writer.join();
        }
    }
}

/// Re-folds a captured record stream into the end-of-run aggregate:
/// each stream's *last* cumulative interval (highest `seq`; later
/// record wins a seq tie, since instruments that do not advance the
/// seq may have moved between the two emissions), merged in ascending
/// stream order — the same order the session merges per-rep snapshots,
/// so the result is bit-identical to snapshot mode.
pub fn refold_intervals(items: &[StreamItem]) -> MetricsSnapshot {
    let mut last: std::collections::BTreeMap<u64, (u64, &MetricsSnapshot)> =
        std::collections::BTreeMap::new();
    for item in items {
        if let StreamItem::Interval {
            stream,
            seq,
            metrics,
            ..
        } = item
        {
            match last.get(stream) {
                Some((best, _)) if best > seq => {}
                _ => {
                    last.insert(*stream, (*seq, metrics));
                }
            }
        }
    }
    let mut out = MetricsSnapshot::new();
    for (_, (_, metrics)) in last {
        out.merge(metrics);
    }
    out
}

fn header_line(out: &mut String, cfg: &StreamConfig, ring_capacity: usize) {
    out.push_str("{\"k\": \"header\", \"schema\": \"");
    out.push_str(STREAM_SCHEMA);
    out.push_str("\", \"ring_capacity\": ");
    out.push_str(&ring_capacity.to_string());
    out.push_str(", \"sample_fraction\": ");
    json_f64(out, cfg.sample_fraction);
    out.push_str(", \"flush_interval\": ");
    out.push_str(&cfg.flush_interval.to_string());
    out.push_str("}\n");
}

fn item_line(out: &mut String, item: &StreamItem) {
    match item {
        StreamItem::Sample {
            stream,
            seq,
            t,
            fields,
        } => {
            out.push_str("{\"k\": \"sample\", \"stream\": ");
            out.push_str(&stream.to_string());
            out.push_str(", \"seq\": ");
            out.push_str(&seq.to_string());
            out.push_str(", \"t\": ");
            json_f64(out, *t);
            out.push_str(", \"fields\": {");
            for (i, (name, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json_string(out, name);
                out.push_str(": ");
                json_f64(out, v);
            }
            out.push_str("}}\n");
        }
        StreamItem::Interval {
            stream,
            seq,
            t,
            metrics,
        } => {
            out.push_str("{\"k\": \"interval\", \"stream\": ");
            out.push_str(&stream.to_string());
            out.push_str(", \"seq\": ");
            out.push_str(&seq.to_string());
            out.push_str(", \"t\": ");
            json_f64(out, *t);
            out.push_str(", \"metrics\": ");
            metrics.write_metrics_object(out);
            out.push_str("}\n");
        }
    }
}

fn summary_line(
    out: &mut String,
    samples: u64,
    intervals: u64,
    dropped: u64,
    ring_capacity: usize,
) {
    out.push_str("{\"k\": \"summary\", \"samples\": ");
    out.push_str(&samples.to_string());
    out.push_str(", \"intervals\": ");
    out.push_str(&intervals.to_string());
    out.push_str(", \"dropped\": ");
    out.push_str(&dropped.to_string());
    out.push_str(", \"ring_capacity\": ");
    out.push_str(&ring_capacity.to_string());
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruments::{Aggregated, Counter};
    use crate::snapshot::MetricValue;

    fn counter_snapshot(n: u64) -> MetricsSnapshot {
        let mut c = Counter::new();
        c.add(n);
        let mut s = MetricsSnapshot::new();
        s.insert("n", MetricValue::Counter(c.snapshot()));
        s
    }

    #[test]
    fn jsonl_lines_carry_header_records_and_summary() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = StreamSink::to_writer(
            StreamConfig {
                sample_fraction: 1.0,
                flush_interval: 4,
                ..StreamConfig::default()
            },
            Box::new(SharedWriter(Arc::clone(&buf))),
        );
        let h = sink.handle();
        let mut fields = FieldBuf::new();
        fields.push("load", 3.25);
        fields.push("bogus", f64::NAN); // ignored
        h.emit(StreamItem::Sample {
            stream: 0,
            seq: 1,
            t: 0.5,
            fields,
        });
        h.emit(StreamItem::Interval {
            stream: 0,
            seq: 4,
            t: 2.0,
            metrics: counter_snapshot(4),
        });
        let stats = sink.finish().unwrap();
        assert_eq!((stats.samples, stats.intervals, stats.dropped), (1, 1, 0));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"schema\": \"mbac-metrics/v2-stream\""));
        assert!(lines[0].contains("\"flush_interval\": 4"));
        assert!(text.contains("\"k\": \"sample\""));
        assert!(text.contains("\"load\": 3.25"));
        assert!(!text.contains("bogus"));
        assert!(text.contains("\"k\": \"interval\""));
        assert!(text.contains("\"type\": \"counter\", \"count\": 4"));
        assert!(lines[3].contains("\"k\": \"summary\""));
        assert!(lines[3].contains("\"dropped\": 0"));
        for line in &lines {
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced: {line}"
            );
        }
    }

    #[test]
    fn refold_takes_last_interval_per_stream_in_stream_order() {
        let items = vec![
            StreamItem::Interval {
                stream: 1,
                seq: 2,
                t: 1.0,
                metrics: counter_snapshot(2),
            },
            StreamItem::Interval {
                stream: 0,
                seq: 8,
                t: 4.0,
                metrics: counter_snapshot(8),
            },
            StreamItem::Interval {
                stream: 1,
                seq: 6,
                t: 3.0,
                metrics: counter_snapshot(6),
            },
            StreamItem::Sample {
                stream: 0,
                seq: 1,
                t: 0.1,
                fields: FieldBuf::new(),
            },
            // Stale flush, arrives late: must lose to seq 8.
            StreamItem::Interval {
                stream: 0,
                seq: 4,
                t: 2.0,
                metrics: counter_snapshot(4),
            },
            // Seq tie: the later record wins (instruments that do not
            // advance the seq may have moved between the emissions).
            StreamItem::Interval {
                stream: 0,
                seq: 8,
                t: 5.0,
                metrics: counter_snapshot(9),
            },
        ];
        let folded = refold_intervals(&items);
        match folded.get("n") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 9 + 6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn field_buf_caps_and_filters() {
        let mut f = FieldBuf::new();
        assert!(f.is_empty());
        for i in 0..(MAX_SAMPLE_FIELDS + 3) {
            f.push("x", i as f64);
        }
        assert_eq!(f.len(), MAX_SAMPLE_FIELDS);
        f.push("y", f64::INFINITY);
        assert_eq!(f.len(), MAX_SAMPLE_FIELDS);
    }
}
