//! The P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).
//!
//! Estimates one quantile of a stream in O(1) space and time per
//! observation by maintaining five markers whose heights are adjusted
//! with a piecewise-parabolic (hence "P²") interpolation whenever their
//! positions drift from the ideal positions for the target quantile.
//!
//! The estimator is *order-sensitive* (two streams with the same
//! multiset of values can give slightly different estimates), so it
//! backs the *live* quantile queries on a [`crate::Histogram`]; the
//! histogram's mergeable snapshot derives quantiles from fixed log-scale
//! bins instead, which merge exactly.

/// Streaming estimator for a single quantile `p ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (ascending once initialized).
    q: [f64; 5],
    /// Marker positions, 1-indexed as in the paper.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of (finite) observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation. Non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.count <= 5 {
            // Initialization: collect the first five into sorted order.
            let k = self.count as usize - 1;
            self.q[k] = x;
            self.q[..=k].sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            return;
        }

        // Find the cell containing x and clamp the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three interior markers if they are off by ≥ 1.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate: the middle marker once ≥ 5 observations
    /// exist, the exact sample quantile of the buffered values before
    /// that, and `NaN` for an empty stream.
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            c if c >= 5 => self.q[2],
            c => {
                // Exact quantile over the first `c` (sorted) values,
                // type-7 interpolation.
                let c = c as usize;
                let h = self.p * (c - 1) as f64;
                let lo = h.floor() as usize;
                let hi = h.ceil() as usize;
                if lo == hi {
                    self.q[lo]
                } else {
                    self.q[lo] + (h - lo as f64) * (self.q[hi] - self.q[lo])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(xs: &[f64], p: f64) -> f64 {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let h = p * (s.len() - 1) as f64;
        let (lo, hi) = (h.floor() as usize, h.ceil() as usize);
        if lo == hi {
            s[lo]
        } else {
            s[lo] + (h - lo as f64) * (s[hi] - s[lo])
        }
    }

    #[test]
    fn empty_is_nan_small_is_exact() {
        let mut e = P2Quantile::new(0.5);
        assert!(e.estimate().is_nan());
        for &x in &[3.0, 1.0, 2.0] {
            e.observe(x);
        }
        assert_eq!(e.estimate(), 2.0);
    }

    #[test]
    fn median_of_uniform_ramp() {
        let mut e = P2Quantile::new(0.5);
        // Deterministic shuffle of 0..10000 via an LCG.
        let mut s = 12345u64;
        for _ in 0..10_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            e.observe((s >> 11) as f64 / (1u64 << 53) as f64);
        }
        assert!((e.estimate() - 0.5).abs() < 0.02, "{}", e.estimate());
    }

    #[test]
    fn p99_of_exponential_like_tail() {
        let mut e = P2Quantile::new(0.99);
        let mut xs = Vec::new();
        let mut s = 99u64;
        for _ in 0..20_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((s >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
            let x = -u.ln(); // Exp(1)
            xs.push(x);
            e.observe(x);
        }
        let exact = exact_quantile(&xs, 0.99);
        assert!(
            (e.estimate() / exact - 1.0).abs() < 0.1,
            "p2 {} vs exact {exact}",
            e.estimate()
        );
    }

    #[test]
    fn ignores_non_finite() {
        let mut e = P2Quantile::new(0.5);
        e.observe(f64::NAN);
        e.observe(f64::INFINITY);
        assert_eq!(e.count(), 0);
        for x in 0..7 {
            e.observe(x as f64);
        }
        assert_eq!(e.count(), 7);
        assert!(e.estimate().is_finite());
    }

    #[test]
    #[should_panic]
    fn rejects_p_out_of_range() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn estimate_stays_within_sample_range() {
        let mut e = P2Quantile::new(0.9);
        let mut s = 7u64;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..5000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 200.0;
            lo = lo.min(x);
            hi = hi.max(x);
            e.observe(x);
            let est = e.estimate();
            assert!(est >= lo && est <= hi, "{est} outside [{lo}, {hi}]");
        }
    }
}
