//! Property tests for the estimator layer.
//!
//! Pins the fused-kernel contract: feeding an estimator pre-reduced
//! [`RateMoments`] (as the simulator's fused tick does) must be
//! equivalent to feeding it the raw rate slices — bit-identical means,
//! variances within 1e-12 relative — across arbitrary snapshot
//! sequences, estimator memory time-scales, empty snapshots, and a
//! mid-sequence `reset()`.

use mbac_core::estimators::{Estimator, FilteredEstimator, MemorylessEstimator};
use mbac_num::RateMoments;
use proptest::prelude::*;

/// Drives `slice_path` with raw snapshots and `moment_path` with the
/// same snapshots reduced to pivoted sufficient statistics (the pivot
/// chosen exactly as the fused tick chooses it: the moment path's own
/// `moment_pivot()`), asserting the estimates stay equivalent after
/// every observation.
fn assert_moment_equivalence(
    slice_path: &mut dyn Estimator,
    moment_path: &mut dyn Estimator,
    snapshots: &[Vec<f64>],
    dts: &[f64],
    reset_at: usize,
) {
    prop_assert!(slice_path.supports_moments() && moment_path.supports_moments());
    let mut t = 0.0;
    for (i, (rates, dt)) in snapshots.iter().zip(dts).enumerate() {
        if i == reset_at {
            slice_path.reset();
            moment_path.reset();
        }
        t += dt;
        let pivot = moment_path.moment_pivot();
        let mut mom = RateMoments::new(pivot);
        mom.add_slice(rates);
        slice_path.observe(t, rates);
        moment_path.observe_moments(t, &mom);

        let (a, b) = match (slice_path.estimate(), moment_path.estimate()) {
            (None, None) => continue,
            (Some(a), Some(b)) => (a, b),
            (a, b) => panic!("estimate presence diverged at snapshot {i}: {a:?} vs {b:?}"),
        };
        // The moment sum is the identical flat fold of the slice, and
        // only means feed back into means: exact.
        prop_assert_eq!(
            a.mean.to_bits(),
            b.mean.to_bits(),
            "mean diverged at snapshot {}: {} vs {}",
            i,
            a.mean,
            b.mean
        );
        // The variance goes through the pivoted reconstruction:
        // equivalent to 1e-12 relative (the pivot tracks the running
        // mean, so the cancellation is benign).
        let tol = 1e-12 * (1.0 + a.variance.abs().max(b.variance.abs()));
        prop_assert!(
            (a.variance - b.variance).abs() <= tol,
            "variance diverged at snapshot {}: {} vs {}",
            i,
            a.variance,
            b.variance
        );
    }
}

proptest! {
    /// Memoryless estimator: slice and moment observations agree.
    #[test]
    fn memoryless_moments_match_slices(
        snapshots in collection::vec(collection::vec(0.0f64..5.0, 0..12), 1..24),
        dts in collection::vec(0.01f64..2.0, 24),
        reset_frac in 0.0f64..1.0,
    ) {
        let reset_at = (reset_frac * snapshots.len() as f64) as usize;
        let mut a = MemorylessEstimator::new();
        let mut b = MemorylessEstimator::new();
        assert_moment_equivalence(&mut a, &mut b, &snapshots, &dts, reset_at);
    }

    /// Exponential-filter estimator across memory time-scales
    /// (including `t_m = 0`, the memoryless degeneration): slice and
    /// moment observations agree.
    #[test]
    fn filtered_moments_match_slices(
        snapshots in collection::vec(collection::vec(0.0f64..5.0, 0..12), 1..24),
        dts in collection::vec(0.01f64..2.0, 24),
        t_m_raw in 0.1f64..20.0,
        memoryless in 0u64..4,
        reset_frac in 0.0f64..1.0,
    ) {
        // One case in four runs the t_m = 0 degeneration exactly.
        let t_m = if memoryless == 0 { 0.0 } else { t_m_raw };
        let reset_at = (reset_frac * snapshots.len() as f64) as usize;
        let mut a = FilteredEstimator::new(t_m);
        let mut b = FilteredEstimator::new(t_m);
        assert_moment_equivalence(&mut a, &mut b, &snapshots, &dts, reset_at);
    }
}
