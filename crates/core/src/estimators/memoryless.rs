//! The memoryless estimator of eqns (7) and (23): admission decisions
//! are based solely on the *current* bandwidths of the flows in the
//! system. This is the scheme whose fragility §4.1–4.2 of the paper
//! quantifies.

use super::{snapshot_stats, Estimate, Estimator};
use mbac_num::RateMoments;

/// Memoryless cross-flow estimator: `estimate()` returns the sample mean
/// and variance of the most recent snapshot only.
#[derive(Debug, Clone, Default)]
pub struct MemorylessEstimator {
    last: Option<Estimate>,
    last_t: f64,
}

impl MemorylessEstimator {
    /// Creates an empty memoryless estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time of the last snapshot observed (0 before any).
    pub fn last_observation_time(&self) -> f64 {
        self.last_t
    }
}

impl Estimator for MemorylessEstimator {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        debug_assert!(
            t >= self.last_t || self.last.is_none(),
            "snapshot times must be non-decreasing"
        );
        self.last_t = t;
        if let Some(e) = snapshot_stats(rates) {
            self.last = Some(e);
        }
    }

    fn estimate(&self) -> Option<Estimate> {
        self.last
    }

    fn reset(&mut self) {
        *self = Self::default();
    }

    fn memory_timescale(&self) -> f64 {
        0.0
    }

    fn supports_moments(&self) -> bool {
        true
    }

    fn observe_moments(&mut self, t: f64, moments: &RateMoments) {
        debug_assert!(
            t >= self.last_t || self.last.is_none(),
            "snapshot times must be non-decreasing"
        );
        self.last_t = t;
        if moments.count() > 0 {
            // Same arithmetic as `snapshot_stats` on the snapshot the
            // moments were reduced from: the mean divides the identical
            // flow-order sum, the variance is the pivoted reconstruction.
            let mean = moments.mean();
            self.last = Some(Estimate {
                mean,
                variance: moments.variance_around(mean),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_only_latest_snapshot() {
        let mut e = MemorylessEstimator::new();
        assert!(e.estimate().is_none());
        e.observe(0.0, &[1.0, 1.0, 1.0]);
        assert_eq!(e.estimate().unwrap().mean, 1.0);
        e.observe(1.0, &[5.0, 5.0, 5.0]);
        // No memory: the earlier snapshot is gone.
        assert_eq!(e.estimate().unwrap().mean, 5.0);
        assert_eq!(e.estimate().unwrap().variance, 0.0);
    }

    #[test]
    fn empty_snapshot_keeps_previous_estimate() {
        let mut e = MemorylessEstimator::new();
        e.observe(0.0, &[2.0, 4.0]);
        e.observe(1.0, &[]);
        assert_eq!(e.estimate().unwrap().mean, 3.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = MemorylessEstimator::new();
        e.observe(0.0, &[1.0]);
        e.reset();
        assert!(e.estimate().is_none());
        assert_eq!(e.last_observation_time(), 0.0);
    }

    #[test]
    fn memory_timescale_is_zero() {
        assert_eq!(MemorylessEstimator::new().memory_timescale(), 0.0);
    }
}
