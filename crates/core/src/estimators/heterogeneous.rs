//! Heterogeneous-flow estimation (paper §5.4).
//!
//! With flows of different mean rates, the homogeneous variance
//! estimator of eqn (7) — which measures spread around the *common*
//! sample mean — is biased upward by the between-class spread of the
//! means. The paper notes the resulting MBAC is conservative but robust.
//! If flow classification is available, a per-class estimator removes
//! the bias. Both are implemented here, together with an aggregate view
//! suitable for an aggregate Gaussian admission test.

use super::{snapshot_stats, Estimate};

/// Aggregate (whole-link) statistics: total mean load and total variance
/// of the instantaneous aggregate bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregateEstimate {
    /// Estimated mean of the aggregate bandwidth.
    pub mean: f64,
    /// Estimated variance of the aggregate bandwidth.
    pub variance: f64,
    /// Number of flows contributing.
    pub flows: usize,
}

/// Per-class estimator: maintains an exponentially-filtered mean and
/// variance for each traffic class separately.
///
/// `estimate_class` gives per-flow statistics for one class;
/// `aggregate` sums them into whole-link statistics (independent flows:
/// means and variances add).
#[derive(Debug, Clone)]
pub struct ClassifiedEstimator {
    t_m: f64,
    classes: Vec<ClassState>,
    last_t: Option<f64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassState {
    mean: f64,
    variance: f64,
    count: usize,
    initialized: bool,
}

impl ClassifiedEstimator {
    /// Creates a per-class estimator for `num_classes` classes with
    /// exponential memory `t_m` (0 = memoryless).
    pub fn new(num_classes: usize, t_m: f64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(t_m >= 0.0 && t_m.is_finite());
        ClassifiedEstimator {
            t_m,
            classes: vec![ClassState::default(); num_classes],
            last_t: None,
        }
    }

    /// Consumes a classified snapshot: `(class index, instantaneous
    /// rate)` for every flow in the system.
    ///
    /// # Panics
    /// Panics if a class index is out of range.
    pub fn observe(&mut self, t: f64, flows: &[(usize, f64)]) {
        let gain = match self.last_t {
            None => 1.0,
            Some(lt) => {
                debug_assert!(t >= lt);
                if self.t_m == 0.0 {
                    1.0
                } else {
                    1.0 - (-(t - lt) / self.t_m).exp()
                }
            }
        };
        self.last_t = Some(t);
        let num_classes = self.classes.len();
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); num_classes];
        for &(k, rate) in flows {
            assert!(
                k < num_classes,
                "class index {k} out of range (< {num_classes})"
            );
            buckets[k].push(rate);
        }
        for (k, rates) in buckets.iter().enumerate() {
            let state = &mut self.classes[k];
            state.count = rates.len();
            let Some(snap) = snapshot_stats(rates) else {
                continue;
            };
            if !state.initialized {
                state.mean = snap.mean;
                state.variance = snap.variance;
                state.initialized = true;
            } else {
                state.mean += gain * (snap.mean - state.mean);
                // Spread around the filtered per-class mean.
                let m = state.mean;
                let v = if rates.len() < 2 {
                    0.0
                } else {
                    rates.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (rates.len() - 1) as f64
                };
                state.variance += gain * (v - state.variance);
            }
        }
    }

    /// Per-flow estimate for one class, or `None` if that class has
    /// never been observed.
    pub fn estimate_class(&self, class: usize) -> Option<Estimate> {
        let s = self.classes.get(class)?;
        if s.initialized {
            Some(Estimate::new(s.mean, s.variance))
        } else {
            None
        }
    }

    /// Current number of flows counted in a class.
    pub fn class_count(&self, class: usize) -> usize {
        self.classes.get(class).map_or(0, |s| s.count)
    }

    /// Whole-link aggregate: sums per-class `count·mean` and
    /// `count·variance` (independence across flows).
    pub fn aggregate(&self) -> AggregateEstimate {
        let mut agg = AggregateEstimate::default();
        for s in &self.classes {
            if s.initialized {
                agg.mean += s.count as f64 * s.mean;
                agg.variance += s.count as f64 * s.variance;
                agg.flows += s.count;
            }
        }
        agg
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        for s in &mut self.classes {
            *s = ClassState::default();
        }
        self.last_t = None;
    }
}

/// Expected upward bias of the naive (unclassified) per-flow variance
/// estimator when flow means differ: the between-class variance of the
/// means,
///
/// `bias = Σ_k w_k (μ_k − μ̄)²`,   `μ̄ = Σ_k w_k μ_k`,
///
/// where `w_k` is the fraction of flows in class `k`. The paper (§5.4)
/// concludes the naive estimator "is always biased … and over-estimates
/// the variance"; this function quantifies by how much.
pub fn naive_variance_bias(class_means: &[f64], class_fractions: &[f64]) -> f64 {
    assert_eq!(class_means.len(), class_fractions.len());
    let wsum: f64 = class_fractions.iter().sum();
    assert!(wsum > 0.0);
    let mbar: f64 = class_means
        .iter()
        .zip(class_fractions)
        .map(|(&m, &w)| m * w)
        .sum::<f64>()
        / wsum;
    class_means
        .iter()
        .zip(class_fractions)
        .map(|(&m, &w)| w / wsum * (m - mbar) * (m - mbar))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_estimates_are_unbiased() {
        let mut est = ClassifiedEstimator::new(2, 0.0);
        // Class 0: rates around 1; class 1: rates around 10.
        est.observe(0.0, &[(0, 0.9), (0, 1.1), (1, 9.5), (1, 10.5)]);
        let c0 = est.estimate_class(0).unwrap();
        let c1 = est.estimate_class(1).unwrap();
        assert!((c0.mean - 1.0).abs() < 1e-12);
        assert!((c1.mean - 10.0).abs() < 1e-12);
        // Within-class variances are small (0.02, 0.5), nothing like the
        // between-class spread.
        assert!(c0.variance < 0.1);
        assert!(c1.variance < 1.0);
    }

    #[test]
    fn naive_estimator_overestimates_variance() {
        // The same snapshot, pooled: the sample variance is dominated by
        // the between-class mean gap.
        let rates = [0.9, 1.1, 9.5, 10.5];
        let pooled = snapshot_stats(&rates).unwrap();
        assert!(
            pooled.variance > 20.0,
            "pooled variance {} should reflect the 9-unit mean gap",
            pooled.variance
        );
        let bias = naive_variance_bias(&[1.0, 10.0], &[0.5, 0.5]);
        assert!((bias - 20.25).abs() < 1e-12, "bias = {bias}");
    }

    #[test]
    fn bias_vanishes_for_equal_means() {
        assert!(naive_variance_bias(&[5.0, 5.0, 5.0], &[0.2, 0.3, 0.5]).abs() < 1e-15);
    }

    #[test]
    fn aggregate_sums_classes() {
        let mut est = ClassifiedEstimator::new(2, 0.0);
        est.observe(0.0, &[(0, 1.0), (0, 1.0), (0, 1.0), (1, 10.0), (1, 10.0)]);
        let agg = est.aggregate();
        assert_eq!(agg.flows, 5);
        assert!((agg.mean - 23.0).abs() < 1e-12);
    }

    #[test]
    fn unobserved_class_is_none() {
        let mut est = ClassifiedEstimator::new(3, 0.0);
        est.observe(0.0, &[(0, 1.0)]);
        assert!(est.estimate_class(1).is_none());
        assert!(est.estimate_class(2).is_none());
        assert_eq!(est.class_count(0), 1);
    }

    #[test]
    fn filtering_smooths_class_means() {
        let mut est = ClassifiedEstimator::new(1, 10.0);
        est.observe(0.0, &[(0, 0.0), (0, 0.0)]);
        est.observe(1.0, &[(0, 10.0), (0, 10.0)]);
        let m = est.estimate_class(0).unwrap().mean;
        // Gain = 1 - e^{-0.1} ≈ 0.095: far from the new value.
        assert!(m > 0.5 && m < 2.0, "m = {m}");
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_class() {
        let mut est = ClassifiedEstimator::new(1, 0.0);
        est.observe(0.0, &[(1, 1.0)]);
    }
}
