//! Rectangular sliding-window estimator.
//!
//! An alternative memory kernel to the exponential filter of §4.3: the
//! estimate is the unweighted average of the cross-flow snapshot
//! statistics over the trailing window `[t − T_w, t]`. Jamin et al.'s
//! measurement window (discussed in the paper's §6) has this shape; we
//! include it for ablation benches comparing kernel shapes at equal
//! memory time-scale.

use super::{snapshot_stats, Estimate, Estimator};
use std::collections::VecDeque;

/// Sliding-window estimator with window length `T_w`.
#[derive(Debug, Clone)]
pub struct WindowEstimator {
    t_w: f64,
    samples: VecDeque<(f64, Estimate)>,
}

impl WindowEstimator {
    /// Creates a window estimator with window length `t_w > 0`.
    ///
    /// # Panics
    /// Panics unless `t_w` is positive and finite.
    pub fn new(t_w: f64) -> Self {
        assert!(
            t_w > 0.0 && t_w.is_finite(),
            "window length must be positive and finite"
        );
        WindowEstimator {
            t_w,
            samples: VecDeque::new(),
        }
    }

    /// The configured window length.
    pub fn t_w(&self) -> f64 {
        self.t_w
    }

    /// Number of snapshots currently inside the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window currently holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, _)) = self.samples.front() {
            if now - t > self.t_w {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }
}

impl Estimator for WindowEstimator {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        if let Some(e) = snapshot_stats(rates) {
            debug_assert!(
                self.samples.back().is_none_or(|&(lt, _)| t >= lt),
                "snapshot times must be non-decreasing"
            );
            self.samples.push_back((t, e));
        }
        self.evict(t);
    }

    fn estimate(&self) -> Option<Estimate> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().map(|(_, e)| e.mean).sum::<f64>() / n;
        // Average the within-snapshot variances and add the between-
        // snapshot spread of the means, so the estimate reflects the
        // total per-flow variability seen over the window.
        let within = self.samples.iter().map(|(_, e)| e.variance).sum::<f64>() / n;
        let between = self
            .samples
            .iter()
            .map(|(_, e)| (e.mean - mean) * (e.mean - mean))
            .sum::<f64>()
            / n;
        Some(Estimate::new(mean, within + between))
    }

    fn reset(&mut self) {
        self.samples.clear();
    }

    fn memory_timescale(&self) -> f64 {
        // The rectangular kernel of length T_w has mean age T_w/2 — the
        // same mean age as an exponential kernel with T_m = T_w/2.
        self.t_w / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_the_window() {
        let mut w = WindowEstimator::new(10.0);
        w.observe(0.0, &[2.0, 2.0]);
        w.observe(1.0, &[4.0, 4.0]);
        w.observe(2.0, &[6.0, 6.0]);
        let e = w.estimate().unwrap();
        assert!((e.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_old_samples() {
        let mut w = WindowEstimator::new(5.0);
        w.observe(0.0, &[100.0, 100.0]);
        w.observe(10.0, &[2.0, 2.0]);
        // The t = 0 sample is outside [5, 10] and must be gone.
        assert_eq!(w.len(), 1);
        assert!((w.estimate().unwrap().mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_sample_is_kept() {
        let mut w = WindowEstimator::new(5.0);
        w.observe(0.0, &[1.0]);
        w.observe(5.0, &[3.0]);
        assert_eq!(w.len(), 2, "sample exactly T_w old stays in the window");
    }

    #[test]
    fn variance_includes_between_snapshot_spread() {
        let mut w = WindowEstimator::new(100.0);
        // Two snapshots with zero within-variance but different means.
        w.observe(0.0, &[0.0, 0.0]);
        w.observe(1.0, &[10.0, 10.0]);
        let e = w.estimate().unwrap();
        assert!((e.mean - 5.0).abs() < 1e-12);
        assert!((e.variance - 25.0).abs() < 1e-12, "var = {}", e.variance);
    }

    #[test]
    fn empty_window_gives_none() {
        let w = WindowEstimator::new(1.0);
        assert!(w.estimate().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn memory_timescale_is_half_window() {
        assert_eq!(WindowEstimator::new(8.0).memory_timescale(), 4.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_window() {
        WindowEstimator::new(0.0);
    }
}
