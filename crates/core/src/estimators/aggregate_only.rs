//! Aggregate-only measurement (the paper's §7 second future-work item).
//!
//! "Aggregate measurements can be expected to be easier to implement,
//! because no per-flow information has to be maintained. While using
//! only aggregate measurement does not affect the mean estimator, the
//! accuracy of the variance estimator is hampered without per-flow
//! information."
//!
//! This estimator sees only `(flow count n, aggregate bandwidth S)` per
//! snapshot. The per-flow mean is `S/n`, exactly as before. The
//! per-flow variance must instead be inferred from the *temporal*
//! fluctuation of the aggregate: with i.i.d. flows,
//! `Var(S) = n·σ²`, so an exponentially-filtered estimate of the
//! aggregate's variance around its filtered mean, divided by `n`,
//! estimates `σ²`. The catch — which the aggregate-measurement
//! experiment quantifies — is that the temporal variance estimator
//! (a) converges on the traffic correlation time-scale instead of
//! instantly across flows, and (b) is *contaminated by the flow-count
//! dynamics*: admissions and departures move `S` too, inflating the
//! variance estimate. We partially compensate (b) by working with
//! `S − n·μ̂` increments, as the theory's heavy-traffic decomposition
//! suggests.

use super::{Estimate, Estimator};

/// Estimator fed only the aggregate bandwidth and flow count.
#[derive(Debug, Clone)]
pub struct AggregateOnlyEstimator {
    t_m: f64,
    state: Option<State>,
}

#[derive(Debug, Clone, Copy)]
struct State {
    /// Filtered per-flow mean μ̂.
    mean: f64,
    /// Filtered variance of the *centered* aggregate, ≈ n σ².
    agg_var: f64,
    last_t: f64,
    last_n: f64,
}

impl AggregateOnlyEstimator {
    /// Creates the estimator with exponential memory `t_m` (must be
    /// positive: with no per-flow snapshot there is no instantaneous
    /// variance estimate, so a memoryless variant cannot exist — this
    /// restriction *is* the §7 observation in type form).
    ///
    /// # Panics
    /// Panics unless `t_m > 0` and finite.
    pub fn new(t_m: f64) -> Self {
        assert!(
            t_m > 0.0 && t_m.is_finite(),
            "aggregate-only estimation requires a positive memory window"
        );
        AggregateOnlyEstimator { t_m, state: None }
    }

    /// Feeds one snapshot of `(flow count, aggregate bandwidth)`.
    pub fn observe_aggregate(&mut self, t: f64, flows: usize, aggregate: f64) {
        if flows == 0 {
            return;
        }
        let n = flows as f64;
        let snap_mean = aggregate / n;
        match &mut self.state {
            None => {
                self.state = Some(State {
                    mean: snap_mean,
                    // No variance information in a single aggregate
                    // sample: start at zero and let the filter learn.
                    agg_var: 0.0,
                    last_t: t,
                    last_n: n,
                });
            }
            Some(s) => {
                debug_assert!(t >= s.last_t);
                let a = 1.0 - (-(t - s.last_t) / self.t_m).exp();
                // Deviation against the *pre-update* mean: updating
                // first would attenuate the innovation by (1−a) and
                // correlate it with the mean error, biasing the
                // variance down. Centering on n·μ̂ (not on the previous
                // aggregate) keeps admissions/departures from
                // registering as rate variance to first order.
                let dev = aggregate - n * s.mean;
                s.agg_var += a * (dev * dev - s.agg_var);
                s.mean += a * (snap_mean - s.mean);
                s.last_t = t;
                s.last_n = n;
            }
        }
    }

    /// Number of flows at the last snapshot.
    pub fn last_flow_count(&self) -> Option<usize> {
        self.state.map(|s| s.last_n as usize)
    }
}

impl Estimator for AggregateOnlyEstimator {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        // Adapter: when wired into the standard snapshot plumbing, use
        // only what an aggregate meter would see.
        self.observe_aggregate(t, rates.len(), rates.iter().sum());
    }

    fn estimate(&self) -> Option<Estimate> {
        self.state
            .map(|s| Estimate::new(s.mean, (s.agg_var / s.last_n.max(1.0)).max(0.0)))
    }

    fn reset(&mut self) {
        self.state = None;
    }

    fn memory_timescale(&self) -> f64 {
        self.t_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_num::rng::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_estimation_unaffected() {
        // §7: "using only aggregate measurement does not affect the
        // mean estimator".
        let mut agg = AggregateOnlyEstimator::new(5.0);
        for k in 0..2000 {
            agg.observe_aggregate(k as f64 * 0.1, 100, 100.0 * 2.5);
        }
        assert!((agg.estimate().unwrap().mean - 2.5).abs() < 1e-9);
    }

    #[test]
    fn variance_learned_from_temporal_fluctuation() {
        // 100 i.i.d. N(1, 0.09) flows re-drawn each snapshot: the
        // aggregate fluctuates with Var = 100·0.09 = 9; the estimator
        // must recover σ² ≈ 0.09 from the aggregate alone. The
        // instantaneous filtered estimate is *noisy* (its steady-state
        // sd is ≈ √(a/(2−a))·√2·nσ²/n ≈ 0.03 here — the very
        // "hampered accuracy" §7 predicts), so we check its *time
        // average* for unbiasedness and its spread separately.
        let mut rng = StdRng::seed_from_u64(1);
        let mut agg = AggregateOnlyEstimator::new(10.0);
        let n = 100usize;
        let mut var_track = mbac_num::RunningStats::new();
        for k in 0..40_000 {
            let total: f64 = (0..n).map(|_| 1.0 + 0.3 * standard_normal(&mut rng)).sum();
            agg.observe_aggregate(k as f64, n, total);
            if k > 2000 {
                var_track.push(agg.estimate().unwrap().variance);
            }
        }
        let est = agg.estimate().unwrap();
        assert!((est.mean - 1.0).abs() < 0.02, "mean {}", est.mean);
        // Unbiased: the long-run average of σ̂² hits the truth
        // (the innovation term E[(ξ−ε)²] adds ≈ a/(2−a) ≈ 5%).
        assert!(
            (var_track.mean() - 0.09).abs() < 0.015,
            "mean variance estimate {} should approach 0.09",
            var_track.mean()
        );
        // Noisy: the instantaneous estimate really does wander — the
        // §7 cost of forgoing per-flow measurement.
        assert!(
            var_track.std_dev() > 0.01,
            "aggregate-only σ̂² should be visibly noisy, sd = {}",
            var_track.std_dev()
        );
    }

    #[test]
    fn slower_than_per_flow_estimation() {
        // The §7 "hampered" claim, in convergence-speed form: after a
        // *single* snapshot the per-flow estimator already knows σ²,
        // while the aggregate-only one knows nothing.
        let mut rng = StdRng::seed_from_u64(2);
        let rates: Vec<f64> = (0..200)
            .map(|_| 1.0 + 0.3 * standard_normal(&mut rng))
            .collect();
        let mut per_flow = super::super::MemorylessEstimator::new();
        per_flow.observe(0.0, &rates);
        let mut agg = AggregateOnlyEstimator::new(5.0);
        agg.observe(0.0, &rates);
        let v_pf = per_flow.estimate().unwrap().variance;
        let v_agg = agg.estimate().unwrap().variance;
        assert!(
            (v_pf - 0.09).abs() < 0.03,
            "per-flow sees variance instantly: {v_pf}"
        );
        assert_eq!(v_agg, 0.0, "aggregate-only has no variance info yet");
    }

    #[test]
    fn flow_count_changes_do_not_explode_variance() {
        // Constant per-flow rate 1.0 but the population ramps up and
        // down: the centered-deviation trick must keep σ̂² near zero.
        let mut agg = AggregateOnlyEstimator::new(5.0);
        for k in 0..5000 {
            let n = 100 + ((k / 50) % 20) as usize; // staircase 100..119
            agg.observe_aggregate(k as f64 * 0.1, n, n as f64 * 1.0);
        }
        let est = agg.estimate().unwrap();
        assert!(
            est.variance < 0.02,
            "population churn leaked into σ̂²: {}",
            est.variance
        );
    }

    #[test]
    fn empty_snapshots_ignored_and_reset_works() {
        let mut agg = AggregateOnlyEstimator::new(1.0);
        agg.observe_aggregate(0.0, 0, 0.0);
        assert!(agg.estimate().is_none());
        agg.observe_aggregate(1.0, 10, 10.0);
        assert!(agg.estimate().is_some());
        assert_eq!(agg.last_flow_count(), Some(10));
        agg.reset();
        assert!(agg.estimate().is_none());
    }

    #[test]
    #[should_panic]
    fn memoryless_variant_is_a_type_error() {
        AggregateOnlyEstimator::new(0.0);
    }
}
