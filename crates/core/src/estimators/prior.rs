//! Prior-smoothed estimation — the Gibbens–Kelly–Key mechanism (§6).
//!
//! Gibbens, Kelly & Key (JSAC '95) stabilize memoryless measurement-
//! based admission by weighting observations against a **fixed Bayesian
//! prior** on the flow statistics: the decision statistic is a convex
//! combination of the prior belief and the current measurement,
//!
//! `μ̂_post = (w·μ₀ + n·μ̂_obs) / (w + n)`
//!
//! (conjugate-normal posterior mean with prior pseudo-count `w`, and
//! analogously for the variance). Grossglauser & Tse's §6 comparison:
//! this smooths estimate fluctuations like their memory `T_m` does, but
//! requires a trustworthy prior; when the prior is wrong the controller
//! is persistently biased, whereas the memory window is prior-free.
//! This estimator exists so the benches can stage exactly that
//! comparison.

use super::{snapshot_stats, Estimate, Estimator};
use crate::params::FlowStats;

/// Memoryless estimator shrunk toward a fixed prior with pseudo-count
/// weight `w`.
#[derive(Debug, Clone)]
pub struct PriorSmoothedEstimator {
    prior: FlowStats,
    weight: f64,
    last: Option<(Estimate, usize)>,
}

impl PriorSmoothedEstimator {
    /// Creates the estimator with a prior belief and its pseudo-count
    /// weight (how many observed flows the prior is worth).
    ///
    /// # Panics
    /// Panics if `weight` is negative or non-finite.
    pub fn new(prior: FlowStats, weight: f64) -> Self {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "prior weight must be finite and >= 0"
        );
        PriorSmoothedEstimator {
            prior,
            weight,
            last: None,
        }
    }

    /// The prior belief.
    pub fn prior(&self) -> FlowStats {
        self.prior
    }

    /// The prior pseudo-count.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Estimator for PriorSmoothedEstimator {
    fn observe(&mut self, _t: f64, rates: &[f64]) {
        if let Some(e) = snapshot_stats(rates) {
            self.last = Some((e, rates.len()));
        }
    }

    fn estimate(&self) -> Option<Estimate> {
        let (obs, n) = self.last?;
        let n = n as f64;
        let denom = self.weight + n;
        if denom == 0.0 {
            return Some(obs);
        }
        Some(Estimate::new(
            (self.weight * self.prior.mean + n * obs.mean) / denom,
            (self.weight * self.prior.variance + n * obs.variance) / denom,
        ))
    }

    fn reset(&mut self) {
        self.last = None;
    }

    fn memory_timescale(&self) -> f64 {
        // The prior acts like extra (timeless) samples, not a time
        // window; report 0 so the sampling-spacing arithmetic treats it
        // as memoryless, which is how §6 characterizes it.
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior() -> FlowStats {
        FlowStats::from_mean_sd(1.0, 0.3)
    }

    #[test]
    fn zero_weight_is_pure_measurement() {
        let mut e = PriorSmoothedEstimator::new(prior(), 0.0);
        e.observe(0.0, &[2.0, 2.0]);
        assert!((e.estimate().unwrap().mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn huge_weight_is_pure_prior() {
        let mut e = PriorSmoothedEstimator::new(prior(), 1e12);
        e.observe(0.0, &[5.0, 5.0, 5.0]);
        let est = e.estimate().unwrap();
        assert!((est.mean - 1.0).abs() < 1e-6);
        assert!((est.variance - 0.09).abs() < 1e-6);
    }

    #[test]
    fn posterior_interpolates_by_counts() {
        // Prior worth 2 flows, observe 2 flows: midpoint.
        let mut e = PriorSmoothedEstimator::new(prior(), 2.0);
        e.observe(0.0, &[3.0, 3.0]);
        let est = e.estimate().unwrap();
        assert!((est.mean - 2.0).abs() < 1e-12, "mean {}", est.mean);
    }

    #[test]
    fn smoothing_reduces_estimate_variance() {
        // Alternating snapshots: the smoothed estimate swings less.
        let swing = |w: f64| {
            let mut e = PriorSmoothedEstimator::new(prior(), w);
            let mut values = Vec::new();
            for k in 0..100 {
                let v = if k % 2 == 0 { 0.5 } else { 1.5 };
                e.observe(k as f64, &[v, v]);
                values.push(e.estimate().unwrap().mean);
            }
            mbac_num::variance(&values)
        };
        assert!(swing(20.0) < swing(0.0) / 10.0);
    }

    #[test]
    fn wrong_prior_biases_persistently() {
        // The §6 caveat: a prior that understates the mean keeps the
        // posterior below the truth no matter how long we observe
        // (the snapshot size, not time, bounds the data weight).
        let wrong = FlowStats::from_mean_sd(0.5, 0.1);
        let mut e = PriorSmoothedEstimator::new(wrong, 50.0);
        for k in 0..1000 {
            e.observe(k as f64, &[2.0, 2.0, 2.0, 2.0]); // truth: mean 2
        }
        let est = e.estimate().unwrap();
        assert!(
            est.mean < 1.9,
            "posterior mean {} stays biased toward the prior",
            est.mean
        );
    }

    #[test]
    fn cold_start_is_none_then_reset_works() {
        let mut e = PriorSmoothedEstimator::new(prior(), 5.0);
        assert!(e.estimate().is_none());
        e.observe(0.0, &[1.0]);
        assert!(e.estimate().is_some());
        e.reset();
        assert!(e.estimate().is_none());
    }
}
