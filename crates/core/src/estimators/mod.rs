//! On-line estimators of per-flow traffic statistics.
//!
//! The measurement half of an MBAC: each estimator consumes *snapshots*
//! of the instantaneous bandwidths of the flows currently in the system
//! and maintains an estimate of the per-flow mean `μ̂` and variance
//! `σ̂²`. The admission criteria in [`crate::admission`] consume these
//! estimates in a certainty-equivalent fashion.
//!
//! Implemented estimators:
//! * [`MemorylessEstimator`] — the paper's eqn (7)/(23): use only the
//!   current snapshot;
//! * [`FilteredEstimator`] — the paper's §4.3 exponentially-weighted
//!   (first-order auto-regressive) filter with memory time-scale `T_m`;
//! * [`WindowEstimator`] — rectangular sliding window, an alternative
//!   memory kernel used for ablation;
//! * [`heterogeneous`] — per-class estimation for non-homogeneous flows
//!   (paper §5.4).

mod aggregate_only;
mod filtered;
pub mod heterogeneous;
mod memoryless;
mod prior;
mod window;

pub use aggregate_only::AggregateOnlyEstimator;
pub use filtered::FilteredEstimator;
pub use memoryless::MemorylessEstimator;
pub use prior::PriorSmoothedEstimator;
pub use window::WindowEstimator;

use crate::params::FlowStats;
use mbac_num::RateMoments;

/// An estimate of per-flow statistics. Unlike [`FlowStats`] this carries
/// no positivity invariants, because a measured mean can legitimately be
/// zero (e.g. all sampled flows momentarily silent).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Estimated per-flow mean bandwidth `μ̂`.
    pub mean: f64,
    /// Estimated per-flow bandwidth variance `σ̂²`.
    pub variance: f64,
}

impl Estimate {
    /// Creates an estimate.
    pub fn new(mean: f64, variance: f64) -> Self {
        Estimate { mean, variance }
    }

    /// Estimated standard deviation `σ̂` (clamped at zero).
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Converts to validated [`FlowStats`] when the estimate is physical.
    pub fn to_flow_stats(&self) -> Option<FlowStats> {
        if self.mean > 0.0 && self.variance >= 0.0 {
            Some(FlowStats::new(self.mean, self.variance))
        } else {
            None
        }
    }
}

impl From<FlowStats> for Estimate {
    fn from(f: FlowStats) -> Self {
        Estimate {
            mean: f.mean,
            variance: f.variance,
        }
    }
}

/// A statistics estimator fed with per-flow bandwidth snapshots.
pub trait Estimator {
    /// Consumes a snapshot: at time `t`, the flows in the system have
    /// the instantaneous bandwidths in `rates`. Snapshot times must be
    /// non-decreasing across calls.
    fn observe(&mut self, t: f64, rates: &[f64]);

    /// Current estimate, or `None` before enough data has been seen.
    fn estimate(&self) -> Option<Estimate>;

    /// Clears all state.
    fn reset(&mut self);

    /// The memory time-scale `T_m` of this estimator (0 for memoryless).
    fn memory_timescale(&self) -> f64;

    /// Whether this estimator can consume a pre-reduced
    /// [`RateMoments`] observation instead of the raw rate slice. The
    /// fused tick kernels gate on this once per run; `false` keeps the
    /// slice path.
    fn supports_moments(&self) -> bool {
        false
    }

    /// Consumes one observation as sufficient statistics (`n`, `Σx`,
    /// pivoted `Σ(x−c)` / `Σ(x−c)²`) reduced inside the tick kernel —
    /// O(1) in the number of flows. Must be equivalent to
    /// [`Estimator::observe`] on the same snapshot: the mean path is
    /// bit-identical (the moment sum is the same flat fold), the
    /// variance agrees to ~1e-15 relative (property-tested at 1e-12).
    ///
    /// # Panics
    /// The default panics; only call when [`Estimator::supports_moments`]
    /// returns `true`.
    fn observe_moments(&mut self, t: f64, moments: &RateMoments) {
        let _ = (t, moments);
        panic!("estimator does not support moment observations");
    }

    /// The pivot the fused kernels should center the second moment on:
    /// the current mean estimate when one exists (best conditioning),
    /// else 0. Any finite value is correct.
    fn moment_pivot(&self) -> f64 {
        self.estimate().map(|e| e.mean).unwrap_or(0.0)
    }
}

/// Cross-sectional sample statistics of one snapshot: the paper's
/// memoryless estimators of eqn (7),
/// `μ̂ = (1/n)Σ Xᵢ`, `σ̂² = (1/(n−1))Σ (Xᵢ − μ̂)²`.
///
/// Returns `None` for an empty snapshot; the variance is 0 for a
/// single-flow snapshot.
pub fn snapshot_stats(rates: &[f64]) -> Option<Estimate> {
    if rates.is_empty() {
        return None;
    }
    let n = rates.len() as f64;
    let mean = rates.iter().sum::<f64>() / n;
    let variance = if rates.len() < 2 {
        0.0
    } else {
        rates.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    };
    Some(Estimate { mean, variance })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_stats_basic() {
        let e = snapshot_stats(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((e.mean - 2.5).abs() < 1e-12);
        // Sample variance with n-1: ((1.5²+0.5²)*2)/3 = 5/3
        assert!((e.variance - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_stats_edge_cases() {
        assert!(snapshot_stats(&[]).is_none());
        let one = snapshot_stats(&[7.0]).unwrap();
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.variance, 0.0);
    }

    #[test]
    fn estimate_flow_stats_conversion() {
        assert!(Estimate::new(1.0, 0.5).to_flow_stats().is_some());
        assert!(Estimate::new(0.0, 0.5).to_flow_stats().is_none());
        assert!(Estimate::new(1.0, -0.1).to_flow_stats().is_none());
        let e = Estimate::new(2.0, 0.25);
        assert!((e.std_dev() - 0.5).abs() < 1e-15);
    }
}
