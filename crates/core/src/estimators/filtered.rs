//! Exponentially-filtered estimator — the paper's §4.3 "MBAC with
//! memory".
//!
//! The continuous-time definition convolves the cross-flow sample mean
//! and variance with the first-order auto-regressive kernel
//! `h(t) = (1/T_m) e^{−t/T_m} u(t)`. Our simulator samples at discrete
//! (possibly irregular) times, so the filter is discretized exactly for
//! each inter-sample gap `Δ`:
//!
//! `ŷ(t) = ŷ(t−Δ) + a (x(t) − ŷ(t−Δ))`,  with  `a = 1 − e^{−Δ/T_m}`,
//!
//! which is the zero-order-hold solution of `T_m ŷ' = x − ŷ`. As
//! `T_m → 0` the gain `a → 1` and the estimator degenerates to the
//! memoryless one, exactly as in the paper.
//!
//! Per the paper's definition, the variance snapshot is taken around the
//! *filtered* mean `μ̂_m(t)`, not around the snapshot mean.

use super::{Estimate, Estimator};
use mbac_num::RateMoments;

/// First-order exponentially-weighted estimator with memory `T_m`.
#[derive(Debug, Clone)]
pub struct FilteredEstimator {
    t_m: f64,
    state: Option<FilterState>,
}

#[derive(Debug, Clone, Copy)]
struct FilterState {
    mean: f64,
    variance: f64,
    last_t: f64,
}

impl FilteredEstimator {
    /// Creates a filtered estimator with memory time-scale `t_m ≥ 0`.
    /// `t_m == 0` gives memoryless behaviour.
    ///
    /// # Panics
    /// Panics if `t_m` is negative or non-finite.
    pub fn new(t_m: f64) -> Self {
        assert!(
            t_m >= 0.0 && t_m.is_finite(),
            "memory time-scale must be finite and >= 0"
        );
        FilteredEstimator { t_m, state: None }
    }

    /// The configured memory time-scale.
    pub fn t_m(&self) -> f64 {
        self.t_m
    }

    /// The discrete filter gain for an inter-sample gap `dt`:
    /// `a = 1 − e^{−Δ/T_m}` (1 when memoryless).
    pub fn gain(&self, dt: f64) -> f64 {
        if self.t_m == 0.0 {
            1.0
        } else {
            1.0 - (-dt / self.t_m).exp()
        }
    }
}

impl Estimator for FilteredEstimator {
    fn observe(&mut self, t: f64, rates: &[f64]) {
        if rates.is_empty() {
            return;
        }
        let n = rates.len() as f64;
        let snap_mean = rates.iter().sum::<f64>() / n;
        let t_m = self.t_m;
        match &mut self.state {
            None => {
                // Initialize from the first snapshot (memoryless start;
                // the filter has no past to weight).
                let variance = if rates.len() < 2 {
                    0.0
                } else {
                    rates
                        .iter()
                        .map(|&x| (x - snap_mean) * (x - snap_mean))
                        .sum::<f64>()
                        / (n - 1.0)
                };
                self.state = Some(FilterState {
                    mean: snap_mean,
                    variance,
                    last_t: t,
                });
            }
            Some(s) => {
                debug_assert!(t >= s.last_t, "snapshot times must be non-decreasing");
                let dt = (t - s.last_t).max(0.0);
                let a = if t_m == 0.0 {
                    1.0
                } else {
                    1.0 - (-dt / t_m).exp()
                };
                s.mean += a * (snap_mean - s.mean);
                // Variance snapshot around the *filtered* mean (paper §4.3).
                let v_snap = if rates.len() < 2 {
                    0.0
                } else {
                    let m = s.mean;
                    rates.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0)
                };
                s.variance += a * (v_snap - s.variance);
                s.last_t = t;
            }
        }
    }

    fn estimate(&self) -> Option<Estimate> {
        self.state.map(|s| Estimate::new(s.mean, s.variance))
    }

    fn reset(&mut self) {
        self.state = None;
    }

    fn memory_timescale(&self) -> f64 {
        self.t_m
    }

    fn supports_moments(&self) -> bool {
        true
    }

    fn observe_moments(&mut self, t: f64, moments: &RateMoments) {
        let n_obs = moments.count();
        if n_obs == 0 {
            return;
        }
        // Mirrors `observe` with the per-flow scans replaced by the
        // pivoted reconstruction: the snapshot mean is bit-identical
        // (same flat sum), both variance snapshots are centered exactly
        // where the slice path centers them (the snapshot mean on the
        // first observation, the *filtered* mean afterwards).
        let snap_mean = moments.mean();
        let t_m = self.t_m;
        match &mut self.state {
            None => {
                self.state = Some(FilterState {
                    mean: snap_mean,
                    variance: moments.variance_around(snap_mean),
                    last_t: t,
                });
            }
            Some(s) => {
                debug_assert!(t >= s.last_t, "snapshot times must be non-decreasing");
                let dt = (t - s.last_t).max(0.0);
                let a = if t_m == 0.0 {
                    1.0
                } else {
                    1.0 - (-dt / t_m).exp()
                };
                s.mean += a * (snap_mean - s.mean);
                let v_snap = moments.variance_around(s.mean);
                s.variance += a * (v_snap - s.variance);
                s.last_t = t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_memory_is_memoryless() {
        let mut f = FilteredEstimator::new(0.0);
        f.observe(0.0, &[1.0, 1.0]);
        f.observe(1.0, &[9.0, 9.0]);
        assert!((f.estimate().unwrap().mean - 9.0).abs() < 1e-12);
    }

    #[test]
    fn first_snapshot_initializes_exactly() {
        let mut f = FilteredEstimator::new(10.0);
        f.observe(0.0, &[2.0, 4.0, 6.0]);
        let e = f.estimate().unwrap();
        assert!((e.mean - 4.0).abs() < 1e-12);
        assert!((e.variance - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_convergence_to_step_input() {
        // Feed a constant snapshot mean of 10 after initializing at 0;
        // the mean must approach 10 like 1 - e^{-t/T_m}.
        let t_m = 5.0;
        let mut f = FilteredEstimator::new(t_m);
        f.observe(0.0, &[0.0, 0.0]);
        let dt = 0.01;
        let steps = 1000; // total time 10 = 2 T_m
        for k in 1..=steps {
            f.observe(k as f64 * dt, &[10.0, 10.0]);
        }
        let expect = 10.0 * (1.0 - (-(steps as f64 * dt) / t_m).exp());
        let got = f.estimate().unwrap().mean;
        assert!((got - expect).abs() < 0.05, "got {got}, expect {expect}");
    }

    #[test]
    fn irregular_sampling_matches_continuous_decay() {
        // One big gap of Δ must weight the old state by e^{-Δ/T_m}
        // regardless of how the interval is subdivided.
        let t_m = 3.0;
        let mut coarse = FilteredEstimator::new(t_m);
        coarse.observe(0.0, &[1.0, 1.0]);
        coarse.observe(6.0, &[0.0, 0.0]);
        let mut fine = FilteredEstimator::new(t_m);
        fine.observe(0.0, &[1.0, 1.0]);
        // For a zero-order-hold input held at 0 over (0, 6], subdividing
        // must not change the endpoint value.
        for k in 1..=600 {
            fine.observe(k as f64 * 0.01, &[0.0, 0.0]);
        }
        let want = (-6.0f64 / t_m).exp();
        assert!((coarse.estimate().unwrap().mean - want).abs() < 1e-12);
        assert!((fine.estimate().unwrap().mean - want).abs() < 1e-12);
    }

    #[test]
    fn longer_memory_smooths_more() {
        // Alternate snapshots between 0 and 10 and compare the variance
        // of the *estimates* for short vs long memory.
        let run = |t_m: f64| -> f64 {
            let mut f = FilteredEstimator::new(t_m);
            let mut ests = Vec::new();
            for k in 0..200 {
                let v = if k % 2 == 0 { 0.0 } else { 10.0 };
                f.observe(k as f64, &[v, v]);
                ests.push(f.estimate().unwrap().mean);
            }
            mbac_num::variance(&ests[100..])
        };
        let short = run(0.5);
        let long = run(20.0);
        assert!(
            long < short / 10.0,
            "long-memory estimate should fluctuate far less: {long} vs {short}"
        );
    }

    #[test]
    fn variance_estimate_tracks_true_variance() {
        // Deterministic two-point snapshots with per-flow variance 4
        // (values mean±2 with n−1 normalization → var = 8? compute:
        // rates [m-2, m+2]: sample var = ((−2)²+2²)/1 = 8).
        let mut f = FilteredEstimator::new(2.0);
        for k in 0..500 {
            f.observe(k as f64 * 0.1, &[3.0, 7.0]);
        }
        let e = f.estimate().unwrap();
        assert!((e.mean - 5.0).abs() < 1e-9);
        assert!((e.variance - 8.0).abs() < 1e-6, "var = {}", e.variance);
    }

    #[test]
    fn empty_snapshots_are_ignored() {
        let mut f = FilteredEstimator::new(1.0);
        f.observe(0.0, &[4.0, 4.0]);
        f.observe(5.0, &[]);
        assert_eq!(f.estimate().unwrap().mean, 4.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_memory() {
        FilteredEstimator::new(-1.0);
    }
}
