//! # mbac-core — robust measurement-based admission control
//!
//! The primary contribution of Grossglauser & Tse, *"A Framework for
//! Robust Measurement-Based Admission Control"* (SIGCOMM '97 /
//! UCB-ERL M98/17), as a library:
//!
//! * [`params`] — flow statistics, QoS targets, system description;
//! * [`estimators`] — memoryless, exponentially-filtered (memory `T_m`),
//!   sliding-window and per-class estimators of flow statistics;
//! * [`admission`] — the Gaussian admission criteria: perfect-knowledge,
//!   certainty-equivalent MBAC, peak-rate baseline, and the aggregate
//!   form for heterogeneous flows;
//! * [`theory`] — every closed-form result of the paper: the √2
//!   certainty-equivalence penalty (Prop. 3.3), finite-holding dynamics
//!   (eqn (21)), the Bräker hitting-probability engine (eqn (30)), the
//!   continuous-load overflow formulas with and without memory
//!   (eqns (32)–(39)), target inversion (Fig. 6), and utilization
//!   accounting (eqn (40));
//! * [`robust`] — the §5.3 design procedure: `T_m = T̃_h` plus an
//!   adjusted certainty-equivalent target, robust over unknown traffic
//!   correlation time-scales;
//! * [`topology`] — links, capacities and routes, plus the
//!   [`topology::PathAdmission`] composition layer that lifts the
//!   single-link criteria to multi-hop paths with all-or-nothing
//!   occupancy commit/rollback.
//!
//! ## Quick example
//!
//! ```
//! use mbac_core::admission::{AdmissionPolicy, CertaintyEquivalent};
//! use mbac_core::estimators::{Estimator, FilteredEstimator};
//! use mbac_core::params::QosTarget;
//!
//! // An estimator with a 10-second memory window and a certainty-
//! // equivalent controller targeting 1e-3 overflow probability.
//! let mut est = FilteredEstimator::new(10.0);
//! let ctl = CertaintyEquivalent::new(QosTarget::new(1e-3));
//!
//! // Feed a measurement snapshot of per-flow bandwidths...
//! est.observe(0.0, &[0.9, 1.1, 1.0, 0.95, 1.05]);
//!
//! // ...and ask whether a 6th flow fits on a link of capacity 10.
//! let e = est.estimate().unwrap();
//! assert!(ctl.admit(e, 10.0, 5));
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod estimators;
pub mod params;
pub mod robust;
pub mod theory;
pub mod topology;
pub mod utility;

pub use admission::{AdmissionPolicy, CertaintyEquivalent, PeakRate, PerfectKnowledge};
pub use estimators::{Estimate, Estimator, FilteredEstimator, MemorylessEstimator};
pub use params::{FlowStats, QosTarget, SystemParams};
pub use robust::{DesignInputs, RobustDesign};
pub use theory::ContinuousModel;
pub use topology::{
    hop_admits, HopOracle, HopReport, LinkId, PathAdmission, PathDecision, RouteId, Topology,
    TopologyError,
};
pub use utility::UtilityFunction;
