//! Boundary-hitting probability for locally stationary Gaussian
//! processes — the paper's eqn (30), after Bräker (1993) and Cuzick
//! (1981).
//!
//! The continuous-load overflow probability is
//! `Pr{ sup_{t≥0} (G_t − β t) > α }` for a zero-mean Gaussian process
//! `G_t` with incremental variance `σ²(t) = E[G_t²]`. The approximation
//! integrates a first-passage density:
//!
//! `p ≈ (1/2) ∫₀^∞ v⁺(0) · (α + βt)/σ³(t) · φ((α + βt)/σ(t)) dt`,
//!
//! where `v⁺(0)` is the right-derivative of `σ²(t)` at 0. It is
//! asymptotically exact as `α → ∞`, i.e. good precisely when the target
//! probability is small — the regime admission control lives in.
//!
//! When `σ²(0) > 0` (the process can already exceed the boundary at
//! `t = 0`, as happens for the filtered estimator, whose error is not
//! perfectly correlated with the live traffic), the additive term
//! `Q(α/σ(0))` accounts for an immediate hit; this matches the second
//! term of the paper's eqn (37).

use mbac_num::{integrate_to_inf, phi, q};

/// Parameters for the hitting-probability approximation.
#[derive(Debug, Clone, Copy)]
pub struct HittingProblem {
    /// Boundary offset `α` (the Gaussian safety factor).
    pub alpha: f64,
    /// Boundary slope `β` (the paper's `β = μ/(σ T̃_h)` repair drift).
    pub beta: f64,
    /// Right-derivative of the incremental variance at zero, `v⁺(0)`.
    pub v_plus_0: f64,
}

/// Evaluates the Bräker approximation for a given incremental-variance
/// function `sigma2(t) = E[(G_t)²]` (must be non-negative,
/// non-decreasing in practice). Returns the hitting probability estimate.
///
/// Numerical notes: the integrand has a boundary layer at `t = 0` when
/// `σ²(0⁺) → 0`; the adaptive quadrature resolves it, and points where
/// `σ²(t) ≤ 0` contribute zero (the process cannot be above a positive
/// boundary with zero variance).
pub fn hitting_probability<S: Fn(f64) -> f64>(prob: HittingProblem, sigma2: S, tol: f64) -> f64 {
    assert!(prob.alpha >= 0.0, "boundary offset must be non-negative");
    assert!(prob.beta >= 0.0, "boundary slope must be non-negative");
    assert!(prob.v_plus_0 >= 0.0, "v⁺(0) must be non-negative");
    let integrand = |t: f64| {
        let s2 = sigma2(t);
        if s2 <= 0.0 {
            return 0.0;
        }
        let s = s2.sqrt();
        let arg = (prob.alpha + prob.beta * t) / s;
        0.5 * prob.v_plus_0 * arg / s2 * phi(arg)
    };
    let drift_term = integrate_to_inf(integrand, 0.0, tol).value;
    // Immediate-hit term for processes with σ²(0⁺) > 0.
    let s2_at_0 = sigma2(0.0).max(0.0);
    let immediate = if s2_at_0 > 0.0 {
        q(prob.alpha / s2_at_0.sqrt())
    } else {
        0.0
    };
    drift_term + immediate
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brownian motion with drift: exact result available.
    /// For σ²(t) = t (v⁺(0) = 1), Pr{sup (W_t − βt) > α} = e^{-2αβ}.
    #[test]
    fn brownian_motion_exact_comparison() {
        for &(alpha, beta) in &[(3.0, 1.0), (4.0, 0.5), (5.0, 1.5)] {
            let p = hitting_probability(
                HittingProblem {
                    alpha,
                    beta,
                    v_plus_0: 1.0,
                },
                |t| t,
                1e-12,
            );
            let exact = (-2.0 * alpha * beta).exp();
            // Bräker is an asymptotic approximation; for these moderate
            // boundaries it should be within a factor ~2 and converging.
            assert!(
                (p / exact) > 0.4 && (p / exact) < 2.5,
                "α={alpha} β={beta}: approx {p}, exact {exact}"
            );
        }
    }

    #[test]
    fn brownian_approximation_is_exact() {
        // For Brownian motion with a linear boundary the Bräker density
        // ½ v⁺(0)(α+βt)/σ³ φ(·) coincides with the exact Bachelier–Lévy
        // first-passage density α/t^{3/2} φ(·) after integration (the
        // (t−α)-odd part integrates to zero), so the approximation is
        // exact — a sharp end-to-end check of the quadrature.
        for &alpha in &[2.0, 3.0, 6.0] {
            let p = hitting_probability(
                HittingProblem {
                    alpha,
                    beta: 1.0,
                    v_plus_0: 1.0,
                },
                |t| t,
                1e-14,
            );
            let exact = (-2.0 * alpha).exp();
            assert!(
                (p / exact - 1.0).abs() < 1e-6,
                "α={alpha}: approx {p}, exact {exact}"
            );
        }
    }

    #[test]
    fn monotone_in_alpha_and_beta() {
        let sigma2 = |t: f64| 2.0 * (1.0 - (-t).exp());
        let p = |alpha: f64, beta: f64| {
            hitting_probability(
                HittingProblem {
                    alpha,
                    beta,
                    v_plus_0: 2.0,
                },
                sigma2,
                1e-12,
            )
        };
        assert!(
            p(3.0, 1.0) > p(4.0, 1.0),
            "higher boundary, lower probability"
        );
        assert!(
            p(3.0, 1.0) > p(3.0, 2.0),
            "steeper boundary, lower probability"
        );
    }

    #[test]
    fn immediate_term_appears_when_variance_positive_at_zero() {
        // σ²(t) ≡ 1 (stationary error of fixed size, no growth):
        // no drift crossing contributes much beyond the immediate hit
        // Q(α) as v⁺(0) = 0.
        let p = hitting_probability(
            HittingProblem {
                alpha: 3.0,
                beta: 1.0,
                v_plus_0: 0.0,
            },
            |_| 1.0,
            1e-12,
        );
        assert!((p - q(3.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_process_never_hits() {
        let p = hitting_probability(
            HittingProblem {
                alpha: 3.0,
                beta: 1.0,
                v_plus_0: 0.0,
            },
            |_| 0.0,
            1e-12,
        );
        assert_eq!(p, 0.0);
    }

    #[test]
    fn matches_paper_ou_closed_form_under_time_scale_separation() {
        // For the memoryless OU case (paper eqn (32)) with γ ≫ 1 the
        // closed form (33) is γ/(2√π)·exp(−α²/4). Our hitting engine
        // must reproduce it. The paper's σ²(t) = 2(1−e^{−|t|/T_c}) in
        // *unscaled* time, with boundary α + βt and v⁺(0) = 2/T_c.
        let alpha = 3.090232306167813; // α for p_q = 1e-3
        let t_c = 1.0;
        let beta = 100.0; // γ = 1/(βT_c)… careful: γ = 1/(β T_c)? No:
                          // In the paper γ := 1/(β T_c)⁻¹… γ = T̃_h σ /(T_c μ) = 1/(β T_c).
                          // With t_c = 1 and β = 1/γ_target: pick γ_target = 100 ⇒ β = 0.01.
        let _ = beta;
        let gamma = 100.0;
        let beta = 1.0 / (gamma * t_c);
        let p = hitting_probability(
            HittingProblem {
                alpha,
                beta,
                v_plus_0: 2.0 / t_c,
            },
            |t: f64| 2.0 * (1.0 - (-t / t_c).exp()),
            1e-13,
        );
        let closed = gamma / (2.0 * std::f64::consts::PI.sqrt()) * (-alpha * alpha / 4.0).exp();
        assert!(
            (p / closed - 1.0).abs() < 0.05,
            "hitting {p} vs closed-form {closed}"
        );
    }
}
