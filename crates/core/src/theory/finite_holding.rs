//! Impulsive load with finite holding times (paper §3.2).
//!
//! Flows admitted at `t = 0` depart with exponential holding times. Two
//! competing effects shape the overflow probability at time `t`
//! (eqn (21)): for small `t` the traffic is still *correlated* with the
//! admission-time measurement, so overflow is unlikely; for large `t`
//! enough flows have *departed* to restore the safety margin. The
//! crossover defines the critical time-scale `T̃_h = T_h/√n`.

use crate::params::{FlowStats, QosTarget};
use mbac_num::q;

/// Overflow probability at time `t` after an impulsive admission
/// (eqn (21)):
///
/// `p_f(t) = Q( [ (μ/σ)·t/T̃_h + α_q ] / √(2(1 − ρ(t))) )`,
///
/// where `ρ` is the per-flow autocorrelation function and `t_h_tilde`
/// the critical time-scale `T_h/√n`.
///
/// At `t = 0` the denominator vanishes and `p_f(0) = 0` (the estimate is
/// exact for the instant it was taken).
pub fn pf_at_time<R: Fn(f64) -> f64>(
    t: f64,
    flow: FlowStats,
    qos: QosTarget,
    t_h_tilde: f64,
    rho: R,
) -> f64 {
    assert!(t >= 0.0, "time must be non-negative");
    assert!(t_h_tilde > 0.0, "critical time-scale must be positive");
    let r = rho(t).clamp(-1.0, 1.0);
    let var = 2.0 * (1.0 - r);
    let drift = flow.mean / flow.std_dev() * t / t_h_tilde + qos.alpha();
    if var <= 0.0 {
        // Perfect correlation: the admission-time measurement still
        // holds exactly, so no overflow (drift ≥ α_q > 0).
        return if drift > 0.0 { 0.0 } else { 1.0 };
    }
    q(drift / var.sqrt())
}

/// The worst-case (over `t`) overflow probability of eqn (21), located
/// by a dense scan over `[0, horizon]`. Returns `(t_worst, p_worst)`.
///
/// With exponential autocorrelation the peak sits near the crossover of
/// the correlation and repair time-scales; a scan with 2000 points is
/// plenty for the smooth unimodal shapes eqn (21) produces.
pub fn pf_worst_case<R: Fn(f64) -> f64>(
    flow: FlowStats,
    qos: QosTarget,
    t_h_tilde: f64,
    rho: R,
    horizon: f64,
) -> (f64, f64) {
    assert!(horizon > 0.0);
    let steps = 2000;
    let mut best = (0.0, 0.0);
    for k in 0..=steps {
        let t = horizon * k as f64 / steps as f64;
        let p = pf_at_time(t, flow, qos, t_h_tilde, &rho);
        if p > best.1 {
            best = (t, p);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowStats {
        FlowStats::from_mean_sd(1.0, 0.3)
    }

    fn exp_rho(t_c: f64) -> impl Fn(f64) -> f64 {
        move |t: f64| (-t.abs() / t_c).exp()
    }

    #[test]
    fn zero_at_time_zero() {
        let p = pf_at_time(0.0, flow(), QosTarget::new(1e-3), 10.0, exp_rho(1.0));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn vanishes_for_large_t() {
        // Departures dominate: drift term (μ/σ)t/T̃_h grows linearly.
        let qos = QosTarget::new(1e-3);
        let p = pf_at_time(1000.0, flow(), qos, 10.0, exp_rho(1.0));
        assert!(p < 1e-100, "p = {p}");
    }

    #[test]
    fn peak_is_interior_and_bounded_by_impulsive_limit() {
        let qos = QosTarget::new(1e-3);
        let t_h_tilde = 10.0;
        let (t_star, p_star) = pf_worst_case(flow(), qos, t_h_tilde, exp_rho(1.0), 100.0);
        assert!(t_star > 0.0 && t_star < 100.0);
        // The worst case can never exceed the infinite-holding limit
        // Q(α_q/√2) (set t/T̃_h = 0, ρ = 0 in eqn (21)).
        let ceiling = q(qos.alpha() / std::f64::consts::SQRT_2);
        assert!(p_star <= ceiling + 1e-15, "{p_star} vs ceiling {ceiling}");
        assert!(p_star > 0.0);
    }

    #[test]
    fn approaches_impulsive_limit_for_long_holding() {
        // T̃_h → ∞ removes the repair effect; for t with ρ(t) ≈ 0 the
        // formula reduces to Q(α_q/√2) — Prop. 3.3.
        let qos = QosTarget::new(1e-3);
        let p = pf_at_time(50.0, flow(), qos, 1e12, exp_rho(1.0));
        let limit = q(qos.alpha() / std::f64::consts::SQRT_2);
        assert!((p / limit - 1.0).abs() < 1e-6, "p={p}, limit={limit}");
    }

    #[test]
    fn shorter_critical_timescale_means_safer_system() {
        // Bigger systems (smaller T̃_h) repair faster: worst-case p_f drops.
        let qos = QosTarget::new(1e-3);
        let (_, p_slow) = pf_worst_case(flow(), qos, 100.0, exp_rho(1.0), 1000.0);
        let (_, p_fast) = pf_worst_case(flow(), qos, 1.0, exp_rho(1.0), 1000.0);
        assert!(p_fast < p_slow, "fast repair {p_fast} vs slow {p_slow}");
    }

    #[test]
    fn longer_correlation_delays_the_peak() {
        let qos = QosTarget::new(1e-3);
        let (t1, _) = pf_worst_case(flow(), qos, 10.0, exp_rho(0.5), 200.0);
        let (t2, _) = pf_worst_case(flow(), qos, 10.0, exp_rho(5.0), 200.0);
        assert!(t2 > t1, "peak with slow traffic {t2} vs fast {t1}");
    }
}
