//! Inverting the overflow formulas for the adjusted certainty-equivalent
//! target `p_ce` (the paper's Fig. 6 / §5.2 procedure).
//!
//! Given the system parameters and a memory window `T_m`, find the
//! `p_ce` the controller must run with so that the *realized* overflow
//! probability equals the QoS target: solve `p_f(α_ce) = p_q` for
//! `α_ce = Q⁻¹(p_ce)`. The formulas are strictly decreasing in `α_ce`,
//! so a bracketed Brent search on `ln p_f` is robust over the many
//! orders of magnitude involved (the paper reports adjusted targets
//! below 1e-10 for short memory).

use super::continuous::ContinuousModel;
use mbac_num::{brent, ln_q, q, RootError};

/// Which formula to invert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvertMethod {
    /// The general numeric formula, eqn (37) (valid for any `γ`).
    General,
    /// The time-scale-separated closed form, eqn (38) (fast; the form
    /// the paper inverts for Figs. 6–7).
    Separated,
}

/// Result of a `p_ce` inversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdjustedTarget {
    /// The adjusted certainty-equivalent safety factor `α_ce`.
    pub alpha_ce: f64,
    /// The adjusted target probability `p_ce = Q(α_ce)` (may underflow
    /// to 0 for extreme adjustments; see `ln_pce`).
    pub p_ce: f64,
    /// `ln p_ce`, finite even when `p_ce` underflows.
    pub ln_pce: f64,
}

/// Finds the adjusted certainty-equivalent target for the continuous-
/// load model: the `p_ce` with `p_f(model, T_m, p_ce) = p_q`.
///
/// Returns `Err` only if the bracket `[0, 40]` contains no solution,
/// which happens when even `α_ce = 0` (admit on a coin flip) keeps
/// `p_f < p_q` — i.e. the repair effect alone already guarantees the
/// QoS. Callers typically treat that case as "no adjustment needed".
pub fn invert_pce(
    model: &ContinuousModel,
    t_m: f64,
    p_q: f64,
    method: InvertMethod,
) -> Result<AdjustedTarget, RootError> {
    assert!(p_q > 0.0 && p_q < 1.0, "target must be in (0,1)");
    let pf = |alpha: f64| match method {
        InvertMethod::General => model.pf_with_memory(alpha, t_m),
        InvertMethod::Separated => model.pf_with_memory_separated(alpha, t_m),
    };
    let target_ln = p_q.ln();
    let g = |alpha: f64| {
        let p = pf(alpha);
        if p <= 0.0 {
            // Deep underflow: fall back to a large negative log.
            -800.0 - target_ln
        } else {
            p.ln() - target_ln
        }
    };
    const ALPHA_MAX: f64 = 40.0;
    if g(0.0) <= 0.0 {
        return Err(RootError::NotBracketed);
    }
    let root = brent(g, 0.0, ALPHA_MAX, 1e-10, 300)?;
    let alpha_ce = root.x;
    Ok(AdjustedTarget {
        alpha_ce,
        p_ce: q(alpha_ce),
        ln_pce: ln_q(alpha_ce),
    })
}

/// Impulsive-load adjustment (eqn (15)): `α_ce = √2 α_q`, exact and
/// closed-form. Provided here for symmetry with [`invert_pce`].
pub fn invert_pce_impulsive(p_q: f64) -> AdjustedTarget {
    let alpha_ce = std::f64::consts::SQRT_2 * mbac_num::inv_q(p_q);
    AdjustedTarget {
        alpha_ce,
        p_ce: q(alpha_ce),
        ln_pce: ln_q(alpha_ce),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_num::inv_q;

    fn fig5_model(n: f64, t_h: f64) -> ContinuousModel {
        ContinuousModel::new(0.3, t_h / n.sqrt(), 1.0)
    }

    #[test]
    fn inversion_achieves_target() {
        let m = fig5_model(1000.0, 1000.0);
        for &t_m in &[0.0, 1.0, 10.0, 30.0] {
            let adj = invert_pce(&m, t_m, 1e-3, InvertMethod::General).unwrap();
            let realized = m.pf_with_memory(adj.alpha_ce, t_m);
            assert!(
                (realized / 1e-3 - 1.0).abs() < 1e-4,
                "T_m={t_m}: realized {realized}"
            );
        }
    }

    #[test]
    fn separated_inversion_achieves_target_on_its_own_formula() {
        let m = fig5_model(1000.0, 10_000.0);
        let adj = invert_pce(&m, 5.0, 1e-3, InvertMethod::Separated).unwrap();
        let realized = m.pf_with_memory_separated(adj.alpha_ce, 5.0);
        assert!((realized / 1e-3 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn adjustment_is_conservative_and_relaxes_with_memory() {
        // Short memory demands a (much) smaller p_ce; long memory needs
        // almost none (p_ce → p_q).
        let m = fig5_model(1000.0, 1000.0);
        let p_q = 1e-3;
        let short = invert_pce(&m, 0.0, p_q, InvertMethod::General).unwrap();
        let long = invert_pce(&m, m.t_h_tilde, p_q, InvertMethod::General).unwrap();
        assert!(short.ln_pce < long.ln_pce, "short memory ⇒ smaller p_ce");
        assert!(short.p_ce < p_q);
        assert!(long.p_ce < p_q, "even T_m = T̃_h needs a little margin");
        assert!(
            long.p_ce > 0.05 * p_q,
            "at T_m = T̃_h the adjustment should be mild: {}",
            long.p_ce
        );
    }

    #[test]
    fn paper_fig6_magnitude_for_memoryless() {
        // Fig. 6: for small T_m the adjusted target drops below 1e-10
        // (n = 1000, T_h = 1e4, p_q = 1e-3 is the extreme curve).
        let m = fig5_model(1000.0, 10_000.0);
        let adj = invert_pce(&m, 0.0, 1e-3, InvertMethod::Separated).unwrap();
        assert!(
            adj.ln_pce < (1e-9f64).ln(),
            "memoryless adjusted target should be extreme: ln p_ce = {}",
            adj.ln_pce
        );
    }

    #[test]
    fn repair_dominated_system_needs_no_adjustment() {
        // T_c ≫ T̃_h: even α = 0 meets the target.
        let m = ContinuousModel::new(0.3, 0.5, 500.0);
        let r = invert_pce(&m, 0.0, 1e-2, InvertMethod::General);
        assert_eq!(r.unwrap_err(), RootError::NotBracketed);
    }

    #[test]
    fn impulsive_inversion_matches_sqrt2_rule() {
        let p_q = 1e-4;
        let adj = invert_pce_impulsive(p_q);
        assert!((adj.alpha_ce - std::f64::consts::SQRT_2 * inv_q(p_q)).abs() < 1e-12);
        // Realized p_f with this α_ce under Prop. 3.3:
        let realized = q(adj.alpha_ce / std::f64::consts::SQRT_2);
        assert!((realized / p_q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ln_pce_finite_when_pce_underflows() {
        let m = fig5_model(1_000_000.0, 1e9); // extreme separation
        if let Ok(adj) = invert_pce(&m, 0.0, 1e-6, InvertMethod::Separated) {
            assert!(adj.ln_pce.is_finite());
        }
    }
}
